//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_recursive`,
//! strategies for integer ranges, tuples, `Just`, `any::<T>()`, a
//! regex-lite `&'static str` strategy, `collection::vec`, `option::of`,
//! `bool::ANY`, and the `proptest!` / `prop_oneof!` / `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic xoshiro256** stream seeded
//! by the test name, so failures reproduce across runs. There is no
//! shrinking: a failing case panics with the formatted assertion
//! message, which the properties here already make self-describing.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub mod test_runner {
    /// Deterministic generator backing all strategies (xoshiro256**
    /// seeded from the test name via SplitMix64/FNV).
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut x = h;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)` (widening multiply; `n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

use test_runner::TestRng;

/// Why a generated case did not count toward the case budget.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; generate a fresh case.
    Reject,
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

// ---------------------------------------------------------------------
// Strategy trait and combinators.
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Generic combinator methods carry `where Self: Sized` so the trait
/// stays object-safe for [`BoxedStrategy`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategies up to `depth` nested applications of `f`.
    ///
    /// Builds a ladder of strategies — level 0 is `self`, level *i*
    /// applies `f` to a uniform choice over levels `< i` — and returns
    /// a uniform choice over all levels, so generated values mix leaf
    /// and nested shapes while nesting stays bounded. `_desired_size`
    /// and `_expected_branch` are accepted for signature compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> Union<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let inner = Union {
                variants: levels.clone(),
            };
            levels.push(f(inner.boxed()).boxed());
        }
        Union { variants: levels }
    }
}

/// Type-erased, cheaply clonable strategy (`Arc` under the hood).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies of a common value type
/// (what `prop_oneof!` builds).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Union { variants }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: integer ranges, any::<T>(), regex-lite strings.
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u64 as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Strategy for the full domain of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Regex-lite string strategy: a `&'static str` pattern is a sequence
/// of atoms, each a character class `[...]` (chars and `a-z` ranges) or
/// a literal character, optionally quantified with `{n}` or `{m,n}`.
/// Covers patterns like `"[a-z][a-z0-9_]{0,6}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (set, min, max) in &atoms {
            let count = *min + rng.below((*max - *min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }
}

type PatternAtom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pat.chars().peekable();
    while let Some(c) = chars.next() {
        let set: Vec<char> = if c == '[' {
            let mut set = Vec::new();
            loop {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated class in pattern {pat:?}"));
                if e == ']' {
                    break;
                }
                if chars.peek() == Some(&'-') {
                    chars.next();
                    let hi = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling '-' in pattern {pat:?}"));
                    assert!(hi != ']', "dangling '-' in pattern {pat:?}");
                    set.extend(e..=hi);
                } else {
                    set.push(e);
                }
            }
            assert!(!set.is_empty(), "empty class in pattern {pat:?}");
            set
        } else {
            vec![c]
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("unterminated quantifier in pattern {pat:?}"));
                if e == '}' {
                    break;
                }
                spec.push(e);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.parse().expect("quantifier lower bound"),
                    n.parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n: usize = spec.parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern {pat:?}");
        atoms.push((set, min, max));
    }
    atoms
}

// ---------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------
// collection::vec, option::of, bool::ANY.
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vectors whose length is drawn uniformly from `len`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) < 3 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    #[derive(Clone)]
    pub struct BoolAny;

    /// Uniform `true`/`false`.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> ::core::primitive::bool {
            rng.bool()
        }
    }
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a property; panics with the message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Discard the current case (does not count toward the case budget)
/// unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ..)`
/// becomes a regular test that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            // prop_assume!-heavy properties get 20 attempts per case
            // before we call the filter too restrictive.
            let max_attempts = (config.cases as u64) * 20 + 100;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "prop_assume! rejected too many generated cases in {}",
                    stringify!($name),
                );
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

// ---------------------------------------------------------------------
// Self-tests.
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_lite_patterns() {
        let mut rng = TestRng::for_test("regex_lite_patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "bad length: {s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));

            let s = Strategy::generate(&"[a-z ]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == ' '));

            let s = Strategy::generate(&"[a-z0-9]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()));
        }
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_and_tuples");
        for _ in 0..1000 {
            let (a, b, c) = Strategy::generate(&(0..3usize, -2i64..=4, 0u64..100), &mut rng);
            assert!(a < 3);
            assert!((-2..=4).contains(&b));
            assert!(c < 100);
        }
    }

    #[test]
    fn union_and_map_compose() {
        let mut rng = TestRng::for_test("union_and_map");
        let s = prop_oneof![Just(1i64), 10i64..20, any::<bool>().prop_map(|b| b as i64)];
        let mut seen_low = false;
        let mut seen_mid = false;
        for _ in 0..500 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v == 0 || v == 1 || (10..20).contains(&v));
            seen_low |= v <= 1;
            seen_mid |= (10..20).contains(&v);
        }
        assert!(seen_low && seen_mid, "union never picked some arms");
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(()).prop_map(|_| Tree::Leaf).prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::for_test("recursive_depth");
        let mut max_seen = 0;
        for _ in 0..300 {
            let t = Strategy::generate(&strat, &mut rng);
            max_seen = max_seen.max(depth(&t));
        }
        assert!(max_seen > 0, "never generated a branch");
        assert!(max_seen <= 3, "depth bound exceeded: {max_seen}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro path itself: args, assume, and assertions.
        #[test]
        fn macro_roundtrip(x in 0i64..50, flag in any::<bool>(), s in "[a-z]{1,3}") {
            prop_assume!(x != 13);
            prop_assert!(x < 50 && x != 13);
            prop_assert_eq!(s.len(), s.chars().count(), "ascii only: {}", s);
            let _ = flag;
        }
    }
}
