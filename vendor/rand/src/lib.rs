//! Offline stand-in for `rand` 0.8.
//!
//! Implements the slice of the rand API the workload generators use:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and [`Rng`] with
//! `gen_range` (half-open and inclusive integer ranges) and `gen_bool`.
//! The generator is xoshiro256** seeded via SplitMix64 — deterministic
//! per seed, which is all the data generators need (they fix seeds for
//! reproducible experiments). Not cryptographic.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface used by the workspace, mirroring `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        // 53 random mantissa bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// A range that can be sampled, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (sample_below(rng, span) as i128)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (sample_below(rng, span) as i128)) as $t
            }
        }
    )*};
}

impl_int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Uniform sample in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — bias is < 2^-64, irrelevant for test
/// data generation).
fn sample_below<R: Rng + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator, mirroring `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let v: usize = r.gen_range(0usize..3);
            assert!(v < 3);
            let v: i64 = r.gen_range(0i64..=50);
            assert!((0..=50).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
