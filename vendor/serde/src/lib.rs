//! Offline stand-in for the `serde` facade.
//!
//! The real `serde` cannot be fetched in this build environment, and the
//! workspace only uses it for `#[derive(Serialize, Deserialize)]`
//! annotations on plain data types. This crate provides the two marker
//! traits and re-exports no-op derive macros so those annotations
//! compile. Nothing in the workspace serializes at runtime today; when a
//! wire format lands, swap this path dependency back to the real crate.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
