//! Offline stand-in for `criterion`.
//!
//! Keeps the subset of the criterion 0.5 API the bench crate uses —
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `BatchSize`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros —
//! so the `[[bench]]` targets compile and run without the real crate.
//! Measurement is deliberately simple: a short warm-up, then a fixed
//! batch of timed iterations reported as mean nanoseconds per
//! iteration. No statistics, plots, or baselines.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost; only a naming difference
/// here, since this stub times every routine call individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifier combining a function name and a parameter, printed as
/// `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Collection of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup {
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / bencher.iters.max(1) as u128;
        println!("{}/{}: {} ns/iter (n={})", self.name, id, per_iter, bencher.iters);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("criterion").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("iter", |b| b.iter(|| runs += 1));
        // One warm-up call plus sample_size timed calls.
        assert_eq!(runs, 4);
        let mut setups = 0u64;
        group.bench_with_input(BenchmarkId::new("batched", 7), &5u64, |b, &five| {
            b.iter_batched(
                || {
                    setups += 1;
                    five
                },
                |v| v * 2,
                BatchSize::LargeInput,
            );
        });
        assert_eq!(setups, 4);
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("insert", 5).to_string(), "insert/5");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
