//! No-op derive macros for the offline `serde` stand-in.
//!
//! `#[derive(serde::Serialize, serde::Deserialize)]` must parse and
//! expand; the workspace never calls serialization at runtime, so the
//! expansions are intentionally empty. (Emitting real trait impls would
//! require parsing generics without `syn`, which is unavailable offline;
//! empty expansions keep the annotations inert and honest.)

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
