//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's poison-free API
//! (`lock()` returns the guard directly). A poisoned std lock means a
//! panic happened while holding it; matching parking_lot semantics, we
//! recover the data rather than propagate the poison — the engine's
//! panic-isolation layer is responsible for restoring invariants.

use std::sync::{self, TryLockError};

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
