//! Plan caching: memoized parse + bind for repeated statements.
//!
//! The paper's Section 5.6 observes that "the same queries are executed
//! repeatedly, albeit with different constant values, for different
//! users" and proposes amortizing the *validity check* across
//! re-executions. The [`crate::ValidityCache`] does that; this module
//! removes the rest of the admission cost. On a warm hit,
//! [`crate::Engine::execute`] skips SQL parsing, name resolution /
//! view expansion (binding), plan normalization, and fingerprint
//! hashing — the statement goes straight to a validity-cache lookup and
//! then to the executor.
//!
//! ## Keying and invalidation
//!
//! Binding substitutes `$` session parameters into the plan, so a cached
//! bound plan is only reusable when the parameter environment is
//! identical: the key is `(policy epoch, SQL text, parameter
//! fingerprint)`. The same SQL text issued by a different `$user_id`
//! therefore occupies a different slot — plans never alias across
//! sessions with different parameters.
//!
//! The policy epoch is bumped by the engine on every catalog or
//! authorization change (CREATE TABLE / CREATE [AUTHORIZATION] VIEW /
//! inclusion dependencies / grants / revocations / role changes). Old
//! entries become unreachable immediately — binding depends on the
//! catalog, so a stale bound plan must never survive DDL — and are
//! recycled by LRU eviction. DML does *not* bump the epoch: plans are
//! data-independent, which is exactly what makes the steady state cheap
//! (the data-version handling of conditional verdicts stays entirely
//! inside the validity cache).

use fgac_algebra::{BoundQuery, ParamScope, Plan};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::CacheStats;

/// Default number of cached plans (per engine).
const DEFAULT_CAPACITY: usize = 256;

/// Everything admission computed for a query, ready for reuse.
#[derive(Debug)]
pub struct CachedPlan {
    /// The bound query (base-table plan + presentation), executor input.
    pub bound: BoundQuery,
    /// The normalized plan the validity checker reasons over.
    pub normalized: Plan,
    /// Session-contextual fingerprint of `normalized` — the
    /// [`crate::ValidityCache`] lookup key, precomputed so warm
    /// executions do not re-hash the plan.
    pub validity_fp: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    epoch: u64,
    params_fp: u64,
    sql: String,
}

#[derive(Debug)]
struct Slot {
    value: Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Key, Slot>,
    /// Monotonic use counter backing the LRU ordering.
    tick: u64,
}

/// A bounded LRU cache of admitted plans. Interior-mutable: lookups work
/// through `&self` so the read path shares the engine immutably.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// `hits << 32 | misses`, one relaxed fetch_add per lookup (see
    /// [`crate::cache::ValidityCache`] for the packing rationale).
    counters: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            counters: AtomicU64::new(0),
        }
    }

    fn params_fp(params: &ParamScope) -> u64 {
        let mut h = DefaultHasher::new();
        params.hash(&mut h);
        h.finish()
    }

    /// Looks up the admitted plan for `sql` under the given policy epoch
    /// and parameter environment.
    pub fn get(&self, epoch: u64, sql: &str, params: &ParamScope) -> Option<Arc<CachedPlan>> {
        let key = Key {
            epoch,
            params_fp: Self::params_fp(params),
            sql: sql.to_string(),
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key).map(|slot| {
            slot.last_used = tick;
            slot.value.clone()
        });
        drop(inner);
        if found.is_some() {
            self.counters.fetch_add(1 << 32, Ordering::Relaxed);
        } else {
            self.counters.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts an admitted plan, evicting the least-recently-used entry
    /// when full. Entries from older epochs are evicted first — they can
    /// never be hit again.
    pub fn insert(&self, epoch: u64, sql: &str, params: &ParamScope, plan: Arc<CachedPlan>) {
        let key = Key {
            epoch,
            params_fp: Self::params_fp(params),
            sql: sql.to_string(),
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // Prefer dead epochs; otherwise plain LRU.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(k, slot)| (k.epoch == epoch, slot.last_used))
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                inner.map.remove(&v);
            }
        }
        inner.map.insert(
            key,
            Slot {
                value: plan,
                last_used: tick,
            },
        );
    }

    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) from one atomic load — internally consistent.
    pub fn stats(&self) -> (u64, u64) {
        let packed = self.counters.load(Ordering::Relaxed);
        (packed >> 32, packed & 0xFFFF_FFFF)
    }

    /// Coherent counter + occupancy snapshot.
    pub fn snapshot(&self) -> CacheStats {
        let (hits, misses) = self.stats();
        CacheStats {
            hits,
            misses,
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::Schema;

    fn cached_plan() -> Arc<CachedPlan> {
        let plan = Plan::scan("t", Schema::new(vec![]));
        Arc::new(CachedPlan {
            bound: BoundQuery {
                plan: plan.clone(),
                output_names: vec![],
                order_by: vec![],
                limit: None,
            },
            normalized: plan,
            validity_fp: 7,
        })
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = PlanCache::new();
        let params = ParamScope::with_user("11");
        assert!(c.get(0, "select 1", &params).is_none());
        c.insert(0, "select 1", &params, cached_plan());
        assert!(c.get(0, "select 1", &params).is_some());
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn epoch_bump_makes_entries_unreachable() {
        let c = PlanCache::new();
        let params = ParamScope::with_user("11");
        c.insert(0, "q", &params, cached_plan());
        assert!(c.get(1, "q", &params).is_none());
    }

    #[test]
    fn params_key_plans_separately() {
        let c = PlanCache::new();
        c.insert(0, "q", &ParamScope::with_user("11"), cached_plan());
        assert!(c.get(0, "q", &ParamScope::with_user("12")).is_none());
        assert!(c.get(0, "q", &ParamScope::with_user("11")).is_some());
    }

    #[test]
    fn lru_eviction_bounds_size() {
        let c = PlanCache::with_capacity(2);
        let params = ParamScope::new();
        c.insert(0, "a", &params, cached_plan());
        c.insert(0, "b", &params, cached_plan());
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get(0, "a", &params).is_some());
        c.insert(0, "c", &params, cached_plan());
        assert_eq!(c.len(), 2);
        assert!(c.get(0, "a", &params).is_some());
        assert!(c.get(0, "b", &params).is_none());
        assert!(c.get(0, "c", &params).is_some());
    }

    #[test]
    fn dead_epoch_entries_evicted_first() {
        let c = PlanCache::with_capacity(2);
        let params = ParamScope::new();
        c.insert(0, "old", &params, cached_plan());
        c.insert(1, "a", &params, cached_plan());
        // "old" is from a dead epoch; though "a" is not more recent
        // enough to matter, "old" must be the victim.
        c.insert(1, "b", &params, cached_plan());
        assert!(c.get(1, "a", &params).is_some());
        assert!(c.get(1, "b", &params).is_some());
    }
}
