//! Plan caching: memoized parse + bind for repeated statements.
//!
//! The paper's Section 5.6 observes that "the same queries are executed
//! repeatedly, albeit with different constant values, for different
//! users" and proposes amortizing the *validity check* across
//! re-executions. The [`crate::ValidityCache`] does that; this module
//! removes the rest of the admission cost. On a warm hit,
//! [`crate::Engine::execute`] skips SQL parsing, name resolution /
//! view expansion (binding), plan normalization, and fingerprint
//! hashing — the statement goes straight to a validity-cache lookup and
//! then to the executor.
//!
//! ## Keying and invalidation
//!
//! Binding substitutes `$` session parameters into the plan, so a cached
//! bound plan is only reusable when the parameter environment is
//! identical: the key is `(SQL text, parameter fingerprint)`. The same
//! SQL text issued by a different `$user_id` therefore occupies a
//! different slot — plans never alias across sessions with different
//! parameters.
//!
//! Invalidation is **dependency-tracked**, not epoch-keyed: each cached
//! plan records the catalog names its binding read (every FROM-clause
//! table and view, recursing through view expansion — see
//! [`crate::invalidation::query_dependencies`]). Grants and revocations
//! never touch this cache: binding does not consult the grant tables,
//! so an authorization change cannot change what a SQL text binds to.
//! DDL invalidates only the entries whose dependency set intersects the
//! introduced name ([`PlanCache::invalidate_deps`]) — in a live engine
//! that set is empty (a CREATE of an existing name fails), so plans
//! survive unrelated schema growth too. DML touches nothing here: plans
//! are data-independent (the data-version handling of conditional
//! verdicts stays entirely inside the validity cache).

use fgac_algebra::{BoundQuery, ParamScope, Plan};
use fgac_types::Ident;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::CacheStats;

/// Default number of cached plans (per engine).
const DEFAULT_CAPACITY: usize = 256;

/// Everything admission computed for a query, ready for reuse.
#[derive(Debug)]
pub struct CachedPlan {
    /// The bound query (base-table plan + presentation), executor input.
    pub bound: BoundQuery,
    /// The normalized plan the validity checker reasons over.
    pub normalized: Plan,
    /// Session-contextual fingerprint of `normalized` — the
    /// [`crate::ValidityCache`] lookup key, precomputed so warm
    /// executions do not re-hash the plan.
    pub validity_fp: u64,
    /// Catalog names binding read: FROM-clause tables and views
    /// (recursively through view expansion) plus every base table the
    /// normalized plan scans. DDL introducing any of these names
    /// invalidates the entry.
    pub deps: BTreeSet<Ident>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    params_fp: u64,
    sql: String,
}

#[derive(Debug)]
struct Slot {
    value: Arc<CachedPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Key, Slot>,
    /// Monotonic use counter backing the LRU ordering.
    tick: u64,
}

/// A bounded LRU cache of admitted plans. Interior-mutable: lookups work
/// through `&self` so the read path shares the engine immutably.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// `hits << 32 | misses`, one relaxed fetch_add per lookup (see
    /// [`crate::cache::ValidityCache`] for the packing rationale).
    counters: AtomicU64,
    /// Entries dropped by dependency invalidation and clears —
    /// cumulative, like every cache counter.
    invalidated: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl PlanCache {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            counters: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn params_fp(params: &ParamScope) -> u64 {
        let mut h = DefaultHasher::new();
        params.hash(&mut h);
        h.finish()
    }

    /// Looks up the admitted plan for `sql` under the given parameter
    /// environment.
    pub fn get(&self, sql: &str, params: &ParamScope) -> Option<Arc<CachedPlan>> {
        let key = Key {
            params_fp: Self::params_fp(params),
            sql: sql.to_string(),
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let found = inner.map.get_mut(&key).map(|slot| {
            slot.last_used = tick;
            slot.value.clone()
        });
        drop(inner);
        if found.is_some() {
            self.counters.fetch_add(1 << 32, Ordering::Relaxed);
        } else {
            self.counters.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Inserts an admitted plan, evicting the least-recently-used entry
    /// when full.
    pub fn insert(&self, sql: &str, params: &ParamScope, plan: Arc<CachedPlan>) {
        let key = Key {
            params_fp: Self::params_fp(params),
            sql: sql.to_string(),
        };
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone());
            if let Some(v) = victim {
                inner.map.remove(&v);
            }
        }
        inner.map.insert(
            key,
            Slot {
                value: plan,
                last_used: tick,
            },
        );
    }

    /// Drops every entry whose dependency set intersects `names` (the
    /// DDL sweep). Returns the number of entries dropped.
    pub fn invalidate_deps(&self, names: &[Ident]) -> usize {
        if names.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock();
        let before = inner.map.len();
        inner
            .map
            .retain(|_, slot| !names.iter().any(|n| slot.value.deps.contains(n)));
        let dropped = before - inner.map.len();
        if dropped > 0 {
            self.invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        }
        dropped
    }

    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        let dropped = inner.map.len() as u64;
        inner.map.clear();
        if dropped > 0 {
            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) from one atomic load — internally consistent.
    pub fn stats(&self) -> (u64, u64) {
        let packed = self.counters.load(Ordering::Relaxed);
        (packed >> 32, packed & 0xFFFF_FFFF)
    }

    /// Entries dropped by dependency sweeps and clears, cumulative.
    pub fn invalidated_entries(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Coherent counter + occupancy snapshot.
    pub fn snapshot(&self) -> CacheStats {
        let (hits, misses) = self.stats();
        CacheStats {
            hits,
            misses,
            entries: self.len(),
            invalidated: self.invalidated_entries(),
            ..CacheStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::Schema;

    fn cached_plan_deps(deps: &[&str]) -> Arc<CachedPlan> {
        let plan = Plan::scan("t", Schema::new(vec![]));
        Arc::new(CachedPlan {
            bound: BoundQuery {
                plan: plan.clone(),
                output_names: vec![],
                order_by: vec![],
                limit: None,
            },
            normalized: plan,
            validity_fp: 7,
            deps: deps.iter().map(Ident::new).collect(),
        })
    }

    fn cached_plan() -> Arc<CachedPlan> {
        cached_plan_deps(&["t"])
    }

    #[test]
    fn hit_and_miss_accounting() {
        let c = PlanCache::new();
        let params = ParamScope::with_user("11");
        assert!(c.get("select 1", &params).is_none());
        c.insert("select 1", &params, cached_plan());
        assert!(c.get("select 1", &params).is_some());
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn dependency_invalidation_is_selective() {
        let c = PlanCache::new();
        let params = ParamScope::with_user("11");
        c.insert("qa", &params, cached_plan_deps(&["a", "shared"]));
        c.insert("qb", &params, cached_plan_deps(&["b"]));
        // An unrelated name drops nothing.
        assert_eq!(c.invalidate_deps(&[Ident::new("zzz")]), 0);
        assert_eq!(c.len(), 2);
        // A name in qa's dependency set drops qa only.
        assert_eq!(c.invalidate_deps(&[Ident::new("shared")]), 1);
        assert!(c.get("qa", &params).is_none());
        assert!(c.get("qb", &params).is_some());
        assert_eq!(c.invalidated_entries(), 1);
    }

    #[test]
    fn params_key_plans_separately() {
        let c = PlanCache::new();
        c.insert("q", &ParamScope::with_user("11"), cached_plan());
        assert!(c.get("q", &ParamScope::with_user("12")).is_none());
        assert!(c.get("q", &ParamScope::with_user("11")).is_some());
    }

    #[test]
    fn lru_eviction_bounds_size() {
        let c = PlanCache::with_capacity(2);
        let params = ParamScope::new();
        c.insert("a", &params, cached_plan());
        c.insert("b", &params, cached_plan());
        // Touch "a" so "b" is the LRU victim.
        assert!(c.get("a", &params).is_some());
        c.insert("c", &params, cached_plan());
        assert_eq!(c.len(), 2);
        assert!(c.get("a", &params).is_some());
        assert!(c.get("b", &params).is_none());
        assert!(c.get("c", &params).is_some());
    }

    #[test]
    fn clear_keeps_cumulative_counters() {
        let c = PlanCache::new();
        let params = ParamScope::new();
        c.insert("q", &params, cached_plan());
        assert!(c.get("q", &params).is_some());
        c.clear();
        assert!(c.is_empty());
        let (hits, _) = c.stats();
        assert_eq!(hits, 1);
        assert_eq!(c.invalidated_entries(), 1);
    }
}
