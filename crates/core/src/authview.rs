//! Authorization views (Section 2).

use fgac_algebra::{bind_query, BoundQuery, ParamScope};
use fgac_sql::{Expr, Query};
use fgac_storage::Catalog;
use fgac_types::{Error, Ident, Result};

/// An authorization view: a (possibly parameterized) view definition used
/// purely for access control. Three flavors per Section 2:
///
/// * plain relational views (no parameters);
/// * *parameterized* views mentioning `$user_id`, `$time`, ... — one
///   definition expresses a policy across all users;
/// * *access-pattern* views mentioning `$$k` parameters that the accessor
///   may bind to any value (e.g. `SingleGrade`: a secretary can look up
///   any one student's grades but cannot list all students).
#[derive(Debug, Clone, PartialEq)]
pub struct AuthorizationView {
    pub name: Ident,
    pub query: Query,
}

impl AuthorizationView {
    pub fn new(name: impl Into<Ident>, query: Query) -> Self {
        AuthorizationView {
            name: name.into(),
            query,
        }
    }

    /// Parses a `CREATE AUTHORIZATION VIEW` statement.
    pub fn parse(sql: &str) -> Result<Self> {
        match fgac_sql::parse_statement(sql)? {
            fgac_sql::Statement::CreateView(v) if v.authorization => {
                Ok(AuthorizationView::new(v.name, v.query))
            }
            _ => Err(Error::Parse(
                "expected a CREATE AUTHORIZATION VIEW statement".into(),
            )),
        }
    }

    /// The `$` session parameters this view mentions.
    pub fn session_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_exprs(&mut |e| {
            if let Expr::Param(p) = e {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
        });
        out
    }

    /// The `$$` access-pattern parameters this view mentions. Non-empty
    /// makes this an access-pattern view (handled by Section 6 logic).
    pub fn access_params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk_exprs(&mut |e| {
            if let Expr::AccessParam(p) = e {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
        });
        out
    }

    pub fn is_access_pattern(&self) -> bool {
        !self.access_params().is_empty()
    }

    /// Instantiates the view for a session: binds the definition with the
    /// session's parameter values, producing the *instantiated
    /// authorization view* plan (Section 2). `$$` parameters survive as
    /// opaque constants.
    pub fn instantiate(&self, catalog: &Catalog, params: &ParamScope) -> Result<BoundQuery> {
        bind_query(catalog, &self.query, params)
    }

    fn walk_exprs(&self, f: &mut impl FnMut(&Expr)) {
        fn walk_query(q: &Query, f: &mut impl FnMut(&Expr)) {
            for item in &q.projection {
                if let fgac_sql::SelectItem::Expr { expr, .. } = item {
                    expr.walk(f);
                }
            }
            for t in &q.from {
                for j in &t.joins {
                    j.on.walk(f);
                }
            }
            if let Some(w) = &q.selection {
                w.walk(f);
            }
            for g in &q.group_by {
                g.walk(f);
            }
            if let Some(h) = &q.having {
                h.walk(f);
            }
        }
        walk_query(&self.query, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        c
    }

    #[test]
    fn parses_and_classifies_parameterized_view() {
        let v = AuthorizationView::parse(
            "create authorization view MyGrades as \
             select * from grades where student_id = $user_id",
        )
        .unwrap();
        assert_eq!(v.session_params(), vec!["user_id".to_string()]);
        assert!(!v.is_access_pattern());
    }

    #[test]
    fn classifies_access_pattern_view() {
        let v = AuthorizationView::parse(
            "create authorization view SingleGrade as \
             select * from grades where student_id = $$1",
        )
        .unwrap();
        assert!(v.is_access_pattern());
        assert_eq!(v.access_params(), vec!["1".to_string()]);
    }

    #[test]
    fn instantiation_substitutes_parameters() {
        let v = AuthorizationView::parse(
            "create authorization view MyGrades as \
             select * from grades where student_id = $user_id",
        )
        .unwrap();
        let bound = v
            .instantiate(&catalog(), &ParamScope::with_user("11"))
            .unwrap();
        // Same plan as binding the literal query.
        let direct = fgac_algebra::bind_query(
            &catalog(),
            &fgac_sql::parse_query("select * from grades where student_id = '11'").unwrap(),
            &ParamScope::new(),
        )
        .unwrap();
        assert_eq!(
            fgac_algebra::normalize(&bound.plan),
            fgac_algebra::normalize(&direct.plan)
        );
    }

    #[test]
    fn rejects_non_authorization_statements() {
        assert!(AuthorizationView::parse("select * from grades").is_err());
        assert!(AuthorizationView::parse(
            "create view V as select * from grades"
        )
        .is_err());
    }

    #[test]
    fn instantiation_fails_on_missing_param() {
        let v = AuthorizationView::parse(
            "create authorization view TimeBound as \
             select * from grades where grade > $threshold",
        )
        .unwrap();
        assert!(v.instantiate(&catalog(), &ParamScope::with_user("11")).is_err());
    }
}
