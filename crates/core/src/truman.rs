//! The Truman model (Section 3): transparent query modification.
//!
//! "The idea behind the Truman security model is to provide each user
//! with a personal and restricted view of the complete database. User
//! queries are modified transparently to make sure that the user does not
//! get to see anything more than her view of the database."
//!
//! Two policy styles are supported, mirroring the paper:
//!
//! * [`TrumanPolicy::substitute_view`] — the general Truman model: each
//!   base relation is replaced by a (parameterized) authorization view of
//!   that relation (Section 3.2).
//! * [`TrumanPolicy::append_predicate`] — Oracle VPD style: a policy
//!   function contributes `WHERE`-clause predicates per relation
//!   (Section 3.1).
//!
//! This is the **baseline the Non-Truman model argues against**: it
//! silently changes query semantics (the `avg(grade)` example of Section
//! 3.3) and introduces redundant joins/predicates that cost execution
//! time (experiment E4).

use crate::session::Session;
use fgac_sql::{Expr, Query, TableRef};
use fgac_storage::Database;
use fgac_types::{Error, Ident, Result};
use std::collections::BTreeMap;

/// A per-relation Truman policy.
#[derive(Debug, Clone, Default)]
pub struct TrumanPolicy {
    /// table -> replacement authorization view name (must exist in the
    /// catalog; typically a parameterized view).
    view_substitutions: BTreeMap<Ident, Ident>,
    /// table -> predicate appended for that table (over the table's
    /// columns, may use `$` parameters).
    predicates: BTreeMap<Ident, Expr>,
}

impl TrumanPolicy {
    pub fn new() -> Self {
        Self::default()
    }

    /// Truman model proper: replace `table` with `view` wherever it
    /// appears in a query.
    pub fn substitute_view(mut self, table: impl Into<Ident>, view: impl Into<Ident>) -> Self {
        self.view_substitutions.insert(table.into(), view.into());
        self
    }

    /// VPD style: append `predicate` (SQL text over the table's columns)
    /// whenever `table` appears in a query.
    pub fn append_predicate(mut self, table: impl Into<Ident>, predicate: &str) -> Result<Self> {
        let expr = fgac_sql::parse_expr(predicate)?;
        self.predicates.insert(table.into(), expr);
        Ok(self)
    }

    /// Rewrites a query per the policy. Every rewritten table keeps its
    /// original binding name (via an alias), so the rest of the query is
    /// untouched — the modification is transparent, which is exactly the
    /// problem.
    pub fn rewrite(&self, query: &Query) -> Result<Query> {
        let mut out = query.clone();
        let mut appended: Vec<Expr> = Vec::new();
        for tref in &mut out.from {
            self.rewrite_table(tref, &mut appended)?;
            for join in &mut tref.joins {
                // Table substitution inside JOIN syntax: handled by
                // rewriting name + alias the same way.
                let mut tmp = TableRef {
                    name: join.table.clone(),
                    alias: join.alias.clone(),
                    joins: vec![],
                };
                self.rewrite_table(&mut tmp, &mut appended)?;
                join.table = tmp.name;
                join.alias = tmp.alias;
            }
        }
        for pred in appended {
            out.selection = Some(match out.selection.take() {
                Some(existing) => Expr::and(existing, pred),
                None => pred,
            });
        }
        Ok(out)
    }

    fn rewrite_table(&self, tref: &mut TableRef, appended: &mut Vec<Expr>) -> Result<()> {
        let binding = tref.binding_name().clone();
        if let Some(view) = self.view_substitutions.get(&tref.name) {
            tref.alias = Some(binding.clone());
            tref.name = view.clone();
        }
        if let Some(pred) = self.predicates.get(&tref.name) {
            // Qualify unqualified columns with the binding name so the
            // predicate lands on the right table instance.
            appended.push(qualify(pred, &binding));
        }
        Ok(())
    }
}

/// Qualifies bare column references with `binding`.
fn qualify(e: &Expr, binding: &Ident) -> Expr {
    match e {
        Expr::Column {
            qualifier: None,
            name,
        } => Expr::Column {
            qualifier: Some(binding.clone()),
            name: name.clone(),
        },
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) | Expr::AccessParam(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(qualify(expr, binding)),
        },
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(qualify(left, binding)),
            op: *op,
            right: Box::new(qualify(right, binding)),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(qualify(expr, binding)),
            negated: *negated,
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| qualify(a, binding)).collect(),
            distinct: *distinct,
            star: *star,
        },
    }
}

/// Executes `sql` under the Truman model: rewrite transparently, then
/// run the *modified* query. The caller never learns the query was
/// changed — hence "Truman's world".
pub fn truman_execute(
    db: &Database,
    policy: &TrumanPolicy,
    session: &Session,
    sql: &str,
) -> Result<fgac_exec::QueryResult> {
    let query = match fgac_sql::parse_statement(sql)? {
        fgac_sql::Statement::Query(q) => q,
        _ => return Err(Error::Unsupported("truman_execute takes a SELECT".into())),
    };
    let rewritten = policy.rewrite(&query)?;
    let bound = fgac_algebra::bind_query(db.catalog(), &rewritten, session.params())?;
    let rows = fgac_exec::execute_bound(db, &bound)?;
    Ok(fgac_exec::QueryResult {
        names: bound.output_names,
        rows,
    })
}

/// The rewritten SQL text (for inspection / the E4 bench's redundancy
/// counting).
pub fn truman_rewrite_sql(policy: &TrumanPolicy, sql: &str) -> Result<String> {
    let query = match fgac_sql::parse_statement(sql)? {
        fgac_sql::Statement::Query(q) => q,
        _ => return Err(Error::Unsupported("expected a SELECT".into())),
    };
    Ok(fgac_sql::printer::print_query(&policy.rewrite(&query)?))
}

/// Counts base-relation scans in the plan the Truman rewrite executes vs
/// the original — the paper's "redundant joins" cost (Section 3.3).
pub fn scan_count_delta(
    db: &Database,
    policy: &TrumanPolicy,
    session: &Session,
    sql: &str,
) -> Result<(usize, usize)> {
    let query = match fgac_sql::parse_statement(sql)? {
        fgac_sql::Statement::Query(q) => q,
        _ => return Err(Error::Unsupported("expected a SELECT".into())),
    };
    let original = fgac_algebra::bind_query(db.catalog(), &query, session.params())?;
    let rewritten =
        fgac_algebra::bind_query(db.catalog(), &policy.rewrite(&query)?, session.params())?;
    Ok((
        original.plan.scanned_tables().len(),
        rewritten.plan.scanned_tables().len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_storage::ViewDef;
    use fgac_types::{Column, DataType, Row, Schema, Value};

    /// Section 3.3's schema + data: the misleading-average scenario.
    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int),
            ]),
            None,
        )
        .unwrap();
        let g = Ident::new("grades");
        for (s, c, gr) in [
            ("11", "cs101", 60),
            ("12", "cs101", 90),
            ("13", "cs101", 90),
        ] {
            db.insert(&g, Row(vec![s.into(), c.into(), Value::Int(gr)]))
                .unwrap();
        }
        db.add_view(ViewDef {
            name: Ident::new("mygrades"),
            authorization: true,
            query: fgac_sql::parse_query("select * from grades where student_id = $user_id")
                .unwrap(),
        })
        .unwrap();
        db
    }

    #[test]
    fn misleading_average_of_section_3_3() {
        // Query: select avg(grade) from Grades. True answer: 80.
        // Truman answer for user 11: avg of her own grades = 60 — the
        // paper's flagship misleading result.
        let db = db();
        let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
        let session = Session::new("11");
        let r = truman_execute(&db, &policy, &session, "select avg(grade) from grades").unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Double(60.0));

        // Unrestricted execution gives the true average.
        let truth = fgac_exec::run_query_sql(
            &db,
            "select avg(grade) from grades",
            session.params(),
        )
        .unwrap();
        assert_eq!(truth.rows[0].get(0), &Value::Double(80.0));
    }

    #[test]
    fn vpd_predicate_append_matches_view_substitution() {
        let db = db();
        let vpd = TrumanPolicy::new()
            .append_predicate("grades", "student_id = $user_id")
            .unwrap();
        let tv = TrumanPolicy::new().substitute_view("grades", "mygrades");
        let session = Session::new("12");
        let q = "select grade from grades where course_id = 'cs101'";
        let a = truman_execute(&db, &vpd, &session, q).unwrap();
        let b = truman_execute(&db, &tv, &session, q).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rows, vec![Row(vec![Value::Int(90)])]);
    }

    #[test]
    fn rewrite_preserves_aliases() {
        let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
        let out = truman_rewrite_sql(
            &policy,
            "select g.grade from grades g where g.course_id = 'cs101'",
        )
        .unwrap();
        assert!(out.contains("mygrades AS g"), "{out}");
    }

    #[test]
    fn rewrite_without_alias_keeps_binding_name() {
        let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
        let out =
            truman_rewrite_sql(&policy, "select grades.grade from grades").unwrap();
        // `grades.grade` must still resolve: view aliased back to grades.
        assert!(out.contains("mygrades AS grades"), "{out}");
        let db = db();
        let r = truman_execute(
            &db,
            &policy,
            &Session::new("11"),
            "select grades.grade from grades",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn predicate_append_qualifies_per_instance() {
        // Self-join: predicate must constrain each instance separately.
        let db = db();
        let vpd = TrumanPolicy::new()
            .append_predicate("grades", "student_id = $user_id")
            .unwrap();
        let r = truman_execute(
            &db,
            &vpd,
            &Session::new("11"),
            "select a.grade, b.grade from grades a, grades b where a.course_id = b.course_id",
        )
        .unwrap();
        // User 11 has one grade; self join restricted to her rows = 1 row.
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn truman_rewrite_adds_redundant_scans() {
        // When the policy view itself contains a join, the rewritten
        // query scans more relations — the E4 redundancy effect.
        let mut db = db();
        db.create_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        db.add_view(ViewDef {
            name: Ident::new("costudentgrades"),
            authorization: true,
            query: fgac_sql::parse_query(
                "select grades.* from grades, registered \
                 where registered.student_id = $user_id \
                 and grades.course_id = registered.course_id",
            )
            .unwrap(),
        })
        .unwrap();
        let policy = TrumanPolicy::new().substitute_view("grades", "costudentgrades");
        let session = Session::new("11");
        let (orig, rewritten) = scan_count_delta(
            &db,
            &policy,
            &session,
            "select grade from grades where course_id = 'cs101'",
        )
        .unwrap();
        assert_eq!(orig, 1);
        assert_eq!(rewritten, 2);
    }
}
