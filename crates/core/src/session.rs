//! Sessions: the execution context whose parameter values instantiate
//! authorization views (Section 2 / Oracle VPD's "secure application
//! context", Section 3.1).

use fgac_algebra::ParamScope;
use fgac_types::Value;

/// A user session. `$user_id` is always bound; arbitrary additional
/// parameters (`$time`, `$user_location`, ...) can be attached — the
/// paper's Section 2 examples include time- and IP-based policies.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    user: String,
    params: ParamScope,
}

impl Session {
    pub fn new(user: impl Into<String>) -> Self {
        let user = user.into();
        let mut params = ParamScope::new();
        params.set("user_id", user.as_str());
        Session { user, params }
    }

    /// Attaches an extra session parameter (e.g. `$time`).
    pub fn with_param(mut self, name: impl AsRef<str>, value: impl Into<Value>) -> Self {
        self.params.set(name, value);
        self
    }

    pub fn user(&self) -> &str {
        &self.user
    }

    pub fn params(&self) -> &ParamScope {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_is_bound_automatically() {
        let s = Session::new("11");
        assert_eq!(s.params().get("user_id"), Some(&Value::Str("11".into())));
        assert_eq!(s.user(), "11");
    }

    #[test]
    fn extra_params_attach() {
        let s = Session::new("11").with_param("time", 930).with_param("ip", "10.0.0.1");
        assert_eq!(s.params().get("time"), Some(&Value::Int(930)));
        assert_eq!(s.params().get("IP"), Some(&Value::Str("10.0.0.1".into())));
    }
}
