//! Grants: which authorization views, integrity constraints, and update
//! authorizations each user (or role) holds.
//!
//! Section 4.1: "an authorization view can be treated just like other
//! privileges in SQL"; Section 7 notes role-based access control
//! composes with authorization views "by granting authorization views to
//! roles" — so grants target *principals* (users or roles) and a user's
//! effective set is the union over their roles.

use fgac_sql::Authorize;
use fgac_types::Ident;
use std::collections::{BTreeMap, BTreeSet};

/// Grant tables for views, constraint visibility, and update
/// authorizations.
#[derive(Debug, Clone, Default)]
pub struct Grants {
    /// principal -> authorization view names.
    views: BTreeMap<String, BTreeSet<Ident>>,
    /// principal -> visible integrity constraint names (U3a condition 2:
    /// "the relevant integrity constraints are visible to the user").
    constraints: BTreeMap<String, BTreeSet<Ident>>,
    /// principal -> update authorizations (Section 4.4).
    update_auths: BTreeMap<String, Vec<Authorize>>,
    /// user -> roles.
    roles: BTreeMap<String, BTreeSet<String>>,
    /// principal -> views revoked from that principal. Advisory
    /// tombstones for the policy analyzer's `P003` lint (a revocation
    /// that a role grant still shadows); not part of durable state and
    /// not consulted by any validity check.
    revoked_views: BTreeMap<String, BTreeSet<Ident>>,
}

impl Grants {
    pub fn new() -> Self {
        Self::default()
    }

    /// Grants an authorization view to a user or role.
    pub fn grant_view(&mut self, principal: impl Into<String>, view: impl Into<Ident>) {
        let principal = principal.into();
        let view = view.into();
        // A re-grant supersedes any earlier revocation tombstone.
        if let Some(set) = self.revoked_views.get_mut(&principal) {
            set.remove(&view);
            if set.is_empty() {
                self.revoked_views.remove(&principal);
            }
        }
        self.views.entry(principal).or_default().insert(view);
    }

    pub fn revoke_view(&mut self, principal: &str, view: &Ident) {
        self.revoked_views
            .entry(principal.to_string())
            .or_default()
            .insert(view.clone());
        if let Some(set) = self.views.get_mut(principal) {
            set.remove(view);
            // Drop emptied entries so the grant table has one canonical
            // form — snapshot/recovery round-trips depend on it.
            if set.is_empty() {
                self.views.remove(principal);
            }
        }
    }

    /// Makes an integrity constraint visible to a user or role.
    pub fn grant_constraint(&mut self, principal: impl Into<String>, name: impl Into<Ident>) {
        self.constraints
            .entry(principal.into())
            .or_default()
            .insert(name.into());
    }

    /// Grants an update authorization (an `AUTHORIZE ...` statement) to a
    /// user or role.
    pub fn grant_update(&mut self, principal: impl Into<String>, auth: Authorize) {
        self.update_auths.entry(principal.into()).or_default().push(auth);
    }

    /// Adds a user to a role. Delegation chains (Section 6) can be
    /// resolved externally and granted here — "we can use any delegation
    /// specification technique to collect all available authorization
    /// views ... and then run our inferencing techniques on the resulting
    /// set".
    pub fn add_role(&mut self, user: impl Into<String>, role: impl Into<String>) {
        self.roles.entry(user.into()).or_default().insert(role.into());
    }

    fn principals_of<'a>(&'a self, user: &'a str) -> Vec<&'a str> {
        let mut out = vec![user];
        if let Some(roles) = self.roles.get(user) {
            out.extend(roles.iter().map(|s| s.as_str()));
        }
        out
    }

    /// The authorization views *available* to a user (Section 4.1),
    /// through direct grants and roles.
    pub fn views_for(&self, user: &str) -> Vec<Ident> {
        let mut out = BTreeSet::new();
        for p in self.principals_of(user) {
            if let Some(set) = self.views.get(p) {
                out.extend(set.iter().cloned());
            }
        }
        out.into_iter().collect()
    }

    /// The integrity constraints visible to a user.
    pub fn constraints_for(&self, user: &str) -> Vec<Ident> {
        let mut out = BTreeSet::new();
        for p in self.principals_of(user) {
            if let Some(set) = self.constraints.get(p) {
                out.extend(set.iter().cloned());
            }
        }
        out.into_iter().collect()
    }

    /// The update authorizations held by a user.
    pub fn update_auths_for(&self, user: &str) -> Vec<&Authorize> {
        let mut out = Vec::new();
        for p in self.principals_of(user) {
            if let Some(v) = self.update_auths.get(p) {
                out.extend(v.iter());
            }
        }
        out
    }

    /// The raw view-grant table (principal -> views). Snapshot/recovery
    /// support: iteration order is deterministic (BTreeMap).
    pub fn view_grants(&self) -> &BTreeMap<String, BTreeSet<Ident>> {
        &self.views
    }

    /// The raw constraint-visibility table (principal -> constraints).
    pub fn constraint_grants(&self) -> &BTreeMap<String, BTreeSet<Ident>> {
        &self.constraints
    }

    /// The raw update-authorization table (principal -> AUTHORIZE asts).
    pub fn update_grants(&self) -> &BTreeMap<String, Vec<Authorize>> {
        &self.update_auths
    }

    /// The raw role-membership table (user -> roles).
    pub fn role_memberships(&self) -> &BTreeMap<String, BTreeSet<String>> {
        &self.roles
    }

    /// Revocation tombstones (principal -> views revoked from it),
    /// kept so the policy analyzer can flag revocations that a role
    /// grant shadows (`P003`). Advisory: excluded from snapshots and
    /// state fingerprints, and never consulted by validity checks.
    pub fn revoked_views(&self) -> &BTreeMap<String, BTreeSet<Ident>> {
        &self.revoked_views
    }

    /// Delegates a view grant from one user to another (Section 6:
    /// "Delegation can be done outside of our inferencing system: we can
    /// use any delegation specification technique to collect all
    /// available authorization views ... and then run our inferencing
    /// techniques on the resulting set"). The delegator must hold the
    /// view (directly or via a role).
    pub fn delegate_view(
        &mut self,
        from: &str,
        to: impl Into<String>,
        view: &Ident,
    ) -> fgac_types::Result<()> {
        if !self.views_for(from).contains(view) {
            return Err(fgac_types::Error::Unauthorized(format!(
                "user {from} does not hold view {view} and cannot delegate it"
            )));
        }
        self.grant_view(to, view.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_and_role_grants_union() {
        let mut g = Grants::new();
        g.grant_view("11", "mygrades");
        g.grant_view("student", "courselist");
        g.add_role("11", "student");
        let views = g.views_for("11");
        assert_eq!(views.len(), 2);
        assert!(views.contains(&Ident::new("mygrades")));
        assert!(views.contains(&Ident::new("courselist")));
        // Another user without the role sees nothing.
        assert!(g.views_for("12").is_empty());
    }

    #[test]
    fn revoke_removes_direct_grant() {
        let mut g = Grants::new();
        g.grant_view("11", "v");
        g.revoke_view("11", &Ident::new("v"));
        assert!(g.views_for("11").is_empty());
    }

    #[test]
    fn revocation_tombstones_recorded_and_cleared_by_regrant() {
        let mut g = Grants::new();
        g.grant_view("11", "v");
        g.revoke_view("11", &Ident::new("v"));
        let tomb = g.revoked_views().get("11").expect("tombstone recorded");
        assert!(tomb.contains(&Ident::new("v")));
        // Re-granting supersedes the tombstone entirely.
        g.grant_view("11", "v");
        assert!(g.revoked_views().get("11").is_none());
        assert!(g.views_for("11").contains(&Ident::new("v")));
    }

    #[test]
    fn constraint_visibility_tracked_separately() {
        let mut g = Grants::new();
        g.grant_view("11", "v");
        assert!(g.constraints_for("11").is_empty());
        g.grant_constraint("11", "ft_registered");
        assert_eq!(g.constraints_for("11"), vec![Ident::new("ft_registered")]);
    }

    #[test]
    fn delegation_requires_holding_the_view() {
        let mut g = Grants::new();
        g.grant_view("alice", "v");
        // Alice can delegate to Bob.
        g.delegate_view("alice", "bob", &Ident::new("v")).unwrap();
        assert!(g.views_for("bob").contains(&Ident::new("v")));
        // Carol holds nothing and cannot delegate.
        assert!(g.delegate_view("carol", "dave", &Ident::new("v")).is_err());
        // Delegation chains work (Bob -> Carol).
        g.delegate_view("bob", "carol", &Ident::new("v")).unwrap();
        assert!(g.views_for("carol").contains(&Ident::new("v")));
    }

    #[test]
    fn update_auths_accumulate() {
        let mut g = Grants::new();
        let fgac_sql::Statement::Authorize(a) = fgac_sql::parse_statement(
            "authorize insert on registered where student_id = $user_id",
        )
        .unwrap() else {
            panic!()
        };
        g.grant_update("student", a.clone());
        g.add_role("11", "student");
        assert_eq!(g.update_auths_for("11").len(), 1);
        assert_eq!(g.update_auths_for("99").len(), 0);
    }
}
