//! A concurrently shareable engine: many reader sessions, one writer.
//!
//! The paper places fine-grained access control *inside* the DBMS so it
//! can serve many concurrently connected principals; this module is the
//! seam that makes the single-threaded [`Engine`] safe to share. The
//! split follows the engine's own mutability structure:
//!
//! * **Read-only statements** — queries, `EXPLAIN AUTHORIZATION`,
//!   session-scoped `ANALYZE POLICY` — need only `&Engine`
//!   ([`Engine::try_execute_read`]). They run under a **shared read
//!   lock** against the epoch-versioned catalog/grants; the plan and
//!   validity caches already use interior mutability (sharded locks +
//!   atomic counters), so concurrent readers admit in parallel.
//! * **Writes** — DML, DDL, grants/revocations, role changes —
//!   serialize through the **single writer** path (`&mut Engine`), which
//!   holds exclusivity across the existing WAL commit points. A grant or
//!   revocation therefore bumps the policy epoch and clears the caches
//!   *while no reader holds a verdict in its hands*: any check that
//!   started before the write completed under the old grants (correct —
//!   it raced the revocation and could legitimately have run first), and
//!   any check that starts after sees the new epoch and a cold cache. No
//!   stale verdict is ever served across an epoch bump.
//!
//! Fail-closed under updates (Guarnieri et al.'s requirement that the
//! security semantics hold while grants churn) falls out of this
//! structure: the epoch bump and cache clear happen inside the writer's
//! critical section.

use crate::engine::{Engine, EngineResponse};
use crate::session::Session;
use fgac_types::Result;
use parking_lot::RwLock;
use std::sync::Arc;
use std::time::Instant;

/// A cheaply cloneable handle to one engine shared by many threads.
///
/// Created from a fully set-up [`Engine`] (schema, grants, durability);
/// every clone refers to the same underlying engine. Statement routing
/// is automatic: read-only statements run under the shared read lock,
/// everything else under the exclusive write lock.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<RwLock<Engine>>,
}

impl SharedEngine {
    pub fn new(engine: Engine) -> Self {
        SharedEngine {
            inner: Arc::new(RwLock::new(engine)),
        }
    }

    /// Executes one statement for `session`, routing it to the shared
    /// read path or the exclusive write path as needed.
    pub fn execute(&self, session: &Session, sql: &str) -> Result<EngineResponse> {
        self.execute_at(session, sql, None)
    }

    /// [`SharedEngine::execute`] under a per-request wall-clock
    /// deadline, threaded into the validity check's budget meter (see
    /// [`Engine::execute_at`]). The deadline is honored on both paths:
    /// a request that spent its whole allowance queueing for the write
    /// lock is denied fail-closed before it executes.
    pub fn execute_at(
        &self,
        session: &Session,
        sql: &str,
        deadline: Option<Instant>,
    ) -> Result<EngineResponse> {
        {
            let engine = self.inner.read();
            if let Some(result) = engine.try_execute_read(session, sql, deadline) {
                return result;
            }
        }
        // A write statement: re-enter through the exclusive path. The
        // deadline is re-checked inside (lock acquisition may have
        // consumed the remaining allowance).
        let mut engine = self.inner.write();
        engine.execute_at(session, sql, deadline)
    }

    /// Runs `f` under the shared read lock.
    pub fn with_read<R>(&self, f: impl FnOnce(&Engine) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` under the exclusive write lock (the admin/writer path:
    /// DDL, grants, revocations, bulk loads).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut Engine) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Shuts the engine down: takes the write lock (so every in-flight
    /// statement has finished), fsyncs the WAL, and marks the engine
    /// closed. Subsequent statements on any clone return a clean error;
    /// a second close reports double-close (see [`Engine::close`]).
    pub fn close(&self) -> Result<()> {
        self.inner.write().close()
    }

    pub fn is_closed(&self) -> bool {
        self.inner.read().is_closed()
    }

    pub fn policy_epoch(&self) -> u64 {
        self.inner.read().policy_epoch()
    }

    pub fn data_version(&self) -> u64 {
        self.inner.read().data_version()
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEngine").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of SharedEngine: the engine crosses threads.
    #[test]
    fn shared_engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedEngine>();
        assert_send_sync::<Engine>();
    }

    fn shared() -> SharedEngine {
        let mut e = Engine::new();
        e.admin_script(
            "create table grades (student_id varchar not null, course_id varchar not null, \
               grade int, primary key (student_id, course_id));
             create authorization view MyGrades as \
               select * from grades where student_id = $user_id;
             insert into grades values ('11', 'cs101', 90), ('12', 'cs101', 70);",
        )
        .unwrap();
        e.grant_view("11", "mygrades").unwrap();
        SharedEngine::new(e)
    }

    #[test]
    fn read_path_serves_queries_and_write_path_serves_dml() {
        let s = shared();
        let sess = Session::new("11");
        let q = "select grade from grades where student_id = '11'";
        let r = s.execute(&sess, q).unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
        // DML routes to the writer.
        s.with_write(|e| {
            e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
        })
        .unwrap();
        let n = s
            .execute(&sess, "insert into grades values ('11', 'cs102', 80)")
            .unwrap();
        assert_eq!(n.affected(), Some(1));
    }

    #[test]
    fn revocation_between_executions_denies() {
        let s = shared();
        let sess = Session::new("11");
        let q = "select grade from grades where student_id = '11'";
        s.execute(&sess, q).unwrap();
        let before = s.policy_epoch();
        s.with_write(|e| e.revoke_view("11", "mygrades")).unwrap();
        assert!(s.policy_epoch() > before);
        let err = s.execute(&sess, q).unwrap_err();
        assert!(err.is_unauthorized(), "got {err:?}");
    }

    #[test]
    fn close_makes_every_clone_refuse_cleanly() {
        let s = shared();
        let clone = s.clone();
        s.close().unwrap();
        assert!(clone.is_closed());
        let err = clone
            .execute(&Session::new("11"), "select grade from grades")
            .unwrap_err();
        assert!(
            matches!(err, fgac_types::Error::Unsupported(_)),
            "got {err:?}"
        );
        let err = s.close().unwrap_err();
        assert!(
            err.to_string().contains("double close"),
            "double close must be a clean, distinguishable error: {err}"
        );
    }
}
