//! # fgac-core
//!
//! The paper's contribution: authorization-transparent fine-grained
//! access control over the substrate crates.
//!
//! * [`AuthorizationView`] — parameterized and access-pattern views
//!   (Section 2), instantiated per session.
//! * [`Session`] / [`Grants`] — who is asking, which views, integrity
//!   constraints, and update authorizations they hold (Sections 4.1,
//!   4.4, and U3a's "the relevant integrity constraints are visible to
//!   the user").
//! * [`truman`] — the **Truman model** (Section 3): VPD-style
//!   transparent query modification, kept as the baseline whose
//!   misleading-answer and redundant-join pathologies the benches
//!   reproduce.
//! * [`nontruman`] — the **Non-Truman model** (Sections 4–5): the
//!   validity checker implementing inference rules U1, U2, U3a–U3c, C1,
//!   C2, C3a/C3b, plus the Section 6 access-pattern extensions, on top
//!   of the Volcano AND-OR DAG.
//! * [`UpdateAuthorizer`] (`updates`) — per-tuple authorization of INSERT/UPDATE/DELETE
//!   (Section 4.4).
//! * [`ValidityCache`] (`cache`) — sharded validity-check caching for
//!   repeated/prepared queries (the Section 5.6 optimizations).
//! * [`CompiledPolicies`] (`compiled`) — the compiled authorization
//!   fast path: per-principal capability bitmasks + column-coverage
//!   summaries so fully-covered U1/U2-unconditional queries admit
//!   without running the prover, flat in the number of granted views.
//! * [`PlanCache`] (`plancache`) — memoized parse+bind so repeated
//!   statements skip admission entirely (DESIGN.md "Hot path & caching
//!   layers").
//! * [`Engine`] — the façade a downstream application uses: DDL, grants,
//!   policy setup, and `execute` which enforces the chosen model.

mod authview;
mod cache;
pub mod compiled;
mod durability;
mod engine;
pub mod flowcache;
mod grants;
pub mod invalidation;
pub mod nontruman;
mod plancache;
mod prepared;
mod session;
mod shared;
pub mod truman;
mod updates;

pub use authview::AuthorizationView;
pub use cache::{CacheOutcome, CacheStats, ValidityCache};
pub use compiled::{CompiledPolicies, PrincipalCaps};
pub use fgac_analyze::{
    check_certificate, certificate_from_json, certificate_to_json, CertPolicy, CertVerdict,
    Certificate, CheckerOptions, Code as DiagnosticCode, Diagnostic, RuleId,
    Severity as DiagnosticSeverity, Step as CertStep,
};
pub use durability::{DurabilityOptions, RecoveryReport};
pub use engine::{Engine, EngineResponse};
pub use invalidation::PolicyDelta;
pub use plancache::{CachedPlan, PlanCache};
pub use grants::Grants;
pub use prepared::Prepared;
pub use nontruman::{CheckOptions, Validator, Verdict, ValidityReport};
pub use session::Session;
pub use shared::SharedEngine;
pub use updates::UpdateAuthorizer;
