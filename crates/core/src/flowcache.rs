//! Incremental whole-policy flow analysis.
//!
//! A full [`fgac_analyze::analyze_flow_set`] run over a 50k-view policy
//! set re-summarizes every view and re-derives every principal's
//! disclosure lattice. Policy churn makes that a recurring cost: one
//! grant to one principal invalidates nothing about anybody else's
//! lattice. This cache makes `ANALYZE FLOW` incremental the same way
//! the admission caches survive churn (see [`crate::invalidation`]):
//!
//! * **View summaries** are a pure function of the catalog, so the
//!   shared [`FlowContext`] memo survives every grant/revoke/role
//!   change and is dropped only when DDL introduces a catalog name.
//! * **Per-principal findings** are stamped with the policy epoch they
//!   were computed under. The [`PolicyDelta::affects`] sweep — the
//!   same predicate the validity cache uses — drops affected
//!   principals' entries and restamps the rest, so a grant to one
//!   principal re-analyzes only that principal (and role members
//!   inheriting from it) on the next run.
//!
//! Cached entries hold the *whole-set* analysis (role-sourced findings
//! deduplicated onto the role's pass). Single-principal runs
//! (`ANALYZE FLOW FOR p`, the session statement) are computed fresh
//! against the shared summary memo: their dedup context differs, and
//! they are not the hot path the bench gates.
//!
//! The sweep runs inside the writer's critical section (`&mut Engine` /
//! the [`crate::SharedEngine`] write lock) like every other cache
//! sweep, so a reader never observes new grants with stale flow
//! entries.

use fgac_analyze::{AnalyzeOptions, Diagnostic, FlowContext, PolicySet};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

// Process-wide observability, following the invalidation counter
// pattern: monotone, relaxed, never a correctness input.
static FLOW_ANALYSES: AtomicU64 = AtomicU64::new(0);
static FLOW_PRINCIPALS_COMPUTED: AtomicU64 = AtomicU64::new(0);
static FLOW_CACHE_HITS: AtomicU64 = AtomicU64::new(0);

/// `ANALYZE FLOW` runs served (all engines, cached or not).
pub fn flow_analysis_count() -> u64 {
    FLOW_ANALYSES.load(Ordering::Relaxed)
}

/// Per-principal lattices actually (re)computed.
pub fn flow_principals_computed() -> u64 {
    FLOW_PRINCIPALS_COMPUTED.load(Ordering::Relaxed)
}

/// Per-principal results served from the epoch-stamped cache.
pub fn flow_cache_hits() -> u64 {
    FLOW_CACHE_HITS.load(Ordering::Relaxed)
}

#[derive(Debug, Default)]
struct Inner {
    /// Shared view-summary memo (pure function of the catalog).
    ctx: FlowContext,
    /// principal → (policy epoch the findings were computed under,
    /// whole-set findings attributed to that principal).
    findings: BTreeMap<String, (u64, Vec<Diagnostic>)>,
}

/// Epoch-stamped per-principal flow findings plus the shared view
/// summary memo, swept by [`crate::invalidation::PolicyDelta`].
#[derive(Debug, Default)]
pub struct FlowAnalysisCache {
    inner: Mutex<Inner>,
}

impl FlowAnalysisCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops everything — the full-invalidation (recovery) path.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.ctx.clear();
        inner.findings.clear();
    }

    /// The dependency sweep: drops entries of principals the delta
    /// `affects`, restamps the rest from `from` to `to`, and clears the
    /// view-summary memo only when the change introduced a catalog name
    /// (the only way an existing view body can re-bind differently).
    pub fn apply_policy_change(
        &self,
        from: u64,
        to: u64,
        affects: impl Fn(&str) -> bool,
        introduced_name: bool,
    ) {
        let mut inner = self.inner.lock();
        if introduced_name {
            inner.ctx.clear();
        }
        inner.findings.retain(|p, entry| {
            if affects(p) {
                return false;
            }
            if entry.0 == from {
                entry.0 = to;
            }
            // An entry stamped older than `from` was already stale;
            // keep it stale so it recomputes on next use.
            true
        });
    }

    /// (epoch-fresh entries, total entries) — metrics surface.
    pub fn stats(&self, epoch: u64) -> (usize, usize) {
        let inner = self.inner.lock();
        let fresh = inner.findings.values().filter(|e| e.0 == epoch).count();
        (fresh, inner.findings.len())
    }

    /// The whole-set flow analysis at `epoch`, reusing every cached
    /// per-principal result still stamped with `epoch` and recomputing
    /// only the swept-out rest.
    pub fn analyze_full(
        &self,
        set: &PolicySet,
        epoch: u64,
        opts: &AnalyzeOptions,
    ) -> Vec<Diagnostic> {
        FLOW_ANALYSES.fetch_add(1, Ordering::Relaxed);
        let principals = fgac_analyze::flow_principals(set, None);
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut out = Vec::new();
        for p in &principals {
            if let Some((stamp, diags)) = inner.findings.get(p) {
                if *stamp == epoch {
                    FLOW_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                    out.extend(diags.iter().cloned());
                    continue;
                }
            }
            FLOW_PRINCIPALS_COMPUTED.fetch_add(1, Ordering::Relaxed);
            let flow = inner.ctx.principal_flow(set, p, &principals, opts);
            out.extend(flow.findings.iter().cloned());
            inner.findings.insert(p.clone(), (epoch, flow.findings));
        }
        // Entries for principals no longer in the grant tables would
        // never be swept by `affects` (revocation keeps a tombstone, so
        // in practice principals rarely vanish); drop them here so the
        // map tracks the live principal set.
        inner.findings.retain(|p, _| principals.contains(p));
        fgac_analyze::flow::sort_diags(&mut out);
        out
    }

    /// A single-principal analysis (`ANALYZE FLOW FOR p`): computed
    /// fresh — the dedup context (`analyzed = {p}`) differs from the
    /// whole-set entries — but against the shared summary memo.
    pub fn analyze_one(
        &self,
        set: &PolicySet,
        principal: &str,
        opts: &AnalyzeOptions,
    ) -> Vec<Diagnostic> {
        FLOW_ANALYSES.fetch_add(1, Ordering::Relaxed);
        FLOW_PRINCIPALS_COMPUTED.fetch_add(1, Ordering::Relaxed);
        let analyzed = std::iter::once(principal.to_string()).collect();
        let mut inner = self.inner.lock();
        inner
            .ctx
            .principal_flow(set, principal, &analyzed, opts)
            .findings
    }
}
