//! Authorization of updates (Section 4.4).
//!
//! "We consider updates individually, and checking if the
//! insertion/deletion/update of a particular tuple is authorized only
//! requires evaluation of a (fully instantiated) predicate."
//!
//! An `AUTHORIZE` condition may reference:
//! * bare columns — the inserted tuple (INSERT), the deleted tuple
//!   (DELETE), or the *new* tuple (UPDATE);
//! * `OLD(col)` / `NEW(col)` — the before/after images (UPDATE).
//!
//! A DML statement is authorized iff **every** affected tuple satisfies
//! at least one granted condition for that (action, table). For UPDATE,
//! a condition with a column list applies only when the statement
//! assigns a subset of those columns.

use crate::grants::Grants;
use crate::session::Session;
use fgac_algebra::{ArithOp, CmpOp, ScalarExpr};
use fgac_sql::{self as sql, DmlAction};
use fgac_storage::Database;
use fgac_types::{Error, Ident, Result, Row, Value};

/// Checks DML statements against granted `AUTHORIZE` conditions and
/// executes them when every affected tuple is authorized.
pub struct UpdateAuthorizer<'a> {
    pub grants: &'a Grants,
}

impl<'a> UpdateAuthorizer<'a> {
    pub fn new(grants: &'a Grants) -> Self {
        UpdateAuthorizer { grants }
    }

    /// Authorizes and (if allowed) executes an INSERT.
    pub fn insert(
        &self,
        db: &mut Database,
        session: &Session,
        stmt: &sql::Insert,
    ) -> Result<usize> {
        let rows = fgac_exec::insert_rows(db, stmt, session.params())?;
        let conds = self.conditions(db, session, DmlAction::Insert, &stmt.table, &[])?;
        for row in &rows {
            // INSERT: bare columns = the new tuple; OLD is meaningless.
            let env = Env {
                old: None,
                new: Some(row),
            };
            if !satisfies_any(&conds, &env)? {
                return Err(Error::Unauthorized(format!(
                    "insert into {} of tuple {row} is not authorized",
                    stmt.table
                )));
            }
        }
        // Every tuple is authorized: apply all-or-nothing so a
        // constraint failure on a later row cannot strand earlier ones.
        fgac_exec::insert_all_atomic(db, &stmt.table, rows)
    }

    /// Authorizes and (if allowed) executes a DELETE.
    pub fn delete(
        &self,
        db: &mut Database,
        session: &Session,
        stmt: &sql::Delete,
    ) -> Result<usize> {
        let conds = self.conditions(db, session, DmlAction::Delete, &stmt.table, &[])?;
        let filter = stmt
            .filter
            .as_ref()
            .map(|f| fgac_algebra::bind_table_expr(db.catalog(), &stmt.table, f, session.params()))
            .transpose()?;
        // Phase 1: find affected tuples and authorize each.
        let table = db.table_required(&stmt.table)?;
        let mut victims = Vec::new();
        for (i, row) in table.rows().iter().enumerate() {
            let hit = match &filter {
                None => true,
                Some(f) => fgac_exec::eval_predicate(f, row)?,
            };
            if !hit {
                continue;
            }
            // DELETE has no after-image: bare columns (bound to the
            // "new" slots) and OLD() both refer to the deleted tuple.
            let env = Env {
                old: Some(row),
                new: Some(row),
            };
            if !satisfies_any(&conds, &env)? {
                return Err(Error::Unauthorized(format!(
                    "delete from {} of tuple {row} is not authorized",
                    stmt.table
                )));
            }
            victims.push(i);
        }
        // Phase 2: apply by position — exact even for duplicate rows
        // (bag semantics), and nothing was touched if phase 1 failed.
        db.delete_at(&stmt.table, &victims)
    }

    /// Authorizes and (if allowed) executes an UPDATE.
    pub fn update(
        &self,
        db: &mut Database,
        session: &Session,
        stmt: &sql::Update,
    ) -> Result<usize> {
        let assigned: Vec<Ident> = stmt.assignments.iter().map(|(c, _)| c.clone()).collect();
        let conds = self.conditions(db, session, DmlAction::Update, &stmt.table, &assigned)?;
        let (filter, assignments) = fgac_exec::bind_update(db, stmt, session.params())?;

        // Phase 1: compute old/new images and authorize each.
        let table = db.table_required(&stmt.table)?;
        let mut count = 0usize;
        for row in table.rows() {
            let hit = match &filter {
                None => true,
                Some(f) => fgac_exec::eval_predicate(f, row)?,
            };
            if !hit {
                continue;
            }
            let mut new = row.clone();
            for (idx, e) in &assignments {
                new.0[*idx] = fgac_exec::eval(e, row)?;
            }
            let env = Env {
                old: Some(row),
                new: Some(&new),
            };
            if !satisfies_any(&conds, &env)? {
                return Err(Error::Unauthorized(format!(
                    "update of {} tuple {row} is not authorized",
                    stmt.table
                )));
            }
            count += 1;
        }
        // Phase 2: apply through the engine primitive.
        let applied = fgac_exec::update_matching(db, &stmt.table, filter.as_ref(), &assignments)?;
        debug_assert_eq!(applied, count);
        Ok(applied)
    }

    /// Collects and binds the conditions applicable to (action, table)
    /// for this user. For UPDATE, conditions with a column list apply
    /// only when the assigned columns are a subset of the list.
    fn conditions(
        &self,
        db: &Database,
        session: &Session,
        action: DmlAction,
        table: &Ident,
        assigned: &[Ident],
    ) -> Result<Vec<BoundCondition>> {
        let mut out = Vec::new();
        for auth in self.grants.update_auths_for(session.user()) {
            if auth.action != action || &auth.table != table {
                continue;
            }
            if action == DmlAction::Update
                && !auth.columns.is_empty()
                && !assigned.iter().all(|c| auth.columns.contains(c))
            {
                continue;
            }
            out.push(bind_condition(db, table, &auth.condition, session)?);
        }
        if out.is_empty() {
            return Err(Error::Unauthorized(format!(
                "no {action} authorization on {table} for user {}",
                session.user()
            )));
        }
        Ok(out)
    }
}

/// A condition bound over the old++new double-width row.
struct BoundCondition {
    expr: ScalarExpr,
    width: usize,
}

/// The tuple images available when evaluating a condition.
struct Env<'a> {
    old: Option<&'a Row>,
    new: Option<&'a Row>,
}

fn satisfies_any(conds: &[BoundCondition], env: &Env<'_>) -> Result<bool> {
    for c in conds {
        let mut vals = Vec::with_capacity(2 * c.width);
        match env.old {
            Some(r) => vals.extend(r.values().iter().cloned()),
            None => vals.extend(std::iter::repeat_n(Value::Null, c.width)),
        }
        match env.new {
            Some(r) => vals.extend(r.values().iter().cloned()),
            None => vals.extend(std::iter::repeat_n(Value::Null, c.width)),
        }
        if fgac_exec::eval_predicate(&c.expr, &Row(vals))? {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Binds an `AUTHORIZE` condition over `[old row ++ new row]`:
/// `OLD(col)` → offset in the old image, `NEW(col)` and bare columns →
/// offset in the new image (falling back to the old image for DELETE,
/// where there is no new tuple — bare columns mean the deleted tuple).
fn bind_condition(
    db: &Database,
    table: &Ident,
    cond: &sql::Expr,
    session: &Session,
) -> Result<BoundCondition> {
    let meta = db
        .catalog()
        .table(table)
        .ok_or_else(|| Error::Bind(format!("unknown table {table}")))?;
    let width = meta.schema.len();
    let expr = bind_expr(cond, &meta.schema, width, session)?;
    Ok(BoundCondition { expr, width })
}

fn bind_expr(
    e: &sql::Expr,
    schema: &fgac_types::Schema,
    width: usize,
    session: &Session,
) -> Result<ScalarExpr> {
    let col_idx = |name: &Ident| -> Result<usize> {
        schema
            .index_of(name)
            .ok_or_else(|| Error::Bind(format!("unknown column {name} in authorize condition")))
    };
    Ok(match e {
        // Bare column: the statement's subject tuple — the inserted
        // tuple, the post-update image, or the deleted tuple (the caller
        // supplies the deleted tuple as both images for DELETE). Bound to
        // the "new" slots (offset width + i).
        // Qualifiers (e.g. `Students.student_id` in the paper's example)
        // are tolerated and ignored: conditions are single-table.
        sql::Expr::Column { name, .. } => ScalarExpr::Col(width + col_idx(name)?),
        sql::Expr::Literal(v) => ScalarExpr::Lit(v.clone()),
        sql::Expr::Param(p) => match session.params().get(p) {
            Some(v) => ScalarExpr::Lit(v.clone()),
            None => return Err(Error::Bind(format!("unbound session parameter ${p}"))),
        },
        sql::Expr::AccessParam(p) => {
            return Err(Error::Unsupported(format!(
                "$$-parameters ($${p}) are not allowed in authorize conditions"
            )))
        }
        sql::Expr::Function { name, args, .. } if name == &Ident::new("old") => {
            let col = single_column_arg(args)?;
            ScalarExpr::Col(col_idx(&col)?)
        }
        sql::Expr::Function { name, args, .. } if name == &Ident::new("new") => {
            let col = single_column_arg(args)?;
            ScalarExpr::Col(width + col_idx(&col)?)
        }
        sql::Expr::Function { name, .. } => {
            return Err(Error::Unsupported(format!(
                "function {name} not allowed in authorize conditions"
            )))
        }
        sql::Expr::Unary { op, expr } => {
            let inner = bind_expr(expr, schema, width, session)?;
            match op {
                sql::UnaryOp::Not => ScalarExpr::Not(Box::new(inner)),
                sql::UnaryOp::Neg => ScalarExpr::Neg(Box::new(inner)),
            }
        }
        sql::Expr::Binary { left, op, right } => {
            let l = bind_expr(left, schema, width, session)?;
            let r = bind_expr(right, schema, width, session)?;
            use sql::BinaryOp as B;
            match op {
                B::And => ScalarExpr::And(vec![l, r]),
                B::Or => ScalarExpr::Or(vec![l, r]),
                B::Eq => ScalarExpr::cmp(CmpOp::Eq, l, r),
                B::NotEq => ScalarExpr::cmp(CmpOp::NotEq, l, r),
                B::Lt => ScalarExpr::cmp(CmpOp::Lt, l, r),
                B::LtEq => ScalarExpr::cmp(CmpOp::LtEq, l, r),
                B::Gt => ScalarExpr::cmp(CmpOp::Gt, l, r),
                B::GtEq => ScalarExpr::cmp(CmpOp::GtEq, l, r),
                B::Add => arith(ArithOp::Add, l, r),
                B::Sub => arith(ArithOp::Sub, l, r),
                B::Mul => arith(ArithOp::Mul, l, r),
                B::Div => arith(ArithOp::Div, l, r),
                B::Mod => arith(ArithOp::Mod, l, r),
            }
        }
        sql::Expr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(bind_expr(expr, schema, width, session)?),
            negated: *negated,
        },
    })
}

fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

fn single_column_arg(args: &[sql::Expr]) -> Result<Ident> {
    match args {
        [sql::Expr::Column { name, .. }] => Ok(name.clone()),
        _ => Err(Error::Bind(
            "OLD()/NEW() take exactly one column argument".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType, Schema};

    fn setup() -> (Database, Grants) {
        let mut db = Database::new();
        db.create_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        db.create_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("address", DataType::Str).nullable(),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        db.insert(
            &Ident::new("students"),
            Row(vec!["11".into(), "ann".into(), "old addr".into()]),
        )
        .unwrap();
        db.insert(
            &Ident::new("students"),
            Row(vec!["12".into(), "bob".into(), "elsewhere".into()]),
        )
        .unwrap();

        let mut grants = Grants::new();
        // Section 4.4's two authorizations.
        let sql::Statement::Authorize(a1) = fgac_sql::parse_statement(
            "authorize insert on registered where student_id = $user_id",
        )
        .unwrap() else {
            panic!()
        };
        let sql::Statement::Authorize(a2) = fgac_sql::parse_statement(
            "authorize update on students (address) where old(student_id) = $user_id",
        )
        .unwrap() else {
            panic!()
        };
        grants.grant_update("11", a1);
        grants.grant_update("11", a2);
        (db, grants)
    }

    fn parse_insert(s: &str) -> sql::Insert {
        match fgac_sql::parse_statement(s).unwrap() {
            sql::Statement::Insert(i) => i,
            _ => panic!(),
        }
    }

    fn parse_update(s: &str) -> sql::Update {
        match fgac_sql::parse_statement(s).unwrap() {
            sql::Statement::Update(u) => u,
            _ => panic!(),
        }
    }

    fn parse_delete(s: &str) -> sql::Delete {
        match fgac_sql::parse_statement(s).unwrap() {
            sql::Statement::Delete(d) => d,
            _ => panic!(),
        }
    }

    #[test]
    fn own_registration_insert_allowed() {
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let n = auth
            .insert(
                &mut db,
                &session,
                &parse_insert("insert into registered values ('11', 'cs101')"),
            )
            .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn other_users_registration_insert_rejected() {
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let err = auth.insert(
            &mut db,
            &session,
            &parse_insert("insert into registered values ('12', 'cs101')"),
        );
        assert!(matches!(err, Err(Error::Unauthorized(_))));
        // Nothing inserted.
        assert_eq!(db.table(&Ident::new("registered")).unwrap().len(), 0);
    }

    #[test]
    fn mixed_batch_rejected_atomically() {
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let err = auth.insert(
            &mut db,
            &session,
            &parse_insert("insert into registered values ('11', 'cs101'), ('12', 'cs101')"),
        );
        assert!(err.is_err());
        assert_eq!(db.table(&Ident::new("registered")).unwrap().len(), 0);
    }

    #[test]
    fn own_address_update_allowed() {
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let n = auth
            .update(
                &mut db,
                &session,
                &parse_update(
                    "update students set address = 'new addr' where student_id = '11'",
                ),
            )
            .unwrap();
        assert_eq!(n, 1);
        let rows = db.table(&Ident::new("students")).unwrap().rows();
        assert_eq!(rows[0].get(2), &Value::Str("new addr".into()));
    }

    #[test]
    fn updating_unlisted_column_rejected() {
        // The grant covers only (address); changing name is out of scope.
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let err = auth.update(
            &mut db,
            &session,
            &parse_update("update students set name = 'eve' where student_id = '11'"),
        );
        assert!(matches!(err, Err(Error::Unauthorized(_))));
    }

    #[test]
    fn updating_someone_elses_address_rejected() {
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let err = auth.update(
            &mut db,
            &session,
            &parse_update("update students set address = 'x' where student_id = '12'"),
        );
        assert!(matches!(err, Err(Error::Unauthorized(_))));
        // Wide update touching both rows also rejected (12's row fails).
        let err = auth.update(
            &mut db,
            &session,
            &parse_update("update students set address = 'x'"),
        );
        assert!(err.is_err());
        // No partial effects.
        let rows = db.table(&Ident::new("students")).unwrap().rows();
        assert_eq!(rows[0].get(2), &Value::Str("old addr".into()));
    }

    #[test]
    fn delete_without_grant_rejected() {
        let (mut db, grants) = setup();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        let err = auth.delete(
            &mut db,
            &session,
            &parse_delete("delete from students where student_id = '11'"),
        );
        assert!(matches!(err, Err(Error::Unauthorized(_))));
    }

    #[test]
    fn delete_with_matching_condition_allowed() {
        let (mut db, mut grants) = setup();
        let sql::Statement::Authorize(a) = fgac_sql::parse_statement(
            "authorize delete on registered where student_id = $user_id",
        )
        .unwrap() else {
            panic!()
        };
        grants.grant_update("11", a);
        // Seed rows bypassing checks (admin load).
        db.insert(
            &Ident::new("registered"),
            Row(vec!["11".into(), "cs101".into()]),
        )
        .unwrap();
        db.insert(
            &Ident::new("registered"),
            Row(vec!["12".into(), "cs101".into()]),
        )
        .unwrap();
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("11");
        // Deleting own row works.
        let n = auth
            .delete(
                &mut db,
                &session,
                &parse_delete("delete from registered where student_id = '11'"),
            )
            .unwrap();
        assert_eq!(n, 1);
        // Unfiltered delete hits 12's row -> rejected, nothing deleted.
        let err = auth.delete(&mut db, &session, &parse_delete("delete from registered"));
        assert!(err.is_err());
        assert_eq!(db.table(&Ident::new("registered")).unwrap().len(), 1);
    }

    #[test]
    fn new_old_images_available_in_update_condition() {
        let (mut db, mut grants) = setup();
        // Grades can only be raised, never lowered.
        db.create_table(
            "scores",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("score", DataType::Int),
            ]),
            None,
        )
        .unwrap();
        db.insert(&Ident::new("scores"), Row(vec!["11".into(), Value::Int(50)]))
            .unwrap();
        let sql::Statement::Authorize(a) = fgac_sql::parse_statement(
            "authorize update on scores where new(score) >= old(score)",
        )
        .unwrap() else {
            panic!()
        };
        grants.grant_update("t", a);
        let auth = UpdateAuthorizer::new(&grants);
        let session = Session::new("t");
        let n = auth
            .update(&mut db, &session, &parse_update("update scores set score = 60"))
            .unwrap();
        assert_eq!(n, 1);
        let err = auth.update(&mut db, &session, &parse_update("update scores set score = 10"));
        assert!(matches!(err, Err(Error::Unauthorized(_))));
    }
}
