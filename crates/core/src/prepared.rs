//! Prepared statements (Section 5.6's optimization target).
//!
//! "Most uses of a database are from application programs, which execute
//! the same queries repeatedly, albeit with different constant values,
//! for different users. For ODBC/JDBC prepared statements, we can
//! analyze the query ... and come up with a cheap test that is used each
//! time the query is executed."
//!
//! A [`Prepared`] query is parsed once; every execution binds it with
//! the session's parameters and goes through the engine's validity
//! cache, so re-executions with the same instantiation cost a
//! fingerprint lookup (see experiment E5). Templates written with
//! `$user_id` hit the cache *per user*, templates with `$`-parameters
//! hit per parameter value — exactly the "cheap per-execution test".

use crate::engine::{Engine, EngineResponse};
use crate::session::Session;
use fgac_sql::Statement;
use fgac_types::{Error, Result};

/// A parsed, reusable statement.
#[derive(Debug, Clone)]
pub struct Prepared {
    pub(crate) stmt: Statement,
    pub(crate) text: String,
}

impl Prepared {
    /// The original SQL text.
    pub fn sql(&self) -> &str {
        &self.text
    }

    pub fn is_query(&self) -> bool {
        matches!(self.stmt, Statement::Query(_))
    }
}

impl Engine {
    /// Parses a statement for repeated execution.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let stmt = fgac_sql::parse_statement(sql)?;
        match stmt {
            Statement::Query(_) | Statement::Insert(_) | Statement::Update(_)
            | Statement::Delete(_) => Ok(Prepared {
                stmt,
                text: sql.to_string(),
            }),
            _ => Err(Error::Unsupported(
                "only queries and DML can be prepared".into(),
            )),
        }
    }

    /// Executes a prepared statement for a session (validity checked,
    /// cache-accelerated).
    pub fn execute_prepared(
        &mut self,
        session: &Session,
        prepared: &Prepared,
    ) -> Result<EngineResponse> {
        match &prepared.stmt {
            // Queries ride the full hot path: the prepared text keys the
            // plan cache, so a re-execution reuses the cached bound plan
            // (no re-bind) and its precomputed validity fingerprint.
            Statement::Query(q) => {
                let cached = match self.plan_cache().get(&prepared.text, session.params()) {
                    Some(c) => c,
                    None => self.admit_query(session, &prepared.text, q)?,
                };
                self.execute_cached_query(session, &cached)
            }
            // DML re-dispatches on the stored statement; parsing is
            // skipped, per-tuple authorization runs every time.
            _ => self.execute_statement(session, &prepared.stmt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.admin_script(
            "create table grades (student_id varchar not null, \
               course_id varchar not null, grade int);
             create authorization view MyGrades as \
               select * from grades where student_id = $user_id;
             insert into grades values ('11','cs101',90), ('12','cs101',70);",
        )
        .unwrap();
        e.grant_view("11", "mygrades").unwrap();
        e.grant_view("12", "mygrades").unwrap();
        e
    }

    #[test]
    fn prepared_template_reuses_cache_per_user() {
        let mut e = engine();
        // One template, two users: the $user_id makes it valid for both,
        // each against their own instantiation.
        let p = e
            .prepare("select grade from grades where student_id = $user_id")
            .unwrap();
        assert!(p.is_query());
        for user in ["11", "12", "11", "12", "11"] {
            let s = Session::new(user);
            let r = e.execute_prepared(&s, &p).unwrap();
            assert_eq!(r.rows().unwrap().rows.len(), 1);
        }
        let (hits, _) = e.cache().stats();
        assert!(hits >= 3, "repeat executions must hit the cache");
    }

    #[test]
    fn prepared_dml_is_authorized_per_execution() {
        let mut e = engine();
        e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
            .unwrap();
        let p = e
            .prepare("insert into grades values ($user_id, 'cs202', 50)")
            .unwrap();
        assert!(!p.is_query());
        // Authorized for 11...
        assert!(e.execute_prepared(&Session::new("11"), &p).is_ok());
        // ...but 12 has no insert authorization.
        assert!(e.execute_prepared(&Session::new("12"), &p).is_err());
    }

    #[test]
    fn ddl_cannot_be_prepared() {
        let e = engine();
        assert!(e.prepare("create table t (a int)").is_err());
    }
}
