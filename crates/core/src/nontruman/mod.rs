//! The Non-Truman model validity checker (Sections 4–5).
//!
//! A query is **valid** if it can be answered using only the information
//! in the user's instantiated authorization views; valid queries run
//! *unmodified*, invalid queries are rejected outright (no Truman-style
//! silent rewriting). The checker is sound but — necessarily, Section
//! 5.5 — incomplete; "false" answers reject queries that a cleverer
//! prover might accept.
//!
//! Pipeline (one [`Validator::check_query`] call):
//!
//! 1. bind the query and every granted view with the session parameters
//!    (*instantiated authorization views*, Section 2);
//! 2. insert everything into the Volcano AND-OR [`Dag`], expand with
//!    equivalence rules + subsumption derivations, and run the bottom-up
//!    marking of Section 5.6.2 — rules **U1/U2**;
//! 3. run the SPJ-block matcher against valid blocks (view-level
//!    rewriting with multiset-precise reasoning);
//! 4. apply **U3a/U3b/U3c** derivations from user-visible inclusion
//!    dependencies, feeding derived cores back into the DAG and matcher;
//! 5. try the Section 6 access-pattern mechanisms (constant
//!    instantiation and dependent joins);
//! 6. if still not unconditionally valid, try **C3a/C3b**: find a
//!    remainder instantiation whose `v_r` is valid *and* non-empty on
//!    the current state — yielding *conditional* validity.

pub mod access_pattern;
pub mod c3;
mod certbuilder;
pub mod matcher;
pub mod strengthen;
pub mod u3;

use crate::authview::AuthorizationView;
use crate::compiled::{self, PrincipalCaps};
use crate::grants::Grants;
use crate::session::Session;
use certbuilder::CertBuilder;
use fgac_algebra::{normalize, Plan, SpjBlock};
use fgac_analyze::{CertVerdict, Certificate, RuleId, Step};
use fgac_optimizer::{expand, mark_valid, Dag, DagStats, EqId, ExpandOptions, Marking, Operator};
use fgac_storage::Database;
use fgac_types::{Budget, BudgetMeter, Ident, Result, Value};
use std::collections::BTreeSet;

/// Phase label the validator's own pipeline steps charge under.
const PHASE: &str = "inference rounds";

/// Process-wide count of C3 remainder probes actually executed against
/// the database state. Monotonic, relaxed — an observability counter
/// (the server's `METRICS` command reports it), never a correctness
/// input.
static C3_PROBES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Total C3 state probes executed by this process (all engines).
pub fn c3_probe_count() -> u64 {
    C3_PROBES.load(std::sync::atomic::Ordering::Relaxed)
}

/// The outcome of a validity check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Equivalent to a query over the views on *all* states (Def. 4.1).
    Unconditional,
    /// Equivalent on all states PA-equivalent to the current one
    /// (Def. 4.3) — contingent on the current database state.
    Conditional,
    /// Not inferable as valid: rejected. Rejection is safe (Example
    /// 4.3): it reveals only non-coverage by the authorization views.
    Invalid,
}

/// A full validity report: verdict plus the rule trace.
#[derive(Debug, Clone)]
pub struct ValidityReport {
    pub verdict: Verdict,
    /// Which inference steps fired, in order.
    pub rules: Vec<String>,
    /// Reason for rejection.
    pub reason: Option<String>,
    /// DAG size after expansion — experiment E1/E2 instrumentation.
    pub dag_stats: DagStats,
    /// Number of instantiated authorization views considered (after
    /// pruning).
    pub views_considered: usize,
    /// Set when the check's resource budget ran out before the pipeline
    /// finished, naming the phase that exhausted it. The verdict is then
    /// necessarily [`Verdict::Invalid`] — fail closed: an interrupted
    /// check can reject a provable query but never accept an unprovable
    /// one.
    pub exhausted: Option<String>,
    /// Machine-checkable derivation behind an ACCEPT: every rule
    /// application as a typed [`Step`], re-verifiable by the independent
    /// checker in `fgac-analyze` ([`fgac_analyze::check_certificate`]).
    /// `None` for rejections, exhaustion, and when
    /// [`CheckOptions::emit_certificates`] is off. The validator stamps
    /// `policy_epoch` 0; the engine overwrites it with the live epoch.
    pub certificate: Option<Certificate>,
}

impl ValidityReport {
    pub fn is_valid(&self) -> bool {
        self.verdict != Verdict::Invalid
    }
}

/// Tunables for the checker; the defaults implement the full rule set.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    pub expand: ExpandOptions,
    /// Enable the U3 family (needs integrity-constraint grants).
    pub enable_u3: bool,
    /// Enable conditional validity (C3; probes the database state).
    pub enable_c3: bool,
    /// Enable Section 6 access-pattern mechanisms.
    pub enable_access_patterns: bool,
    /// Prune granted views that share no base table with the query —
    /// the Section 5.6 "eliminate authorization views that cannot
    /// possibly be of use" optimization (experiment E3).
    pub prune_irrelevant_views: bool,
    /// Fixpoint bound on U3/matcher rounds.
    pub max_rounds: usize,
    /// Resource allowance for one check: inference steps plus an
    /// optional wall-clock deadline. The default is generous enough that
    /// every verdict on ordinary workloads is unchanged; exhaustion
    /// surfaces as `Error::ResourceExhausted` and the engine maps it to
    /// a fail-closed DENY.
    pub budget: Budget,
    /// Record a validity certificate alongside every ACCEPT. Emission
    /// never changes a verdict — it only records the derivation — so
    /// turning it off is purely a time/space optimization.
    pub emit_certificates: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            expand: ExpandOptions::default(),
            enable_u3: true,
            enable_c3: true,
            enable_access_patterns: true,
            prune_irrelevant_views: true,
            max_rounds: 4,
            budget: Budget::default(),
            emit_certificates: true,
        }
    }
}

impl CheckOptions {
    /// Only the basic inference rules U1/U2 (+C1/C2 trivially) — the
    /// configuration the paper says costs little over plain optimization
    /// (Section 5.6, experiment E2).
    pub fn basic_only() -> Self {
        CheckOptions {
            enable_u3: false,
            enable_c3: false,
            enable_access_patterns: false,
            ..Default::default()
        }
    }
}

/// The Non-Truman validity checker.
pub struct Validator<'a> {
    db: &'a Database,
    grants: &'a Grants,
    options: CheckOptions,
    /// Compiled capability snapshot for the session's principal, when
    /// the engine has one (see [`crate::compiled`]). Consulted before
    /// the prover; a miss falls through with the verdict unchanged.
    compiled: Option<std::sync::Arc<PrincipalCaps>>,
}

/// A block known computable by the user, with its validity flavor.
#[derive(Debug, Clone)]
struct ValidBlock {
    block: SpjBlock,
    origin: String,
    /// Certificate step that established this block's validity (0 when
    /// emission is disabled).
    step: usize,
}

/// The growing set of known-valid blocks, kept in insertion order plus a
/// [`matcher::CandidateIndex`] over base-relation multisets. The matcher
/// passes consult only the candidate bucket for a query block's
/// signature instead of scanning the whole set — the SPJ matcher can
/// only succeed on an exact scan-multiset match, so everything outside
/// the bucket is a guaranteed miss.
#[derive(Debug, Clone, Default)]
struct ValidSet {
    blocks: Vec<ValidBlock>,
    index: matcher::CandidateIndex,
}

impl ValidSet {
    /// Whether an identical block is already present.
    fn contains(&self, block: &SpjBlock) -> bool {
        self.step_of(block).is_some()
    }

    /// Certificate step of the identical block already present, if any.
    fn step_of(&self, block: &SpjBlock) -> Option<usize> {
        let signature = matcher::CandidateIndex::signature(block);
        self.index
            .bucket(&signature)
            .iter()
            .find(|&&i| &self.blocks[i].block == block)
            .map(|&i| self.blocks[i].step)
    }

    /// Adds `block` unless an identical one is present (the duplicate
    /// scan is confined to the same-signature bucket). Returns whether
    /// the set grew.
    fn push(&mut self, block: SpjBlock, origin: String, step: usize) -> bool {
        if self.contains(&block) {
            return false;
        }
        let signature = matcher::CandidateIndex::signature(&block);
        self.index.insert(signature, self.blocks.len());
        self.blocks.push(ValidBlock { block, origin, step });
        true
    }

    /// Only the blocks whose scan-table multiset equals `block`'s — the
    /// ones [`matcher::match_block_metered`] could possibly accept.
    fn candidates(&self, block: &SpjBlock) -> impl Iterator<Item = &ValidBlock> {
        self.index
            .candidates(block)
            .iter()
            .map(move |&i| &self.blocks[i])
    }

    /// Only the blocks whose scan-table multiset equals `block`'s plus
    /// exactly one extra table — the ones
    /// [`c3::candidates_metered`] could possibly split (everything else
    /// is rejected by its leading length/alignment checks), in insertion
    /// order within the bucket.
    fn c3_candidates(&self, block: &SpjBlock) -> impl Iterator<Item = &ValidBlock> {
        self.index
            .c3_candidates(block)
            .iter()
            .map(move |&i| &self.blocks[i])
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }
}

/// An instantiated authorization view entering the check: either a plain
/// granted view (`pin == None`, `base == display`) or an access-pattern
/// view instantiated at a query constant, where `pin` records the
/// substituted parameter so the certificate checker can re-derive the
/// instantiation from the base view's catalog definition.
#[derive(Debug, Clone)]
struct RegView {
    /// Display name used in the human-readable rule trace.
    display: Ident,
    /// Catalog name of the granted view.
    base: Ident,
    /// Access-pattern parameter pinned to a query constant, if any.
    pin: Option<(String, Value)>,
    plan: Plan,
}

impl<'a> Validator<'a> {
    pub fn new(db: &'a Database, grants: &'a Grants) -> Self {
        Validator {
            db,
            grants,
            options: CheckOptions::default(),
            compiled: None,
        }
    }

    pub fn with_options(mut self, options: CheckOptions) -> Self {
        self.options = options;
        self
    }

    /// Installs a compiled capability snapshot (see [`crate::compiled`])
    /// for the session's principal. Fully-covered queries then admit via
    /// a bitmask AND + hash lookup instead of the prover; anything the
    /// snapshot cannot prove falls through unchanged.
    pub fn with_compiled(mut self, caps: std::sync::Arc<PrincipalCaps>) -> Self {
        self.compiled = Some(caps);
        self
    }

    /// Checks a SQL `SELECT` text.
    pub fn check_sql(&self, session: &Session, sql: &str) -> Result<ValidityReport> {
        let query = fgac_sql::parse_query(sql)?;
        self.check_query(session, &query)
    }

    /// Checks a parsed query.
    pub fn check_query(&self, session: &Session, query: &fgac_sql::Query) -> Result<ValidityReport> {
        let bound = fgac_algebra::bind_query(self.db.catalog(), query, session.params())?;
        self.check_plan(session, &bound.plan)
    }

    /// Checks a bound plan (ORDER BY / LIMIT are presentation and play
    /// no role in validity).
    pub fn check_plan(&self, session: &Session, plan: &Plan) -> Result<ValidityReport> {
        let qplan = normalize(plan);
        let mut rules: Vec<String> = Vec::new();
        let meter = self.options.budget.start();
        let query_tables: BTreeSet<Ident> = qplan.scanned_tables().into_iter().collect();
        let qblock = SpjBlock::decompose(&qplan);

        // --- Compiled fast path (FP1/FP2). ----------------------------
        // Admit via the principal's compiled capability snapshot when it
        // proves unconditional coverage outright; every accept still
        // mints a checkable U1 + U2Dag certificate. A miss records
        // nothing and falls through to the prover with the verdict
        // unchanged (the snapshot is fail-closed, never fail-open).
        if let Some(caps) = &self.compiled {
            meter.charge(PHASE, 1)?;
            if let Some(fp) = caps.admit(&qplan, qblock.as_ref()) {
                compiled::note_fastpath_hit();
                let mut builder = CertBuilder::new(self.options.emit_certificates);
                let mut premises = Vec::with_capacity(fp.views.len());
                for (view, block) in &fp.views {
                    let mut s = Step::new(RuleId::U1);
                    s.view = Some(view.clone());
                    s.block = Some(block.clone());
                    s.note =
                        format!("compiled unconditional coverage via authorization view {view}");
                    premises.push(builder.push_root(s));
                }
                let mut goal = Step::new(RuleId::U2Dag);
                goal.block = qblock.clone();
                goal.premises = premises;
                goal.note = fp.note.clone();
                builder.push(goal);
                rules.push(fp.note.clone());
                let cert = self.certificate(
                    session,
                    CertVerdict::Unconditional,
                    &query_tables,
                    &qblock,
                    builder,
                );
                return Ok(self.report(
                    Verdict::Unconditional,
                    rules,
                    DagStats::default(),
                    fp.views.len(),
                    cert,
                ));
            }
            compiled::note_fastpath_miss();
        }

        // --- Gather and instantiate the user's views. -----------------
        let mut all_views: Vec<RegView> = Vec::new();
        let mut ap_views: Vec<AuthorizationView> = Vec::new();
        for name in self.grants.views_for(session.user()) {
            meter.charge(PHASE, 1)?;
            let Some(def) = self.db.catalog().view(&name) else {
                continue;
            };
            if !def.authorization {
                continue;
            }
            let view = AuthorizationView::new(def.name.clone(), def.query.clone());
            if view.is_access_pattern() {
                ap_views.push(view);
                continue;
            }
            let Ok(bound) = view.instantiate(self.db.catalog(), session.params()) else {
                rules.push(format!(
                    "view {name} skipped: parameters missing in this session"
                ));
                continue;
            };
            all_views.push(RegView {
                display: name.clone(),
                base: name,
                pin: None,
                plan: normalize(&bound.plan),
            });
        }

        // Section 5.6 optimization: "eliminate authorization views that
        // cannot possibly be of use". Relevance is the *transitive*
        // table closure: a view over {grades, registered} makes
        // registered relevant to a grades query (its C3 remainder probe
        // runs over registered).
        let mut regular: Vec<RegView> = if self.options.prune_irrelevant_views {
            let mut relevant = query_tables.clone();
            loop {
                let before = relevant.len();
                for rv in &all_views {
                    let tables = rv.plan.scanned_tables();
                    if tables.iter().any(|t| relevant.contains(t)) {
                        relevant.extend(tables);
                    }
                }
                if relevant.len() == before {
                    break;
                }
            }
            all_views
                .into_iter()
                .filter(|rv| {
                    rv.plan.scanned_tables().iter().any(|t| relevant.contains(t))
                })
                .collect()
        } else {
            all_views
        };

        // Access-pattern views instantiated at the query's constants
        // (Section 6: validity against the set of all instantiations).
        let mut capabilities = Vec::new();
        if self.options.enable_access_patterns {
            let literals = access_pattern::query_literals(&qplan);
            for view in &ap_views {
                let params = view.access_params();
                for (val, inst) in access_pattern::instantiate_at_constants(view, &literals) {
                    if let Ok(bound) = inst.instantiate(self.db.catalog(), session.params()) {
                        let vplan = normalize(&bound.plan);
                        if vplan
                            .scanned_tables()
                            .iter()
                            .any(|t| query_tables.contains(t))
                        {
                            let pin = params.first().map(|p| (p.clone(), val.clone()));
                            regular.push(RegView {
                                display: Ident::new(format!("{}[$$={val}]", view.name)),
                                base: view.name.clone(),
                                pin,
                                plan: vplan,
                            });
                        }
                    }
                }
                if let Some(cap) =
                    access_pattern::capability(self.db.catalog(), view, session.params())
                {
                    capabilities.push(cap);
                }
            }
        }
        let views_considered = regular.len();

        // Q001: a query relation no granted view even mentions can never
        // become valid — every inference rule derives expressions over
        // the tables of the instantiated views. Reject before building
        // the DAG.
        let mut covered: BTreeSet<Ident> = BTreeSet::new();
        for rv in &regular {
            covered.extend(rv.plan.scanned_tables());
        }
        for view in &ap_views {
            if let Ok(bound) = view.instantiate(self.db.catalog(), session.params()) {
                covered.extend(bound.plan.scanned_tables());
            }
        }
        if let Some(t) = query_tables.iter().find(|t| !covered.contains(*t)) {
            rules.push(format!(
                "Q001: relation {t} is not covered by any granted authorization view"
            ));
            let mut report = self.report(
                Verdict::Invalid,
                rules,
                DagStats::default(),
                views_considered,
                None,
            );
            report.reason = Some(format!(
                "relation {t} is not covered by any of your authorization views"
            ));
            return Ok(report);
        }

        // --- DAG: insert, expand, mark (rules U1/U2). -----------------
        let mut builder = CertBuilder::new(self.options.emit_certificates);
        let mut dag = Dag::new();
        let qroot = dag.insert_plan(&qplan);
        let mut view_roots: Vec<EqId> = Vec::new();
        let mut root_steps: Vec<usize> = Vec::new();
        for rv in &regular {
            view_roots.push(dag.insert_plan(&rv.plan));
            let mut s = Step::new(RuleId::U1);
            s.view = Some(rv.base.clone());
            s.block = SpjBlock::decompose(&rv.plan);
            s.pins = rv.pin.clone().into_iter().collect();
            s.note = format!("instantiated authorization view {}", rv.display);
            root_steps.push(builder.push_root(s));
        }
        distinct_elimination(&mut dag, self.db);
        let dag_stats = expand(&mut dag, &self.options.expand);
        distinct_elimination(&mut dag, self.db);
        // Expansion is internally bounded by `expand.max_ops`; charge
        // its actual size so a large DAG eats into what the rounds may
        // still spend.
        meter.charge("DAG expansion", dag_stats.op_nodes as u64)?;
        let mut marking = mark_valid(&dag, &view_roots);

        // On acceptance via the DAG marking, record the goal step: the
        // query class is valid, supported by whichever view roots and
        // directly-marked classes the marking's provenance reaches.
        let accept_dag = |dag: &Dag,
                         marking: &Marking,
                         rules: &mut Vec<String>,
                         builder: &mut CertBuilder,
                         why: &str|
         -> bool {
            if !marking.is_valid(dag, qroot) {
                return false;
            }
            rules.push(why.to_string());
            let mut s = Step::new(RuleId::U2Dag);
            s.block = qblock.clone();
            s.premises = builder.supports(dag, marking, qroot);
            s.note = why.to_string();
            builder.push(s);
            true
        };

        if accept_dag(
            &dag,
            &marking,
            &mut rules,
            &mut builder,
            "U1/U2: DAG unification + subsumption",
        ) {
            let cert = self.certificate(session, CertVerdict::Unconditional, &query_tables, &qblock, builder);
            return Ok(self.report(Verdict::Unconditional, rules, dag_stats, views_considered, cert));
        }

        // --- Valid blocks for the matcher + U3 derivations. -----------
        let mut valid_blocks = ValidSet::default();
        for (i, rv) in regular.iter().enumerate() {
            if let Some(block) = SpjBlock::decompose(&rv.plan) {
                valid_blocks.push(block, format!("view {}", rv.display), root_steps[i]);
            }
        }

        let visible: BTreeSet<Ident> =
            self.grants.constraints_for(session.user()).into_iter().collect();
        for _round in 0..self.options.max_rounds {
            meter.charge(PHASE, 1)?;
            let mut changed = false;

            // Goal-directed strengthening (U2 moves toward the query):
            // restrict valid blocks by the query's own predicates, and
            // compose pairs of valid blocks when the query spans more
            // tables than any single one (Examples 5.3 and 5.4).
            if self.options.enable_u3 || self.options.enable_c3 {
                if let Some(qb) = &qblock {
                    let snapshot: Vec<ValidBlock> = valid_blocks.blocks.clone();
                    for vb in &snapshot {
                        meter.charge(PHASE, 1)?;
                        if let Some(restricted) = strengthen::restrict_by_query(qb, &vb.block) {
                            if !valid_blocks.contains(&restricted) {
                                let origin = format!("σ-restriction of {}", vb.origin);
                                let mut s = Step::new(RuleId::U2Restrict);
                                s.block = Some(restricted.clone());
                                s.premises = vec![vb.step];
                                s.note = origin.clone();
                                let step = builder.push(s);
                                valid_blocks.push(restricted, origin, step);
                                changed = true;
                            }
                        }
                    }
                    // Pairwise composition, bounded to small blocks. A
                    // composition is useful only when its scan multiset
                    // fits inside the query's tables plus at most one
                    // instance of each potential U3/C3 remainder table
                    // (a destination of a visible inclusion dependency).
                    // This keeps e.g. hundreds of single-table views
                    // from composing with each other quadratically.
                    let remainder_tables: BTreeSet<Ident> = self
                        .db
                        .catalog()
                        .all_inclusions()
                        .into_iter()
                        .filter(|d| visible.contains(&d.name))
                        .map(|d| d.dst_table)
                        .collect();
                    let fits_budget = |composed: &SpjBlock| -> bool {
                        let mut budget: std::collections::BTreeMap<Ident, isize> =
                            std::collections::BTreeMap::new();
                        for (t, _) in &qb.scans {
                            *budget.entry(t.clone()).or_insert(0) += 1;
                        }
                        for t in &remainder_tables {
                            *budget.entry(t.clone()).or_insert(0) += 1;
                        }
                        composed.scans.iter().all(|(t, _)| {
                            let slot = budget.entry(t.clone()).or_insert(0);
                            *slot -= 1;
                            *slot >= 0
                        })
                    };
                    let snapshot: Vec<ValidBlock> = valid_blocks.blocks.clone();
                    for (i, a) in snapshot.iter().enumerate() {
                        for b in snapshot.iter().skip(i + 1) {
                            if a.block.scans.len() + b.block.scans.len() > 4
                                || valid_blocks.len() > 512
                            {
                                continue;
                            }
                            for (x, y) in [(a, b), (b, a)] {
                                meter.charge(PHASE, 1)?;
                                if let Some(composed) = strengthen::compose(&x.block, &y.block) {
                                    // Must cover the query's tables and
                                    // stay within the multiset budget.
                                    let covers = qb.scans.iter().all(|(t, _)| {
                                        composed.scans.iter().any(|(ct, _)| ct == t)
                                    });
                                    if !covers || !fits_budget(&composed) {
                                        continue;
                                    }
                                    let origin =
                                        format!("U2 join of {} and {}", x.origin, y.origin);
                                    let mut compose_step = None;
                                    if !valid_blocks.contains(&composed) {
                                        let mut s = Step::new(RuleId::U2Compose);
                                        s.block = Some(composed.clone());
                                        s.premises = vec![x.step, y.step];
                                        s.note = origin.clone();
                                        let step = builder.push(s);
                                        compose_step = Some(step);
                                        valid_blocks.push(composed.clone(), origin.clone(), step);
                                        changed = true;
                                    }
                                    if let Some(restricted) =
                                        strengthen::restrict_by_query(qb, &composed)
                                    {
                                        if !valid_blocks.contains(&restricted) {
                                            // Premise: the composition we just
                                            // recorded, or the identical block
                                            // already in the set.
                                            let premise = match compose_step {
                                                Some(s) => s,
                                                None => valid_blocks
                                                    .step_of(&composed)
                                                    .unwrap_or(x.step),
                                            };
                                            let origin = format!("σ-restriction of {origin}");
                                            let mut s = Step::new(RuleId::U2Restrict);
                                            s.block = Some(restricted.clone());
                                            s.premises = vec![premise];
                                            s.note = origin.clone();
                                            let step = builder.push(s);
                                            valid_blocks.push(restricted, origin, step);
                                            changed = true;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }

            // U3 derivations from every known-valid block.
            if self.options.enable_u3 {
                let snapshot: Vec<ValidBlock> = valid_blocks.blocks.clone();
                for vb in &snapshot {
                    for d in u3::derive_metered(self.db.catalog(), &visible, &vb.block, &meter)? {
                        if !valid_blocks.contains(&d.core) {
                            let origin = format!(
                                "U3a/U3b on {} with constraint {} (remainder {})",
                                vb.origin, d.constraint, d.remainder_table
                            );
                            let mut s = Step::new(RuleId::U3a);
                            s.block = Some(d.core.clone());
                            s.premises = vec![vb.step];
                            s.constraint = Some(d.constraint.clone());
                            s.obligations = d.obligations.clone();
                            s.note = origin.clone();
                            let step = builder.push(s);
                            valid_blocks.push(d.core.clone(), origin, step);
                            let class = dag.insert_plan(&d.core.to_plan());
                            marking.mark(&dag, class);
                            builder.note_class(&dag, class, step);
                            rules.push(format!(
                                "U3a: SELECT DISTINCT core of {} valid via constraint {}",
                                vb.origin, d.constraint
                            ));
                            changed = true;
                        }
                        // U3c: multiplicity witness must itself be valid.
                        if let Some(w) = &d.multiplicity_witness {
                            if let Some(wstep) = self.block_validity(
                                &dag,
                                &marking,
                                &valid_blocks,
                                w,
                                &meter,
                                &mut builder,
                            )? {
                                let mut non_distinct = d.core.clone();
                                non_distinct.distinct = false;
                                if !valid_blocks.contains(&non_distinct) {
                                    let origin = format!("U3c on {}", vb.origin);
                                    let mut s = Step::new(RuleId::U3c);
                                    s.block = Some(non_distinct.clone());
                                    s.premises = vec![vb.step, wstep];
                                    s.constraint = Some(d.constraint.clone());
                                    s.obligations = d.obligations.clone();
                                    s.note = origin.clone();
                                    let step = builder.push(s);
                                    valid_blocks.push(non_distinct.clone(), origin, step);
                                    let class = dag.insert_plan(&non_distinct.to_plan());
                                    marking.mark(&dag, class);
                                    builder.note_class(&dag, class, step);
                                    rules.push(format!(
                                        "U3c: multiplicity of core of {} reconstructible \
                                         (q_rj valid); DISTINCT dropped",
                                        vb.origin
                                    ));
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }

            // Matcher pass over every class in the DAG.
            marking.propagate(&dag);
            let classes = dag.classes();
            for class in classes {
                if marking.is_valid(&dag, class) {
                    continue;
                }
                let Some(plan) = fgac_optimizer::extract_any(&dag, class) else {
                    continue;
                };
                let Some(block) = SpjBlock::decompose(&plan) else {
                    continue;
                };
                let mut hit = None;
                for vb in valid_blocks.candidates(&block) {
                    if let Some(w) =
                        matcher::match_block_metered(self.db.catalog(), &block, &vb.block, &meter)?
                    {
                        hit = Some((vb.step, vb.origin.clone(), w));
                        break;
                    }
                }
                if let Some((premise, origin, w)) = hit {
                    let mut s = Step::new(RuleId::U2Match);
                    s.block = Some(block.clone());
                    s.premises = vec![premise];
                    s.substitution = w.q_to_v;
                    s.note = format!("subexpression matched against {origin}");
                    let step = builder.push(s);
                    marking.mark(&dag, class);
                    builder.note_class(&dag, class, step);
                    rules.push(format!(
                        "U2 (view matching): subexpression computed from {origin}"
                    ));
                    changed = true;
                }
            }
            marking.propagate(&dag);

            if accept_dag(
                &dag,
                &marking,
                &mut rules,
                &mut builder,
                "U2: composition over valid subexpressions",
            ) {
                let cert = self.certificate(
                    session,
                    CertVerdict::Unconditional,
                    &query_tables,
                    &qblock,
                    builder,
                );
                return Ok(self.report(Verdict::Unconditional, rules, dag_stats, views_considered, cert));
            }
            if !changed {
                break;
            }
        }

        // --- Dependent joins over access-pattern views (Section 6). ---
        if self.options.enable_access_patterns && !capabilities.is_empty() {
            if let Some(qb) = &qblock {
                let mut directly_valid: Vec<bool> = Vec::with_capacity(qb.scans.len());
                let mut anchors: Vec<usize> = Vec::new();
                let mut anchor_steps: Vec<usize> = Vec::new();
                for i in 0..qb.scans.len() {
                    let restriction = instance_restriction(qb, i);
                    let step = self.block_validity(
                        &dag,
                        &marking,
                        &valid_blocks,
                        &restriction,
                        &meter,
                        &mut builder,
                    )?;
                    if let Some(s) = step {
                        anchors.push(i);
                        anchor_steps.push(s);
                    }
                    directly_valid.push(step.is_some());
                }
                if let Some((trace, used_views)) = access_pattern::dependent_join_covers(
                    qb,
                    &directly_valid,
                    &capabilities,
                ) {
                    rules.extend(trace);
                    rules.push("Section 6: dependent-join evaluation over access-pattern views".into());
                    // Block-less U1 markers for the capability views; the
                    // checker re-derives each capability from the catalog.
                    let mut premises = anchor_steps;
                    for name in used_views {
                        let mut s = Step::new(RuleId::U1);
                        s.view = Some(name);
                        s.note = "access-pattern capability".into();
                        premises.push(builder.push(s));
                    }
                    let mut goal = Step::new(RuleId::DependentJoin);
                    goal.block = Some(qb.clone());
                    goal.substitution = anchors;
                    goal.premises = premises;
                    goal.note = "Section 6 dependent join".into();
                    builder.push(goal);
                    let cert = self.certificate(
                        session,
                        CertVerdict::Unconditional,
                        &query_tables,
                        &qblock,
                        builder,
                    );
                    return Ok(self.report(
                        Verdict::Unconditional,
                        rules,
                        dag_stats,
                        views_considered,
                        cert,
                    ));
                }
            }
        }

        // --- Conditional validity: C3a/C3b. ---------------------------
        if self.options.enable_c3 {
            if let Some(qb) = &qblock {
                // Policy-index routing: only the blocks with exactly one
                // extra scan table can yield a C3 remainder split, so
                // candidate lookup is O(candidates), not O(all blocks).
                for vb in valid_blocks.c3_candidates(qb) {
                    for cand in
                        c3::candidates_metered(self.db.catalog(), qb, &vb.block, &meter)?
                    {
                        // Condition 3: v_r must be (conditionally) valid…
                        let Some(vr_step) = self.block_validity(
                            &dag,
                            &marking,
                            &valid_blocks,
                            &cand.v_r,
                            &meter,
                            &mut builder,
                        )?
                        else {
                            continue;
                        };
                        let count_step = if cand.requires_c3b {
                            match self.block_validity(
                                &dag,
                                &marking,
                                &valid_blocks,
                                &cand.v_r_count,
                                &meter,
                                &mut builder,
                            )? {
                                Some(s) => Some(s),
                                None => continue,
                            }
                        } else {
                            None
                        };
                        // …and non-empty on the current database state.
                        let vr_plan = cand.v_r.to_plan();
                        meter.charge("C3 state probe", 1)?;
                        C3_PROBES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        // Borrowed execution: the probe only needs the
                        // cardinality, so nothing is materialized.
                        let vr_rows = fgac_exec::execute_plan_cow(self.db, &vr_plan)?;
                        if vr_rows.is_empty() {
                            rules.push(format!(
                                "{} rejected: remainder probe is empty on this state",
                                cand.description
                            ));
                            continue;
                        }
                        rules.push(format!(
                            "{} via {}: v_r valid and non-empty ({} row(s))",
                            cand.description,
                            vb.origin,
                            vr_rows.len()
                        ));
                        let mut goal = Step::new(if cand.requires_c3b {
                            RuleId::C3b
                        } else {
                            RuleId::C3a
                        });
                        goal.block = Some(qb.clone());
                        goal.premises = {
                            let mut p = vec![vb.step, vr_step];
                            p.extend(count_step);
                            p
                        };
                        goal.obligations = cand.obligations.clone();
                        goal.probe_rows = Some(vr_rows.len() as u64);
                        goal.note = cand.description.clone();
                        builder.push(goal);
                        let cert = self.certificate(
                            session,
                            CertVerdict::Conditional,
                            &query_tables,
                            &qblock,
                            builder,
                        );
                        return Ok(self.report(
                            Verdict::Conditional,
                            rules,
                            dag_stats,
                            views_considered,
                            cert,
                        ));
                    }
                }
            }
        }

        rules.push("no inference rule established validity".into());
        let mut report = self.report(Verdict::Invalid, rules, dag_stats, views_considered, None);
        report.reason = Some(
            "the query cannot be answered using only your authorization views".to_string(),
        );
        Ok(report)
    }

    /// Is `block` computable? Checks the SPJ matcher against known-valid
    /// blocks, then the DAG marking of the block's plan. On success
    /// returns the certificate step that justifies the block (0 when
    /// emission is disabled); `None` means not provably valid.
    fn block_validity(
        &self,
        dag: &Dag,
        marking: &Marking,
        valid_blocks: &ValidSet,
        block: &SpjBlock,
        meter: &BudgetMeter,
        builder: &mut CertBuilder,
    ) -> Result<Option<usize>> {
        // Matcher first: it is semantic and cheap, and only the blocks
        // sharing the query block's scan multiset can match.
        for vb in valid_blocks.candidates(block) {
            if let Some(w) =
                matcher::match_block_metered(self.db.catalog(), block, &vb.block, meter)?
            {
                let mut s = Step::new(RuleId::U2Match);
                s.block = Some(block.clone());
                s.premises = vec![vb.step];
                s.substitution = w.q_to_v;
                s.note = format!("matched against {}", vb.origin);
                return Ok(Some(builder.push(s)));
            }
        }
        // DAG: the block's plan may already have a valid class. Inserting
        // requires mutation, so only probe via a cloned DAG when small.
        // The clone + re-propagation walks the whole DAG; charge its size.
        meter.charge(PHASE, dag.stats().op_nodes as u64)?;
        let mut probe = dag.clone();
        let class = probe.insert_plan(&block.to_plan());
        let mut m = marking.clone();
        m.propagate(&probe);
        if m.is_valid(&probe, class) {
            let mut s = Step::new(RuleId::U2Dag);
            s.block = Some(block.clone());
            s.premises = builder.supports(&probe, &m, class);
            s.note = "valid via DAG propagation".into();
            Ok(Some(builder.push(s)))
        } else {
            Ok(None)
        }
    }

    /// Assembles the validity certificate from the accumulated steps.
    /// The policy epoch is stamped 0 here; the engine overwrites it with
    /// the live epoch before handing the report out.
    fn certificate(
        &self,
        session: &Session,
        verdict: CertVerdict,
        query_tables: &BTreeSet<Ident>,
        qblock: &Option<SpjBlock>,
        builder: CertBuilder,
    ) -> Option<Certificate> {
        if !builder.enabled() {
            return None;
        }
        Some(Certificate {
            principal: session.user().to_string(),
            policy_epoch: 0,
            verdict,
            params: session
                .params()
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            query_tables: query_tables.iter().cloned().collect(),
            query: qblock.clone(),
            steps: builder.take(),
        })
    }

    fn report(
        &self,
        verdict: Verdict,
        rules: Vec<String>,
        dag_stats: DagStats,
        views_considered: usize,
        certificate: Option<Certificate>,
    ) -> ValidityReport {
        ValidityReport {
            verdict,
            rules,
            reason: None,
            dag_stats,
            views_considered,
            exhausted: None,
            certificate,
        }
    }
}

/// The single-instance restriction of a query block: the scan of
/// instance `i` under the conjuncts that touch only it (duplicate
/// preserving, full width) — used to seed dependent-join anchoring.
fn instance_restriction(block: &SpjBlock, i: usize) -> SpjBlock {
    let (start, end) = block.scan_range(i);
    let conjuncts = block
        .conjuncts
        .iter()
        .filter(|c| {
            let cols = c.referenced_cols();
            !cols.is_empty() && cols.iter().all(|&x| x >= start && x < end)
        })
        .map(|c| c.map_cols(&|x| x - start))
        .collect();
    SpjBlock {
        scans: vec![block.scans[i].clone()],
        conjuncts,
        projection: (0..(end - start)).map(fgac_algebra::ScalarExpr::Col).collect(),
        distinct: false,
    }
}

/// Merges `Distinct(X)` classes with `X` when `X` is provably
/// duplicate-free (primary-key reasoning — the paper's Example 5.5).
fn distinct_elimination(dag: &mut Dag, db: &Database) {
    loop {
        let mut merges: Vec<(EqId, EqId)> = Vec::new();
        for op_id in dag.all_ops() {
            let node = dag.op(op_id);
            if !matches!(node.op, Operator::Distinct) {
                continue;
            }
            let class = dag.class_of(op_id);
            let child = dag.find(node.children[0]);
            if class == child {
                continue;
            }
            let Some(plan) = fgac_optimizer::extract_any(dag, child) else {
                continue;
            };
            let Some(block) = SpjBlock::decompose(&plan) else {
                continue;
            };
            if matcher::is_duplicate_free(db.catalog(), &block) {
                merges.push((class, child));
            }
        }
        if merges.is_empty() {
            return;
        }
        for (a, b) in merges {
            if dag.find(a) != dag.find(b) && dag.arity(a) == dag.arity(b) {
                dag.merge(a, b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_storage::{ForeignKey, InclusionDependency, ViewDef};
    use fgac_types::{Column, DataType, Row, Schema, Value};

    /// The paper's running university database with small data.
    fn university() -> Database {
        let mut db = Database::new();
        db.create_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        db.create_table(
            "courses",
            Schema::new(vec![
                Column::new("course_id", DataType::Str),
                Column::new("name", DataType::Str),
            ]),
            Some(vec![Ident::new("course_id")]),
        )
        .unwrap();
        db.create_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        db.create_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        db.add_foreign_key(ForeignKey {
            name: Ident::new("fk_grades_students"),
            child_table: Ident::new("grades"),
            child_columns: vec![Ident::new("student_id")],
            parent_table: Ident::new("students"),
            parent_columns: vec![Ident::new("student_id")],
        })
        .unwrap();

        for (id, name, ty) in [
            ("11", "ann", "FullTime"),
            ("12", "bob", "PartTime"),
            ("13", "carol", "FullTime"),
        ] {
            db.insert(
                &Ident::new("students"),
                Row(vec![id.into(), name.into(), ty.into()]),
            )
            .unwrap();
        }
        for (id, name) in [("cs101", "intro"), ("cs202", "systems")] {
            db.insert(&Ident::new("courses"), Row(vec![id.into(), name.into()]))
                .unwrap();
        }
        for (s, c) in [("11", "cs101"), ("12", "cs101"), ("13", "cs202")] {
            db.insert(&Ident::new("registered"), Row(vec![s.into(), c.into()]))
                .unwrap();
        }
        for (s, c, g) in [("11", "cs101", 90), ("12", "cs101", 70), ("13", "cs202", 80)] {
            db.insert(
                &Ident::new("grades"),
                Row(vec![s.into(), c.into(), Value::Int(g)]),
            )
            .unwrap();
        }
        db
    }

    fn add_view(db: &mut Database, name: &str, body: &str) {
        db.add_view(ViewDef {
            name: Ident::new(name),
            authorization: true,
            query: fgac_sql::parse_query(body).unwrap(),
        })
        .unwrap();
    }

    fn check(db: &Database, grants: &Grants, user: &str, sql: &str) -> ValidityReport {
        Validator::new(db, grants)
            .check_sql(&Session::new(user), sql)
            .unwrap()
    }

    /// Section 5.2: projections/selections of MyGrades are valid.
    #[test]
    fn basic_rules_u1_u2() {
        let mut db = university();
        add_view(&mut db, "mygrades", "select * from grades where student_id = $user_id");
        let mut grants = Grants::new();
        grants.grant_view("11", "mygrades");

        // The view itself (U1).
        let r = check(&db, &grants, "11", "select * from grades where student_id = '11'");
        assert_eq!(r.verdict, Verdict::Unconditional);
        // Projection (U2).
        let r = check(&db, &grants, "11", "select grade from grades where student_id = '11'");
        assert_eq!(r.verdict, Verdict::Unconditional);
        // Selection + projection (U2).
        let r = check(
            &db,
            &grants,
            "11",
            "select course_id from grades where student_id = '11' and grade > 80",
        );
        assert_eq!(r.verdict, Verdict::Unconditional);
        // Someone else's grades: invalid.
        let r = check(&db, &grants, "11", "select * from grades where student_id = '12'");
        assert_eq!(r.verdict, Verdict::Invalid);
        // The same query from user 12 (whose instantiated view covers it)
        // is fine: parameterized views are per-access (Section 2).
        let mut g2 = Grants::new();
        g2.grant_view("12", "mygrades");
        let r = check(&db, &g2, "12", "select * from grades where student_id = '12'");
        assert_eq!(r.verdict, Verdict::Unconditional);
    }

    /// Example 4.1: aggregates over MyGrades and AvgGrades.
    #[test]
    fn example_4_1_aggregates() {
        let mut db = university();
        add_view(&mut db, "mygrades", "select * from grades where student_id = $user_id");
        add_view(
            &mut db,
            "avggrades",
            "select course_id, avg(grade) from grades group by course_id",
        );
        let mut grants = Grants::new();
        grants.grant_view("11", "mygrades");
        grants.grant_view("11", "avggrades");

        let r = check(
            &db,
            &grants,
            "11",
            "select avg(grade) from grades where student_id = '11'",
        );
        assert_eq!(r.verdict, Verdict::Unconditional, "rules: {:?}", r.rules);

        let r = check(
            &db,
            &grants,
            "11",
            "select avg(grade) from grades where course_id = 'cs101'",
        );
        assert_eq!(r.verdict, Verdict::Unconditional, "rules: {:?}", r.rules);

        // Raw grades of another student remain invalid.
        let r = check(&db, &grants, "11", "select grade from grades where student_id = '12'");
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    /// Examples 5.1–5.3: U3a with inclusion dependencies.
    #[test]
    fn u3_reg_students() {
        let mut db = university();
        add_view(
            &mut db,
            "regstudents",
            "select registered.course_id, students.name, students.type \
             from registered, students \
             where students.student_id = registered.student_id",
        );
        db.add_inclusion_dependency(InclusionDependency {
            name: Ident::new("all_registered"),
            src_table: Ident::new("students"),
            src_columns: vec![Ident::new("student_id")],
            src_filter: None,
            dst_table: Ident::new("registered"),
            dst_columns: vec![Ident::new("student_id")],
            dst_filter: None,
        })
        .unwrap();
        let mut grants = Grants::new();
        grants.grant_view("11", "regstudents");
        grants.grant_constraint("11", "all_registered");

        // Example 5.1: select distinct name, type from students.
        let r = check(&db, &grants, "11", "select distinct name, type from students");
        assert_eq!(r.verdict, Verdict::Unconditional, "rules: {:?}", r.rules);

        // Without distinct, multiplicity is not reconstructible
        // (Example 5.1's n*m discussion): invalid.
        let r = check(&db, &grants, "11", "select name, type from students");
        assert_eq!(r.verdict, Verdict::Invalid, "rules: {:?}", r.rules);

        // Example 5.3: restriction to full-time students still valid.
        let r = check(
            &db,
            &grants,
            "11",
            "select distinct name from students where type = 'FullTime'",
        );
        assert_eq!(r.verdict, Verdict::Unconditional, "rules: {:?}", r.rules);

        // Constraint visibility is required (U3a condition 2): same
        // check without the constraint grant must fail.
        let mut g2 = Grants::new();
        g2.grant_view("11", "regstudents");
        let r = check(&db, &g2, "11", "select distinct name, type from students");
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    /// Example 4.4 / C3: conditional validity of the CS101 query.
    #[test]
    fn c3_co_student_grades() {
        let mut db = university();
        add_view(
            &mut db,
            "costudentgrades",
            "select grades.* from grades, registered \
             where registered.student_id = $user_id \
               and grades.course_id = registered.course_id",
        );
        // The user can see her own registrations (makes v_r valid).
        add_view(
            &mut db,
            "myregistrations",
            "select * from registered where student_id = $user_id",
        );
        let mut grants = Grants::new();
        grants.grant_view("11", "costudentgrades");
        grants.grant_view("11", "myregistrations");

        // User 11 IS registered for cs101: conditionally valid.
        let r = check(&db, &grants, "11", "select * from grades where course_id = 'cs101'");
        assert_eq!(r.verdict, Verdict::Conditional, "rules: {:?}", r.rules);

        // User 11 is NOT registered for cs202: rejected even though the
        // data exists (the remainder probe is empty).
        let r = check(&db, &grants, "11", "select * from grades where course_id = 'cs202'");
        assert_eq!(r.verdict, Verdict::Invalid, "rules: {:?}", r.rules);

        // Example 4.3's leak guard: WITHOUT myregistrations, v_r is not
        // valid, so the query must be rejected even though user 11 is
        // registered for cs101 — accepting would reveal her registration.
        let mut g2 = Grants::new();
        g2.grant_view("11", "costudentgrades");
        let r = check(&db, &g2, "11", "select * from grades where course_id = 'cs101'");
        assert_eq!(r.verdict, Verdict::Invalid, "rules: {:?}", r.rules);
    }

    /// Section 6: access-pattern views.
    #[test]
    fn access_pattern_constant_instantiation() {
        let mut db = university();
        add_view(
            &mut db,
            "singlegrade",
            "select * from grades where student_id = $$1",
        );
        let mut grants = Grants::new();
        grants.grant_view("sec", "singlegrade");

        // Lookup by a specific student id: valid (instantiation at '12').
        let r = check(&db, &grants, "sec", "select * from grades where student_id = '12'");
        assert_eq!(r.verdict, Verdict::Unconditional, "rules: {:?}", r.rules);

        // Listing all grades: invalid — the whole point of $$.
        let r = check(&db, &grants, "sec", "select * from grades");
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    #[test]
    fn access_pattern_dependent_join() {
        let mut db = university();
        add_view(
            &mut db,
            "allregistered",
            "select * from registered",
        );
        add_view(
            &mut db,
            "gradebystudent",
            "select * from grades where student_id = $$sid",
        );
        let mut grants = Grants::new();
        grants.grant_view("t", "allregistered");
        grants.grant_view("t", "gradebystudent");

        // r ⋈_{r.student_id = g.student_id} g: dependent join (Section 6).
        let r = check(
            &db,
            &grants,
            "t",
            "select g.grade from registered r, grades g where r.student_id = g.student_id",
        );
        assert_eq!(r.verdict, Verdict::Unconditional, "rules: {:?}", r.rules);

        // Joining on a non-key column cannot be fetched: invalid.
        let r = check(
            &db,
            &grants,
            "t",
            "select g.grade from registered r, grades g where r.course_id = g.course_id",
        );
        assert_eq!(r.verdict, Verdict::Invalid);
    }

    /// Queries through plain (non-authorization) views bind but are
    /// checked against base relations.
    #[test]
    fn ungranted_view_gives_nothing() {
        let mut db = university();
        add_view(&mut db, "mygrades", "select * from grades where student_id = $user_id");
        let grants = Grants::new(); // nothing granted
        let r = check(&db, &grants, "11", "select * from grades where student_id = '11'");
        assert_eq!(r.verdict, Verdict::Invalid);
        assert_eq!(r.views_considered, 0);
    }

    #[test]
    fn basic_only_options_disable_complex_rules() {
        let mut db = university();
        add_view(
            &mut db,
            "costudentgrades",
            "select grades.* from grades, registered \
             where registered.student_id = $user_id \
               and grades.course_id = registered.course_id",
        );
        add_view(
            &mut db,
            "myregistrations",
            "select * from registered where student_id = $user_id",
        );
        let mut grants = Grants::new();
        grants.grant_view("11", "costudentgrades");
        grants.grant_view("11", "myregistrations");
        let session = Session::new("11");
        let q = "select * from grades where course_id = 'cs101'";

        let full = Validator::new(&db, &grants).check_sql(&session, q).unwrap();
        assert_eq!(full.verdict, Verdict::Conditional);

        let basic = Validator::new(&db, &grants)
            .with_options(CheckOptions::basic_only())
            .check_sql(&session, q)
            .unwrap();
        assert_eq!(basic.verdict, Verdict::Invalid);
    }
}
