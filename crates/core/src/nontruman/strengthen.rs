//! Goal-directed strengthening of valid blocks.
//!
//! The U3/C3 derivations work on *valid blocks*; two U2-style moves
//! enlarge that set toward the query before derivation:
//!
//! * **Restriction** — a selection over a valid block is valid when the
//!   selected columns are projected (Example 5.3's first step: "given
//!   the validity of RegStudents, the following selection query on
//!   RegStudents must be valid"). We restrict by the *query's own*
//!   conjuncts, mapped into the block by (table, column) provenance.
//! * **Composition** — the join of two valid blocks is valid (U2 with
//!   n=2; Example 5.4's "let q denote the natural join of RegStudents
//!   and FeesPaid"). Cross-table equalities from the query are added
//!   when both sides project the joined columns.

use fgac_algebra::{normalize_conjuncts, ScalarExpr, SpjBlock};
use fgac_types::Ident;

/// Maps a flat column of `block` to its (table, column-name) identity.
fn col_identity(block: &SpjBlock, flat: usize) -> (Ident, Ident) {
    let owner = block.owner(flat);
    let (start, _) = block.scan_range(owner);
    let (table, schema) = &block.scans[owner];
    (table.clone(), schema.column(flat - start).name.clone())
}

/// Finds a flat column of `block` with the given (table, column) name
/// that the block *projects* (so a selection on it is computable).
fn find_projected(block: &SpjBlock, table: &Ident, column: &Ident) -> Option<usize> {
    for (idx, (t, schema)) in block.scans.iter().enumerate() {
        if t != table {
            continue;
        }
        let Some(i) = schema.index_of(column) else {
            continue;
        };
        let (start, _) = block.scan_range(idx);
        let flat = start + i;
        if block.projection.contains(&ScalarExpr::Col(flat)) {
            return Some(flat);
        }
    }
    None
}

/// Restricts `valid` by every query conjunct expressible over its
/// projected columns; returns the strengthened block if any conjunct
/// applied.
pub fn restrict_by_query(query: &SpjBlock, valid: &SpjBlock) -> Option<SpjBlock> {
    let mut added = Vec::new();
    'conj: for c in &query.conjuncts {
        let cols = c.referenced_cols();
        if cols.is_empty() {
            continue;
        }
        // Remap each referenced column by (table, column) identity.
        let mut mapping = std::collections::BTreeMap::new();
        for &qc in &cols {
            let (table, column) = col_identity(query, qc);
            match find_projected(valid, &table, &column) {
                Some(flat) => {
                    mapping.insert(qc, flat);
                }
                None => continue 'conj,
            }
        }
        let remapped = c.map_cols(&|i| mapping[&i]);
        if !valid.conjuncts.contains(&remapped) {
            added.push(remapped);
        }
    }
    if added.is_empty() {
        return None;
    }
    let mut out = valid.clone();
    out.conjuncts.extend(added);
    out.conjuncts = normalize_conjuncts(&out.conjuncts);
    Some(out)
}

/// Joins two valid blocks (cross product at the block level; the query's
/// cross-table equalities are then injected by [`restrict_by_query`]).
/// Duplicate-eliminating blocks are not composable multiset-exactly, so
/// both must be duplicate-preserving.
pub fn compose(a: &SpjBlock, b: &SpjBlock) -> Option<SpjBlock> {
    if a.distinct || b.distinct {
        return None;
    }
    let shift = a.flat_arity();
    let mut scans = a.scans.clone();
    scans.extend(b.scans.iter().cloned());
    let mut conjuncts = a.conjuncts.clone();
    conjuncts.extend(b.conjuncts.iter().map(|c| c.map_cols(&|i| i + shift)));
    let mut projection = a.projection.clone();
    projection.extend(b.projection.iter().map(|e| e.map_cols(&|i| i + shift)));
    Some(SpjBlock {
        scans,
        conjuncts: normalize_conjuncts(&conjuncts),
        projection,
        distinct: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::Plan;
    use fgac_types::{Column, DataType, Schema};

    fn students() -> Plan {
        Plan::scan(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
        )
    }

    fn registered() -> Plan {
        Plan::scan(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
        )
    }

    fn block(p: &Plan) -> SpjBlock {
        SpjBlock::decompose(&fgac_algebra::normalize(p)).unwrap()
    }

    #[test]
    fn restriction_maps_by_table_and_column() {
        // RegStudents-like view: π_{R.course_id, S.name, S.type}(R ⋈ S).
        let v = block(
            &registered()
                .join(
                    students(),
                    vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2))],
                )
                .project(vec![
                    ScalarExpr::col(1),
                    ScalarExpr::col(3),
                    ScalarExpr::col(4),
                ]),
        );
        // Query: σ_{type='FullTime'}(students) projected on name.
        let q = block(
            &students()
                .select(vec![ScalarExpr::eq(
                    ScalarExpr::col(2),
                    ScalarExpr::lit("FullTime"),
                )])
                .project(vec![ScalarExpr::col(1)])
                .distinct(),
        );
        let restricted = restrict_by_query(&q, &v).expect("type is projected");
        // The restriction lands on the view's S.type flat column (4).
        assert!(restricted.conjuncts.contains(&ScalarExpr::eq(
            ScalarExpr::Col(4),
            ScalarExpr::lit("FullTime")
        )));
    }

    #[test]
    fn restriction_fails_on_unprojected_column() {
        // View projects only name; query filters on type.
        let v = block(&students().project(vec![ScalarExpr::col(1)]));
        let q = block(&students().select(vec![ScalarExpr::eq(
            ScalarExpr::col(2),
            ScalarExpr::lit("FullTime"),
        )]));
        assert!(restrict_by_query(&q, &v).is_none());
    }

    #[test]
    fn composition_concatenates_frames() {
        let a = block(&students());
        let b = block(&registered());
        let ab = compose(&a, &b).unwrap();
        assert_eq!(ab.scans.len(), 2);
        assert_eq!(ab.flat_arity(), 5);
        assert_eq!(ab.projection.len(), 5);
        // Query with a cross equality then restricts the composition.
        let q = block(&fgac_algebra::normalize(&students().join(
            registered(),
            vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(3))],
        )));
        let restricted = restrict_by_query(&q, &ab).unwrap();
        assert!(restricted
            .conjuncts
            .contains(&ScalarExpr::eq(ScalarExpr::Col(0), ScalarExpr::Col(3))));
    }

    #[test]
    fn distinct_blocks_do_not_compose() {
        let a = block(&students().distinct());
        let b = block(&registered());
        assert!(compose(&a, &b).is_none());
    }
}
