//! Inference rules U3a / U3b / U3c (Section 5.3): deriving the validity
//! of a *subexpression* of a valid query using integrity constraints.
//!
//! Given a valid SPJ block `select A from R where Pc ∧ Pr ∧ Pj`, a
//! *remainder* scan instance `Rr`, and a (user-visible) inclusion
//! dependency guaranteeing that every tuple of the *core*
//! `σ_Pc(R ∖ Rr)` joins with some tuple of `σ_Pr(Rr)` under `Pj`, the
//! core projection
//!
//! ```sql
//! SELECT DISTINCT A_c FROM R_c WHERE P_c     -- U3a/U3b
//! ```
//!
//! is unconditionally valid; under U3c's extra conditions (the
//! remainder's join attributes are visible in `A_r` and
//! `SELECT A_rj FROM R_r WHERE P_r` is itself valid), the multiplicity
//! of the core can be reconstructed and the `DISTINCT` dropped.

use fgac_algebra::implication::implies_metered;
use fgac_algebra::{CmpOp, ScalarExpr, SpjBlock};
use fgac_analyze::Obligation;
use fgac_storage::{Catalog, InclusionDependency};
use fgac_types::{BudgetMeter, Ident, Result};
use std::collections::BTreeSet;

/// Phase label U3 derivations charge their budget under.
const PHASE: &str = "U3 derivations";

/// A U3 derivation: the core block that became valid, and whether the
/// duplicate-preserving version is also valid (U3c).
#[derive(Debug, Clone)]
pub struct U3Derivation {
    pub core: SpjBlock,
    /// U3c fired: `core` with `distinct = false` is also valid. The
    /// `q_rj` block that condition 3 requires valid is returned so the
    /// caller can verify it against the current marking.
    pub multiplicity_witness: Option<SpjBlock>,
    pub constraint: Ident,
    pub remainder_table: Ident,
    /// The implication obligations this derivation discharged (join-
    /// attribute alignment, source filter, destination filter), recorded
    /// for the validity certificate so the checker can re-prove them.
    pub obligations: Vec<Obligation>,
}

/// Splits of one valid block, one per viable remainder instance and
/// matching visible constraint.
pub fn derive(
    catalog: &Catalog,
    visible_constraints: &BTreeSet<Ident>,
    valid: &SpjBlock,
) -> Vec<U3Derivation> {
    // An unlimited meter never trips, so Err is unreachable here.
    derive_metered(catalog, visible_constraints, valid, &BudgetMeter::unlimited())
        .unwrap_or_default()
}

/// [`derive`] under a resource budget. Charges per candidate
/// (remainder, constraint) pair and inside the implication prover;
/// propagates exhaustion so the caller fails closed.
pub fn derive_metered(
    catalog: &Catalog,
    visible_constraints: &BTreeSet<Ident>,
    valid: &SpjBlock,
    meter: &BudgetMeter,
) -> Result<Vec<U3Derivation>> {
    let mut out = Vec::new();
    if valid.scans.len() < 2 {
        return Ok(out);
    }
    let flat = valid.flat_arity();
    let inclusions: Vec<InclusionDependency> = catalog
        .all_inclusions()
        .into_iter()
        .filter(|d| visible_constraints.contains(&d.name))
        .collect();

    for r_idx in 0..valid.scans.len() {
        let (rs, re) = valid.scan_range(r_idx);
        let in_rem = |c: usize| c >= rs && c < re;

        // Partition conjuncts into Pc / Pr / Pj.
        let mut pc = Vec::new();
        let mut pr = Vec::new();
        let mut pj_pairs: Vec<(usize, usize)> = Vec::new(); // (core, rem)
        let mut ok = true;
        for c in &valid.conjuncts {
            let cols = c.referenced_cols();
            let rem_cols: Vec<usize> = cols.iter().copied().filter(|&i| in_rem(i)).collect();
            if rem_cols.is_empty() {
                pc.push(c.clone());
            } else if rem_cols.len() == cols.len() {
                pr.push(c.clone());
            } else {
                // Cross conjunct: must be a plain equi-join.
                match c {
                    ScalarExpr::Cmp {
                        op: CmpOp::Eq,
                        left,
                        right,
                    } => match (&**left, &**right) {
                        (ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                            let (core, rem) = if in_rem(*a) { (*b, *a) } else { (*a, *b) };
                            if in_rem(core) || !in_rem(rem) {
                                ok = false;
                                break;
                            }
                            pj_pairs.push((core, rem));
                        }
                        _ => {
                            ok = false;
                            break;
                        }
                    },
                    _ => {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if !ok || pj_pairs.is_empty() {
            continue;
        }
        pj_pairs.sort_unstable();
        pj_pairs.dedup();

        // A_c: projection expressions that only touch core columns.
        // Condition 1(a)/(b) of U3a is satisfied by construction of the
        // partition.
        let core_projection: Vec<&ScalarExpr> = valid
            .projection
            .iter()
            .filter(|e| e.referenced_cols().iter().all(|&i| !in_rem(i)))
            .collect();
        if core_projection.is_empty() {
            continue;
        }

        let rem_table = &valid.scans[r_idx].0;
        let rem_schema = &valid.scans[r_idx].1;

        for dep in &inclusions {
            meter.charge(PHASE, 1)?;
            if &dep.dst_table != rem_table {
                continue;
            }
            // The dep's destination columns must be exactly the
            // remainder-side join attributes.
            let dep_dst_flat: Vec<usize> = match dep
                .dst_columns
                .iter()
                .map(|c| rem_schema.index_of(c).map(|i| rs + i))
                .collect::<Option<Vec<_>>>()
            {
                Some(v) => v,
                None => continue,
            };
            let rem_join_cols: BTreeSet<usize> = pj_pairs.iter().map(|&(_, r)| r).collect();
            if rem_join_cols != dep_dst_flat.iter().copied().collect() {
                continue;
            }

            // Locate a core instance of dep.src_table whose dep-source
            // columns are, under Pc, equal to the corresponding core-side
            // join attributes.
            let mut matched = false;
            let mut matched_obligations: Vec<Obligation> = Vec::new();
            for (c_idx, (c_table, c_schema)) in valid.scans.iter().enumerate() {
                if c_idx == r_idx || c_table != &dep.src_table {
                    continue;
                }
                let (cs, _) = valid.scan_range(c_idx);
                let dep_src_flat: Vec<usize> = match dep
                    .src_columns
                    .iter()
                    .map(|c| c_schema.index_of(c).map(|i| cs + i))
                    .collect::<Option<Vec<_>>>()
                {
                    Some(v) => v,
                    None => break,
                };
                // For each dep column pair k: the core join column that
                // joins to dep_dst_flat[k] must equal dep_src_flat[k]
                // under Pc (directly the same column or provably equal).
                let mut eq_needed = Vec::new();
                let mut align_ok = true;
                for (k, &dst) in dep_dst_flat.iter().enumerate() {
                    let Some(&(core_col, _)) = pj_pairs.iter().find(|&&(_, r)| r == dst) else {
                        align_ok = false;
                        break;
                    };
                    if core_col != dep_src_flat[k] {
                        eq_needed.push(ScalarExpr::eq(
                            ScalarExpr::Col(core_col.min(dep_src_flat[k])),
                            ScalarExpr::Col(core_col.max(dep_src_flat[k])),
                        ));
                    }
                }
                if !align_ok {
                    continue;
                }
                let mut obligations: Vec<Obligation> = Vec::new();
                if !eq_needed.is_empty() {
                    if !implies_metered(&pc, &eq_needed, flat, meter)? {
                        continue;
                    }
                    obligations.push(Obligation {
                        premise: pc.clone(),
                        conclusion: eq_needed.clone(),
                        arity: flat,
                    });
                }

                // Pc must imply the dep's source filter (bound over the
                // core instance), and the dep's target filter must imply
                // Pr (bound over the remainder instance).
                if let Some(f) = &dep.src_filter {
                    let Ok(bound) =
                        fgac_algebra::bind_table_expr(catalog, c_table, f, &Default::default())
                    else {
                        continue;
                    };
                    let shifted = bound.map_cols(&|i| cs + i);
                    if !implies_metered(&pc, std::slice::from_ref(&shifted), flat, meter)? {
                        continue;
                    }
                    obligations.push(Obligation {
                        premise: pc.clone(),
                        conclusion: vec![shifted],
                        arity: flat,
                    });
                }
                {
                    let dst_conjuncts: Vec<ScalarExpr> = match &dep.dst_filter {
                        Some(f) => {
                            let Ok(bound) = fgac_algebra::bind_table_expr(
                                catalog,
                                rem_table,
                                f,
                                &Default::default(),
                            ) else {
                                continue;
                            };
                            vec![bound.map_cols(&|i| rs + i)]
                        }
                        None => Vec::new(),
                    };
                    if !implies_metered(&dst_conjuncts, &pr, flat, meter)? {
                        continue;
                    }
                    obligations.push(Obligation {
                        premise: dst_conjuncts,
                        conclusion: pr.clone(),
                        arity: flat,
                    });
                }
                matched = true;
                matched_obligations = obligations;
                break;
            }
            if !matched {
                continue;
            }

            // Build the core block (U3a/U3b): remove the remainder scan,
            // shift offsets, project A_c, DISTINCT.
            let rem_width = re - rs;
            let shift = |i: usize| if i >= re { i - rem_width } else { i };
            let mut core_scans = valid.scans.clone();
            core_scans.remove(r_idx);
            let core = SpjBlock {
                scans: core_scans,
                conjuncts: pc.iter().map(|c| c.map_cols(&shift)).collect(),
                projection: core_projection.iter().map(|e| e.map_cols(&shift)).collect(),
                distinct: true,
            };

            // U3c: remainder join attributes must appear in the valid
            // block's projection (condition 1d), and q_rj =
            // `select A_rj from Rr where Pr` must itself be valid
            // (condition 3) — returned as a witness for the caller.
            let rem_join_visible = pj_pairs
                .iter()
                .all(|&(_, r)| valid.projection.contains(&ScalarExpr::Col(r)));
            let multiplicity_witness = if rem_join_visible && !valid.distinct {
                Some(SpjBlock {
                    scans: vec![(rem_table.clone(), rem_schema.clone())],
                    conjuncts: pr.iter().map(|c| c.map_cols(&|i| i - rs)).collect(),
                    projection: pj_pairs
                        .iter()
                        .map(|&(_, r)| ScalarExpr::Col(r - rs))
                        .collect(),
                    distinct: false,
                })
            } else {
                None
            };

            out.push(U3Derivation {
                core,
                multiplicity_witness,
                constraint: dep.name.clone(),
                remainder_table: rem_table.clone(),
                obligations: matched_obligations,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::Plan;
    use fgac_types::{Column, DataType, Schema};

    /// Example 5.1/5.2 setup: RegStudents view over Registered ⋈
    /// Students, with "every student registers for ≥1 course".
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        c.add_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        c.add_inclusion_dependency(InclusionDependency {
            name: Ident::new("all_registered"),
            src_table: Ident::new("students"),
            src_columns: vec![Ident::new("student_id")],
            src_filter: None,
            dst_table: Ident::new("registered"),
            dst_columns: vec![Ident::new("student_id")],
            dst_filter: None,
        })
        .unwrap();
        c
    }

    /// RegStudents: π_{R.course_id, S.name, S.type}(R ⋈ S). Flat order:
    /// registered(0,1), students(2,3,4).
    fn reg_students() -> SpjBlock {
        let p = Plan::scan(
            "registered",
            catalog().table(&Ident::new("registered")).unwrap().schema.clone(),
        )
        .join(
            Plan::scan(
                "students",
                catalog().table(&Ident::new("students")).unwrap().schema.clone(),
            ),
            vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2))],
        )
        .project(vec![
            ScalarExpr::col(1),
            ScalarExpr::col(3),
            ScalarExpr::col(4),
        ]);
        SpjBlock::decompose(&fgac_algebra::normalize(&p)).unwrap()
    }

    fn visible(names: &[&str]) -> BTreeSet<Ident> {
        names.iter().map(Ident::new).collect()
    }

    #[test]
    fn example_5_2_derives_distinct_students_projection() {
        let cat = catalog();
        let ds = derive(&cat, &visible(&["all_registered"]), &reg_students());
        // One derivation: remainder = registered, core = students.
        let d = ds
            .iter()
            .find(|d| d.remainder_table == Ident::new("registered"))
            .expect("derivation for remainder=registered");
        assert_eq!(d.core.scans.len(), 1);
        assert_eq!(d.core.scans[0].0, Ident::new("students"));
        assert!(d.core.distinct, "U3a derives SELECT DISTINCT");
        // A_c = name, type (course_id is a remainder attribute).
        assert_eq!(
            d.core.projection,
            vec![ScalarExpr::Col(1), ScalarExpr::Col(2)]
        );
        assert_eq!(d.constraint, Ident::new("all_registered"));
        // Remainder join attr (R.student_id) is NOT in the view
        // projection, so no U3c multiplicity witness.
        assert!(d.multiplicity_witness.is_none());
    }

    #[test]
    fn invisible_constraint_blocks_derivation() {
        let cat = catalog();
        let ds = derive(&cat, &visible(&[]), &reg_students());
        assert!(ds.is_empty());
    }

    #[test]
    fn example_5_3_conditional_inclusion() {
        // View restricted to full-time students; constraint only covers
        // full-time students.
        let mut cat = catalog();
        cat.add_inclusion_dependency(InclusionDependency {
            name: Ident::new("ft_registered"),
            src_table: Ident::new("students"),
            src_columns: vec![Ident::new("student_id")],
            src_filter: Some(fgac_sql::parse_expr("type = 'FullTime'").unwrap()),
            dst_table: Ident::new("registered"),
            dst_columns: vec![Ident::new("student_id")],
            dst_filter: None,
        })
        .unwrap();
        // σ_{S.type='FullTime'}(RegStudents) as a block.
        let mut v = reg_students();
        v.conjuncts.push(ScalarExpr::eq(
            ScalarExpr::Col(4),
            ScalarExpr::lit("FullTime"),
        ));
        let ds = derive(&cat, &visible(&["ft_registered"]), &v);
        assert!(
            ds.iter().any(|d| d.constraint == Ident::new("ft_registered")),
            "Pc = (type='FullTime') implies the constraint's source filter"
        );

        // Without the type restriction, the conditional constraint must
        // NOT fire (Pc = true does not imply type='FullTime').
        let ds = derive(&cat, &visible(&["ft_registered"]), &reg_students());
        assert!(ds.iter().all(|d| d.constraint != Ident::new("ft_registered")));
    }

    #[test]
    fn u3c_witness_when_join_attrs_projected() {
        // View that projects the remainder join attribute too:
        // π_{R.student_id, R.course_id, S.name}(R ⋈ S), remainder = S?
        // Use remainder = registered with R.student_id projected.
        let cat = catalog();
        let p = Plan::scan(
            "registered",
            cat.table(&Ident::new("registered")).unwrap().schema.clone(),
        )
        .join(
            Plan::scan(
                "students",
                cat.table(&Ident::new("students")).unwrap().schema.clone(),
            ),
            vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2))],
        )
        .project(vec![
            ScalarExpr::col(0), // R.student_id (the join attr)
            ScalarExpr::col(1),
            ScalarExpr::col(3),
        ]);
        let v = SpjBlock::decompose(&fgac_algebra::normalize(&p)).unwrap();
        let ds = derive(&cat, &visible(&["all_registered"]), &v);
        let d = ds
            .iter()
            .find(|d| d.remainder_table == Ident::new("registered"))
            .unwrap();
        let w = d.multiplicity_witness.as_ref().expect("U3c witness");
        // q_rj = select student_id from registered.
        assert_eq!(w.scans[0].0, Ident::new("registered"));
        assert_eq!(w.projection, vec![ScalarExpr::Col(0)]);
        assert!(!w.distinct);
    }

    #[test]
    fn cross_conjunct_that_is_not_equijoin_blocks() {
        let cat = catalog();
        let mut v = reg_students();
        // Add R.course_id <> S.name — a non-equi cross conjunct.
        v.conjuncts.push(ScalarExpr::cmp(
            CmpOp::NotEq,
            ScalarExpr::Col(1),
            ScalarExpr::Col(3),
        ));
        let ds = derive(&cat, &visible(&["all_registered"]), &v);
        assert!(ds.is_empty());
    }
}
