//! Inference rules C3a / C3b (Section 5.4): conditional validity.
//!
//! Goal-directed form: given the user's query `Q` (an SPJ block) and a
//! (conditionally) valid block `V = select A from R where Pc ∧ Pr ∧ Pj`,
//! find a remainder split such that `Q` is exactly
//! `select [distinct] A_c from R_c where Pc ∧ Pic`, where `Pic`
//! instantiates all core-side join attributes to constants. The
//! derivation is justified *only if* the instantiated remainder
//!
//! ```sql
//! v_r: SELECT DISTINCT <join attrs> FROM R_r WHERE Pr ∧ Pir
//! ```
//!
//! is itself (conditionally) valid — this is what blocks Example 4.3's
//! registration-status leak — **and** returns a non-empty result on the
//! current database state. Checking those two conditions needs the
//! marking and the executor, so this module only *constructs* the
//! candidate; `nontruman::Validator` verifies it.

use fgac_algebra::implication::implies_metered;
use fgac_algebra::{CmpOp, ScalarExpr, SpjBlock};
use fgac_analyze::Obligation;
use fgac_storage::Catalog;
use fgac_types::{BudgetMeter, Result, Value};

/// Phase label C3 candidate construction charges its budget under.
const PHASE: &str = "C3 candidates";

/// A C3 candidate produced from (query, valid block, remainder choice).
#[derive(Debug, Clone)]
pub struct C3Candidate {
    /// `v_r` with DISTINCT — condition 3 of C3a: must be conditionally
    /// valid and non-empty on the current state.
    pub v_r: SpjBlock,
    /// `v_r` without DISTINCT — C3b: if *this* is valid too, the query's
    /// multiplicities are reconstructible and a non-DISTINCT query is
    /// acceptable.
    pub v_r_count: SpjBlock,
    /// The query needs C3b (it is duplicate-preserving and not provably
    /// duplicate-free).
    pub requires_c3b: bool,
    /// Human-readable description for the rule trace.
    pub description: String,
    /// The equivalence obligations (query predicate ⟺ Pc ∧ Pic over the
    /// core frame) this candidate discharged, recorded for the validity
    /// certificate so the checker can re-prove them.
    pub obligations: Vec<Obligation>,
}

/// Enumerates C3 candidates justifying `query` from `valid`.
pub fn candidates(catalog: &Catalog, query: &SpjBlock, valid: &SpjBlock) -> Vec<C3Candidate> {
    // An unlimited meter never trips, so Err is unreachable here.
    candidates_metered(catalog, query, valid, &BudgetMeter::unlimited()).unwrap_or_default()
}

/// [`candidates`] under a resource budget. Charges per remainder choice
/// and inside the implication prover; propagates exhaustion so the
/// caller fails closed.
pub fn candidates_metered(
    catalog: &Catalog,
    query: &SpjBlock,
    valid: &SpjBlock,
    meter: &BudgetMeter,
) -> Result<Vec<C3Candidate>> {
    let mut out = Vec::new();
    if valid.scans.len() < 2 || query.scans.len() != valid.scans.len() - 1 {
        return Ok(out);
    }
    let flat = valid.flat_arity();

    'rem: for r_idx in 0..valid.scans.len() {
        meter.charge(PHASE, 1)?;
        let (rs, re) = valid.scan_range(r_idx);
        let in_rem = |c: usize| c >= rs && c < re;

        // Partition V's conjuncts.
        let mut pc = Vec::new();
        let mut pr = Vec::new();
        let mut pj_pairs: Vec<(usize, usize)> = Vec::new();
        for c in &valid.conjuncts {
            let cols = c.referenced_cols();
            let rem_cols = cols.iter().filter(|&&i| in_rem(i)).count();
            if rem_cols == 0 {
                pc.push(c.clone());
            } else if rem_cols == cols.len() {
                pr.push(c.clone());
            } else {
                match c {
                    ScalarExpr::Cmp {
                        op: CmpOp::Eq,
                        left,
                        right,
                    } => match (&**left, &**right) {
                        (ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                            let (core, rem) = if in_rem(*a) { (*b, *a) } else { (*a, *b) };
                            if in_rem(core) || !in_rem(rem) {
                                continue 'rem;
                            }
                            pj_pairs.push((core, rem));
                        }
                        _ => continue 'rem,
                    },
                    _ => continue 'rem,
                }
            }
        }
        if pj_pairs.is_empty() {
            continue;
        }

        // C3a condition 1(d): every core-side join attribute must be in
        // the valid block's projection (as a plain column) — otherwise
        // the user cannot select on it.
        if !pj_pairs
            .iter()
            .all(|&(c, _)| valid.projection.contains(&ScalarExpr::Col(c)))
        {
            continue;
        }

        // Core frame: V's flat row with the remainder removed.
        let rem_width = re - rs;
        let shift = |i: usize| if i >= re { i - rem_width } else { i };
        let mut core_scans = valid.scans.clone();
        core_scans.remove(r_idx);

        // Align the query onto the core (same table multiset, try the
        // identity-ish alignment first via simple permutation search).
        let Some(q_to_core) = align_scans(query, &core_scans) else {
            continue;
        };
        let qc_in_core: Vec<ScalarExpr> = query
            .conjuncts
            .iter()
            .map(|c| c.map_cols(&|i| q_to_core[i]))
            .collect();

        // Extract the instantiation Pic: every core join attribute must
        // be pinned to a literal by the query's predicate.
        let core_arity = flat - rem_width;
        let mut pic = Vec::new();
        let mut pir = Vec::new();
        let mut pins: Vec<(usize, Value)> = Vec::new();
        for &(core_col, rem_col) in &pj_pairs {
            let cc = shift(core_col);
            let Some(v) = pinned_value(&qc_in_core, cc, core_arity, meter)? else {
                continue 'rem;
            };
            pic.push(ScalarExpr::eq(ScalarExpr::Col(cc), ScalarExpr::Lit(v.clone())));
            pir.push(ScalarExpr::eq(
                ScalarExpr::Col(rem_col - rs),
                ScalarExpr::Lit(v.clone()),
            ));
            pins.push((cc, v));
        }

        // The query predicate must be equivalent to Pc ∧ Pic.
        let pc_core: Vec<ScalarExpr> = pc.iter().map(|c| c.map_cols(&shift)).collect();
        let mut pc_pic = pc_core.clone();
        pc_pic.extend(pic.iter().cloned());
        if !implies_metered(&qc_in_core, &pc_pic, core_arity, meter)?
            || !implies_metered(&pc_pic, &qc_in_core, core_arity, meter)?
        {
            continue;
        }

        // The query's projection must use only core columns that V
        // projects (A_c): each referenced column must appear (shifted)
        // in V's projection.
        let available = |core_col: usize| -> bool {
            // Invert the shift: core_col < rs stays, >= rs maps to +rem.
            let flat_col = if core_col >= rs {
                core_col + rem_width
            } else {
                core_col
            };
            valid.projection.contains(&ScalarExpr::Col(flat_col))
        };
        let proj_ok = query.projection.iter().all(|e| {
            e.referenced_cols()
                .iter()
                .all(|&i| available(q_to_core[i]))
        });
        if !proj_ok {
            continue;
        }

        // Multiplicity: DISTINCT queries are fine (C3a); otherwise the
        // query must be duplicate-free, or C3b must hold.
        let requires_c3b =
            !query.distinct && !super::matcher::is_duplicate_free(catalog, query);

        let rem_table = valid.scans[r_idx].0.clone();
        let rem_schema = valid.scans[r_idx].1.clone();
        let mut vr_conj: Vec<ScalarExpr> =
            pr.iter().map(|c| c.map_cols(&|i| i - rs)).collect();
        vr_conj.extend(pir.iter().cloned());
        let vr_proj: Vec<ScalarExpr> = pj_pairs
            .iter()
            .map(|&(_, r)| ScalarExpr::Col(r - rs))
            .collect();
        let v_r = SpjBlock {
            scans: vec![(rem_table.clone(), rem_schema.clone())],
            conjuncts: vr_conj.clone(),
            projection: vr_proj.clone(),
            distinct: true,
        };
        let v_r_count = SpjBlock {
            distinct: false,
            ..v_r.clone()
        };
        out.push(C3Candidate {
            v_r,
            v_r_count,
            requires_c3b,
            obligations: vec![
                Obligation {
                    premise: qc_in_core.clone(),
                    conclusion: pc_pic.clone(),
                    arity: core_arity,
                },
                Obligation {
                    premise: pc_pic.clone(),
                    conclusion: qc_in_core.clone(),
                    arity: core_arity,
                },
            ],
            description: format!(
                "C3{} with remainder {} instantiated at {}",
                if requires_c3b { "b" } else { "a" },
                rem_table,
                pins.iter()
                    .map(|(c, v)| format!("#{c}={v}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        });
    }
    Ok(out)
}

/// Finds an alignment (flat-offset map) from `q`'s frame onto the frame
/// of `core_scans`, trying same-table permutations.
fn align_scans(
    q: &SpjBlock,
    core_scans: &[(fgac_types::Ident, fgac_types::Schema)],
) -> Option<Vec<usize>> {
    if q.scans.len() != core_scans.len() {
        return None;
    }
    let core_start: Vec<usize> = {
        let mut acc = 0;
        core_scans
            .iter()
            .map(|(_, s)| {
                let v = acc;
                acc += s.len();
                v
            })
            .collect()
    };
    fn rec(
        q: &SpjBlock,
        core_scans: &[(fgac_types::Ident, fgac_types::Schema)],
        core_start: &[usize],
        idx: usize,
        used: &mut Vec<bool>,
        map: &mut Vec<usize>,
    ) -> bool {
        if idx == q.scans.len() {
            return true;
        }
        for ci in 0..core_scans.len() {
            if used[ci]
                || core_scans[ci].0 != q.scans[idx].0
                || core_scans[ci].1.len() != q.scans[idx].1.len()
            {
                continue;
            }
            used[ci] = true;
            let (qs, qe) = q.scan_range(idx);
            for (k, col) in (qs..qe).enumerate() {
                map[col] = core_start[ci] + k;
            }
            if rec(q, core_scans, core_start, idx + 1, used, map) {
                return true;
            }
            used[ci] = false;
        }
        false
    }
    let mut used = vec![false; core_scans.len()];
    let mut map = vec![0usize; q.flat_arity()];
    if rec(q, core_scans, &core_start, 0, &mut used, &mut map) {
        Some(map)
    } else {
        None
    }
}

/// The literal `col` is pinned to by the conjuncts, if any.
fn pinned_value(
    conjuncts: &[ScalarExpr],
    col: usize,
    arity: usize,
    meter: &BudgetMeter,
) -> Result<Option<Value>> {
    // Fast path: a syntactic col = lit conjunct.
    for c in conjuncts {
        if let ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = c
        {
            if matches!(&**left, ScalarExpr::Col(i) if *i == col) {
                if let ScalarExpr::Lit(v) = &**right {
                    return Ok(Some(v.clone()));
                }
            }
        }
    }
    // Derived pins (through equalities) — probe candidate literals.
    let literals: Vec<Value> = conjuncts
        .iter()
        .flat_map(|c| {
            let mut lits = Vec::new();
            c.walk(&mut |e| {
                if let ScalarExpr::Lit(v) = e {
                    if !v.is_null() {
                        lits.push(v.clone());
                    }
                }
            });
            lits
        })
        .collect();
    for v in literals {
        if implies_metered(
            conjuncts,
            &[ScalarExpr::eq(ScalarExpr::Col(col), ScalarExpr::Lit(v.clone()))],
            arity,
            meter,
        )? {
            return Ok(Some(v));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::Plan;
    use fgac_types::{Column, DataType, Ident, Schema};

    /// Example 4.3/4.4: Co-studentGrades and the CS101 query.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        c.add_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        c
    }

    /// Co-studentGrades instantiated for user 11: π_{G.*}(G ⋈ R) with
    /// R.student_id='11' and G.course_id=R.course_id. Flat: G(0..3),
    /// R(3..5).
    fn co_student_grades(cat: &Catalog) -> SpjBlock {
        let p = Plan::scan(
            "grades",
            cat.table(&Ident::new("grades")).unwrap().schema.clone(),
        )
        .join(
            Plan::scan(
                "registered",
                cat.table(&Ident::new("registered")).unwrap().schema.clone(),
            ),
            vec![
                ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::lit("11")),
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4)),
            ],
        )
        .project(vec![
            ScalarExpr::col(0),
            ScalarExpr::col(1),
            ScalarExpr::col(2),
        ]);
        SpjBlock::decompose(&fgac_algebra::normalize(&p)).unwrap()
    }

    /// q: select * from Grades where course_id = 'CS101'.
    fn cs101_query(cat: &Catalog, distinct: bool) -> SpjBlock {
        let mut p = Plan::scan(
            "grades",
            cat.table(&Ident::new("grades")).unwrap().schema.clone(),
        )
        .select(vec![ScalarExpr::eq(
            ScalarExpr::col(1),
            ScalarExpr::lit("cs101"),
        )]);
        p = p.project(vec![
            ScalarExpr::col(0),
            ScalarExpr::col(1),
            ScalarExpr::col(2),
        ]);
        if distinct {
            p = p.distinct();
        }
        SpjBlock::decompose(&fgac_algebra::normalize(&p)).unwrap()
    }

    #[test]
    fn example_4_4_candidate_construction() {
        let cat = catalog();
        let v = co_student_grades(&cat);
        let q = cs101_query(&cat, true);
        let cands = candidates(&cat, &q, &v);
        assert_eq!(cands.len(), 1, "one remainder split (registered)");
        let c = &cands[0];
        // v_r: select distinct course_id from registered where
        // student_id='11' and course_id='cs101'.
        assert_eq!(c.v_r.scans[0].0, Ident::new("registered"));
        assert!(c.v_r.distinct);
        assert!(c
            .v_r
            .conjuncts
            .contains(&ScalarExpr::eq(ScalarExpr::Col(0), ScalarExpr::lit("11"))));
        assert!(c
            .v_r
            .conjuncts
            .contains(&ScalarExpr::eq(ScalarExpr::Col(1), ScalarExpr::lit("cs101"))));
        assert!(!c.requires_c3b, "distinct query uses C3a");
    }

    #[test]
    fn non_distinct_query_with_pk_uses_c3a() {
        // Example 5.5: "Since the Grades table has a primary key, the
        // distinct keyword can be dropped."
        let cat = catalog();
        let v = co_student_grades(&cat);
        let q = cs101_query(&cat, false);
        let cands = candidates(&cat, &q, &v);
        assert_eq!(cands.len(), 1);
        assert!(
            !cands[0].requires_c3b,
            "PK makes the query duplicate-free; C3a suffices"
        );
    }

    #[test]
    fn unpinned_join_attribute_blocks_candidate() {
        // Query without the course_id instantiation cannot use C3.
        let cat = catalog();
        let v = co_student_grades(&cat);
        let p = Plan::scan(
            "grades",
            cat.table(&Ident::new("grades")).unwrap().schema.clone(),
        )
        .select(vec![ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(2),
            ScalarExpr::lit(90),
        )]);
        let q = SpjBlock::decompose(&fgac_algebra::normalize(&p)).unwrap();
        assert!(candidates(&cat, &q, &v).is_empty());
    }

    #[test]
    fn extra_query_predicates_fold_into_pic_equivalence() {
        // q with an additional predicate not matched by Pc ∧ Pic fails
        // the equivalence check (it would need a further σ on top, which
        // C2 handles at the class level, not here).
        let cat = catalog();
        let v = co_student_grades(&cat);
        let p = Plan::scan(
            "grades",
            cat.table(&Ident::new("grades")).unwrap().schema.clone(),
        )
        .select(vec![
            ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit("cs101")),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(2), ScalarExpr::lit(90)),
        ])
        .project(vec![
            ScalarExpr::col(0),
            ScalarExpr::col(1),
            ScalarExpr::col(2),
        ])
        .distinct();
        let q = SpjBlock::decompose(&fgac_algebra::normalize(&p)).unwrap();
        assert!(candidates(&cat, &q, &v).is_empty());
    }

    #[test]
    fn derived_pin_through_equality() {
        let conj = vec![
            ScalarExpr::eq(ScalarExpr::Col(0), ScalarExpr::Col(1)),
            ScalarExpr::eq(ScalarExpr::Col(1), ScalarExpr::lit("cs101")),
        ];
        let meter = BudgetMeter::unlimited();
        assert_eq!(
            pinned_value(&conj, 0, 2, &meter).unwrap(),
            Some(Value::Str("cs101".into()))
        );
        assert_eq!(pinned_value(&conj[..1], 0, 2, &meter).unwrap(), None);
    }
}
