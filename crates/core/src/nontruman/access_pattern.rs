//! Access-pattern authorization views (Sections 2 and 6).
//!
//! A `$$` parameter may be bound to *any* value at access time, so an
//! access-pattern view conceptually stands for the set of all its
//! instantiations. Two inference mechanisms from Section 6:
//!
//! 1. **Constant instantiation** — "access pattern views can be handled
//!    by considering the set of all instantiated versions ... and
//!    checking validity against this set": for a concrete query we only
//!    need instantiations at the constants the query itself mentions.
//! 2. **Dependent joins** — `r ⋈_{r.B=s.A} s` is valid when `r` is valid
//!    and an AP view covers `s` keyed on `s.A`: the user can step
//!    through `r`'s tuples and fetch matching `s` tuples one at a time.

use crate::authview::AuthorizationView;
use fgac_algebra::{CmpOp, ScalarExpr, SpjBlock};
use fgac_sql::Expr;
use fgac_types::{Ident, Value};
use std::collections::BTreeSet;

/// Cap on per-view instantiations to keep the view set bounded.
const MAX_INSTANTIATIONS: usize = 24;

/// All literals appearing in the query plan's predicates — the candidate
/// bindings for `$$` parameters.
pub fn query_literals(plan: &fgac_algebra::Plan) -> Vec<Value> {
    let mut out = BTreeSet::new();
    plan.visit(&mut |p| {
        let mut scan_exprs = |es: &[ScalarExpr]| {
            for e in es {
                e.walk(&mut |x| {
                    if let ScalarExpr::Lit(v) = x {
                        if !v.is_null() {
                            out.insert(v.clone());
                        }
                    }
                });
            }
        };
        match p {
            fgac_algebra::Plan::Select { conjuncts, .. }
            | fgac_algebra::Plan::Join { conjuncts, .. } => scan_exprs(conjuncts),
            _ => {}
        }
    });
    out.into_iter().collect()
}

/// Instantiates an access-pattern view at each candidate constant
/// (single-`$$`-parameter views only; multi-parameter views would need a
/// cross product of candidates and are skipped).
pub fn instantiate_at_constants(
    view: &AuthorizationView,
    candidates: &[Value],
) -> Vec<(Value, AuthorizationView)> {
    let params = view.access_params();
    if params.len() != 1 {
        return Vec::new();
    }
    let param = &params[0];
    candidates
        .iter()
        .take(MAX_INSTANTIATIONS)
        .map(|v| {
            let mut q = view.query.clone();
            substitute_query(&mut q, param, v);
            (
                v.clone(),
                AuthorizationView::new(
                    Ident::new(format!("{}@{v}", view.name)),
                    q,
                ),
            )
        })
        .collect()
}

fn substitute_query(q: &mut fgac_sql::Query, param: &str, v: &Value) {
    fn subst(e: &mut Expr, param: &str, v: &Value) {
        match e {
            Expr::AccessParam(p) if p == param => *e = Expr::Literal(v.clone()),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => subst(expr, param, v),
            Expr::Binary { left, right, .. } => {
                subst(left, param, v);
                subst(right, param, v);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    subst(a, param, v);
                }
            }
            _ => {}
        }
    }
    for item in &mut q.projection {
        if let fgac_sql::SelectItem::Expr { expr, .. } = item {
            subst(expr, param, v);
        }
    }
    for t in &mut q.from {
        for j in &mut t.joins {
            subst(&mut j.on, param, v);
        }
    }
    if let Some(w) = &mut q.selection {
        subst(w, param, v);
    }
    for g in &mut q.group_by {
        subst(g, param, v);
    }
    if let Some(h) = &mut q.having {
        subst(h, param, v);
    }
}

/// An access-pattern capability extracted from an instantiable view:
/// "table `t` can be fetched by equality on `key_col`, yielding columns
/// `available`".
#[derive(Debug, Clone)]
pub struct ApCapability {
    pub table: Ident,
    /// Index of the key column in the table schema.
    pub key_col: usize,
    /// Table-column indexes the view exposes.
    pub available: Vec<usize>,
    pub view_name: Ident,
}

/// Recognizes the basic AP-view shape over the bound plan:
/// `[π](σ_{col = $$k [∧ extra-local]}(scan t))`.
pub fn capability(
    catalog: &fgac_storage::Catalog,
    view: &AuthorizationView,
    params: &fgac_algebra::ParamScope,
) -> Option<ApCapability> {
    if view.access_params().len() != 1 {
        return None;
    }
    let bound = view.instantiate(catalog, params).ok()?;
    let block = SpjBlock::decompose(&fgac_algebra::normalize(&bound.plan))?;
    if block.scans.len() != 1 || block.distinct {
        return None;
    }
    // Exactly one conjunct of the form Col = $$k; the rest must not
    // mention the parameter.
    let mut key_col = None;
    for c in &block.conjuncts {
        match c {
            ScalarExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } if matches!(&**right, ScalarExpr::AccessParam(_)) => {
                let ScalarExpr::Col(i) = &**left else {
                    return None;
                };
                if key_col.replace(*i).is_some() {
                    return None; // parameter used twice
                }
            }
            _ if c.has_access_params() => return None,
            _ => {}
        }
    }
    let key_col = key_col?;
    let available: Vec<usize> = block
        .projection
        .iter()
        .filter_map(|e| match e {
            ScalarExpr::Col(i) => Some(*i),
            _ => None,
        })
        .collect();
    if !available.contains(&key_col) {
        // The key must be visible for dependent-join stitching.
        return None;
    }
    Some(ApCapability {
        table: block.scans[0].0.clone(),
        key_col,
        available,
        view_name: view.name.clone(),
    })
}

/// Dependent-join inference (Section 6): given the query's SPJ block, a
/// predicate telling which scan instances are *directly valid* (their
/// single-table restriction is authorized), and the AP capabilities,
/// decide whether every instance is reachable — directly valid, or
/// fetchable through an equi-join edge from a reachable instance via an
/// AP capability.
pub fn dependent_join_covers(
    query: &SpjBlock,
    directly_valid: &[bool],
    capabilities: &[ApCapability],
) -> Option<(Vec<String>, Vec<Ident>)> {
    let n = query.scans.len();
    assert_eq!(directly_valid.len(), n);
    let mut reachable: Vec<bool> = directly_valid.to_vec();
    let mut trace: Vec<String> = Vec::new();
    let mut used_views: Vec<Ident> = Vec::new();

    // Equi-join edges between instances: (owner_a, col_a, owner_b, col_b).
    let mut edges = Vec::new();
    for c in &query.conjuncts {
        if let ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = c
        {
            if let (ScalarExpr::Col(a), ScalarExpr::Col(b)) = (&**left, &**right) {
                let (oa, ob) = (query.owner(*a), query.owner(*b));
                if oa != ob {
                    edges.push((oa, *a, ob, *b));
                }
            }
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for (idx, (table, schema)) in query.scans.iter().enumerate() {
            if reachable[idx] {
                continue;
            }
            let (start, _) = query.scan_range(idx);
            for cap in capabilities {
                if &cap.table != table {
                    continue;
                }
                let key_flat = start + cap.key_col;
                // All query-used columns of this instance must be exposed
                // by the capability.
                let used_ok = used_columns(query, idx).iter().all(|&c| {
                    cap.available.contains(&(c - start))
                });
                if !used_ok {
                    continue;
                }
                // An edge key_flat = other-instance column with the other
                // side reachable?
                let feed = edges.iter().find(|&&(oa, a, ob, b)| {
                    (a == key_flat && reachable[ob] && oa == idx)
                        || (b == key_flat && reachable[oa] && ob == idx)
                });
                if feed.is_some() {
                    reachable[idx] = true;
                    changed = true;
                    trace.push(format!(
                        "dependent join fetches {} (instance {idx}) via access-pattern view {} on {}.{}",
                        table,
                        cap.view_name,
                        table,
                        schema.column(cap.key_col).name
                    ));
                    if !used_views.contains(&cap.view_name) {
                        used_views.push(cap.view_name.clone());
                    }
                    break;
                }
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        Some((trace, used_views))
    } else {
        None
    }
}

/// Flat columns of instance `idx` the query actually uses (projection or
/// predicates).
fn used_columns(query: &SpjBlock, idx: usize) -> Vec<usize> {
    let (start, end) = query.scan_range(idx);
    let mut used = BTreeSet::new();
    for e in query.projection.iter().chain(query.conjuncts.iter()) {
        for c in e.referenced_cols() {
            if c >= start && c < end {
                used.insert(c);
            }
        }
    }
    used.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::ParamScope;
    use fgac_storage::Catalog;
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            None,
        )
        .unwrap();
        c.add_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        c
    }

    fn single_grade_view() -> AuthorizationView {
        AuthorizationView::parse(
            "create authorization view SingleGrade as \
             select * from grades where student_id = $$1",
        )
        .unwrap()
    }

    #[test]
    fn literals_collected_from_plan() {
        let cat = catalog();
        let q = fgac_sql::parse_query(
            "select grade from grades where student_id = '11' and grade > 50",
        )
        .unwrap();
        let b = fgac_algebra::bind_query(&cat, &q, &ParamScope::new()).unwrap();
        let lits = query_literals(&b.plan);
        assert!(lits.contains(&Value::Str("11".into())));
        assert!(lits.contains(&Value::Int(50)));
    }

    #[test]
    fn instantiation_replaces_access_param() {
        let v = single_grade_view();
        let insts = instantiate_at_constants(&v, &[Value::Str("42".into())]);
        assert_eq!(insts.len(), 1);
        let (val, iv) = &insts[0];
        assert_eq!(val, &Value::Str("42".into()));
        assert!(iv.access_params().is_empty());
        assert_eq!(
            iv.query.selection,
            Some(Expr::eq(Expr::col("student_id"), Expr::lit("42")))
        );
    }

    #[test]
    fn capability_recognized() {
        let cat = catalog();
        let cap = capability(&cat, &single_grade_view(), &ParamScope::new()).unwrap();
        assert_eq!(cap.table, Ident::new("grades"));
        assert_eq!(cap.key_col, 0);
        assert_eq!(cap.available, vec![0, 1, 2]);
    }

    #[test]
    fn view_hiding_key_column_gives_no_capability() {
        let cat = catalog();
        let v = AuthorizationView::parse(
            "create authorization view NoKey as \
             select grade from grades where student_id = $$1",
        )
        .unwrap();
        assert!(capability(&cat, &v, &ParamScope::new()).is_none());
    }

    #[test]
    fn dependent_join_reaches_through_edge() {
        // registered ⋈_{r.student_id = g.student_id} grades, with
        // registered directly valid and grades via SingleGrade.
        let cat = catalog();
        let q = fgac_sql::parse_query(
            "select g.grade from registered r, grades g \
             where r.student_id = g.student_id",
        )
        .unwrap();
        let b = fgac_algebra::bind_query(&cat, &q, &ParamScope::new()).unwrap();
        let block = SpjBlock::decompose(&fgac_algebra::normalize(&b.plan)).unwrap();
        let cap = capability(&cat, &single_grade_view(), &ParamScope::new()).unwrap();
        // registered (instance 0) directly valid, grades (1) not.
        let trace = dependent_join_covers(&block, &[true, false], std::slice::from_ref(&cap));
        assert!(trace.is_some());
        // Without the anchor, nothing is reachable.
        assert!(dependent_join_covers(&block, &[false, false], &[cap]).is_none());
    }

    #[test]
    fn dependent_join_requires_join_on_key_column() {
        // Join on grade (not the AP key) must not anchor grades.
        let cat = catalog();
        let q = fgac_sql::parse_query(
            "select g.grade from registered r, grades g \
             where r.course_id = g.course_id",
        )
        .unwrap();
        let b = fgac_algebra::bind_query(&cat, &q, &ParamScope::new()).unwrap();
        let block = SpjBlock::decompose(&fgac_algebra::normalize(&b.plan)).unwrap();
        let cap = capability(&cat, &single_grade_view(), &ParamScope::new()).unwrap();
        assert!(dependent_join_covers(&block, &[true, false], &[cap]).is_none());
    }
}
