//! Step accumulator for validity certificates.
//!
//! The validator threads a [`CertBuilder`] through `check_plan`: every
//! rule application (U1 view instantiation, U2 match/restrict/compose,
//! U3 expansion, C3 probe, dependent join) pushes a [`Step`] and gets
//! back its index, which later steps cite as premises. The builder also
//! remembers which step justified each directly-marked DAG class and
//! which step backs each view root, so a DAG-propagation acceptance can
//! name its supporting premises via [`Marking`] provenance.
//!
//! When disabled (`CheckOptions::emit_certificates == false`) every
//! method is a no-op and `push` returns a dummy index, so the validator
//! logic stays branch-free.

use fgac_analyze::Step;
use fgac_optimizer::{Dag, EqId, Marking};

pub(crate) struct CertBuilder {
    enabled: bool,
    steps: Vec<Step>,
    /// Directly-marked DAG classes (U3 cores, matcher hits) and the
    /// step that justified each. Looked up through `dag.find` so later
    /// merges don't orphan the provenance.
    class_steps: Vec<(EqId, usize)>,
    /// Step index backing each view root, in `mark_valid` root order.
    root_steps: Vec<usize>,
}

impl CertBuilder {
    pub fn new(enabled: bool) -> Self {
        CertBuilder {
            enabled,
            steps: Vec::new(),
            class_steps: Vec::new(),
            root_steps: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a step and returns its index (0 when disabled).
    pub fn push(&mut self, step: Step) -> usize {
        if !self.enabled {
            return 0;
        }
        self.steps.push(step);
        self.steps.len() - 1
    }

    /// Appends a step backing the next view root (root order must match
    /// the root list handed to `mark_valid`).
    pub fn push_root(&mut self, step: Step) -> usize {
        let idx = self.push(step);
        self.root_steps.push(idx);
        idx
    }

    /// Records that `class` was directly marked valid because of `step`.
    pub fn note_class(&mut self, dag: &Dag, class: EqId, step: usize) {
        if self.enabled {
            self.class_steps.push((dag.find(class), step));
        }
    }

    fn step_for_class(&self, dag: &Dag, class: EqId) -> Option<usize> {
        let canon = dag.find(class);
        self.class_steps
            .iter()
            .rev()
            .find(|&&(c, _)| dag.find(c) == canon)
            .map(|&(_, s)| s)
    }

    /// Premise steps supporting `class`'s validity: the view roots and
    /// directly-marked classes the marking's provenance reaches.
    pub fn supports(&self, dag: &Dag, marking: &Marking, class: EqId) -> Vec<usize> {
        if !self.enabled {
            return Vec::new();
        }
        let mut out: Vec<usize> = marking
            .supporting_roots(dag, class)
            .into_iter()
            .filter_map(|i| self.root_steps.get(i).copied())
            .collect();
        for c in marking.supporting_marks(dag, class) {
            if let Some(s) = self.step_for_class(dag, c) {
                out.push(s);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Consumes the builder, yielding the accumulated steps.
    pub fn take(self) -> Vec<Step> {
        self.steps
    }
}
