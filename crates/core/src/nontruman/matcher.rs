//! SPJ-block matching: can query block `Q` be computed from valid block
//! `V`?
//!
//! This is the view-matching step of inference rule U2: "if a query can
//! be expressed as an operation (projection, selection, join etc.) on top
//! of unconditionally valid subexpressions, the query is itself
//! unconditionally valid" — here specialized to σ/π/δ on top of one valid
//! SPJ block, with multiset semantics handled precisely:
//!
//! * `Q` and `V` must scan the same multiset of base tables (instances
//!   are aligned by backtracking over same-table permutations);
//! * `Q`'s predicate must *imply* `V`'s (so `σ_extra(V)` reproduces
//!   exactly `Q`'s base rows — the subsumption direction), where `extra`
//!   is `Q`'s own predicate re-expressed over `V`'s output columns;
//! * every column `Q` projects or filters on must survive `V`'s
//!   projection;
//! * multiplicities: if `Q` is duplicate-preserving, `V` must be too —
//!   unless `Q` is provably duplicate-free (primary-key reasoning, the
//!   paper's Example 5.5 "since the Grades table has a primary key, the
//!   distinct keyword can be dropped").

use fgac_algebra::implication::implies_metered;
use fgac_algebra::{ScalarExpr, SpjBlock};
use fgac_storage::Catalog;
use fgac_types::{BudgetMeter, Ident, Result};

/// Phase label the matcher charges its budget under.
const PHASE: &str = "view matcher";

/// A successful match: how `Q` is computed from `V`.
#[derive(Debug, Clone)]
pub struct MatchWitness {
    /// Conjuncts applied on top of `V` (over `V`'s output row).
    pub extra_conjuncts: Vec<ScalarExpr>,
    /// Projection over `V`'s output row.
    pub projection: Vec<ScalarExpr>,
    /// Whether a final duplicate elimination is applied.
    pub distinct: bool,
    /// Flat-column map from `Q`'s frame into `V`'s frame (the alignment
    /// substitution) — recorded in validity certificates so the checker
    /// can re-verify the match without re-running the backtracking.
    pub q_to_v: Vec<usize>,
}

/// Attempts to compute `q` from `v`. Both blocks are over base tables.
pub fn match_block(catalog: &Catalog, q: &SpjBlock, v: &SpjBlock) -> Option<MatchWitness> {
    // An unlimited meter never trips, so Err is unreachable here.
    match_block_metered(catalog, q, v, &BudgetMeter::unlimited()).unwrap_or(None)
}

/// [`match_block`] under a resource budget. Charges the meter per
/// alignment attempt and inside the implication prover; propagates
/// exhaustion so the caller fails closed instead of matching.
pub fn match_block_metered(
    catalog: &Catalog,
    q: &SpjBlock,
    v: &SpjBlock,
    meter: &BudgetMeter,
) -> Result<Option<MatchWitness>> {
    meter.charge(PHASE, 1)?;
    if q.scans.len() != v.scans.len() {
        return Ok(None);
    }
    // Multiset of table names must agree.
    let mut qt: Vec<&Ident> = q.scans.iter().map(|(t, _)| t).collect();
    let mut vt: Vec<&Ident> = v.scans.iter().map(|(t, _)| t).collect();
    qt.sort();
    vt.sort();
    if qt != vt {
        return Ok(None);
    }
    // Try alignments of Q scan instances onto V scan instances.
    let mut assignment: Vec<Option<usize>> = vec![None; q.scans.len()];
    let mut used = vec![false; v.scans.len()];
    align(catalog, q, v, 0, &mut assignment, &mut used, meter)
}

#[allow(clippy::too_many_arguments)]
fn align(
    catalog: &Catalog,
    q: &SpjBlock,
    v: &SpjBlock,
    idx: usize,
    assignment: &mut Vec<Option<usize>>,
    used: &mut Vec<bool>,
    meter: &BudgetMeter,
) -> Result<Option<MatchWitness>> {
    if idx == q.scans.len() {
        return check_aligned(catalog, q, v, assignment, meter);
    }
    for vi in 0..v.scans.len() {
        if used[vi] || v.scans[vi].0 != q.scans[idx].0 {
            continue;
        }
        meter.charge(PHASE, 1)?;
        assignment[idx] = Some(vi);
        used[vi] = true;
        if let Some(w) = align(catalog, q, v, idx + 1, assignment, used, meter)? {
            return Ok(Some(w));
        }
        assignment[idx] = None;
        used[vi] = false;
    }
    Ok(None)
}

fn check_aligned(
    catalog: &Catalog,
    q: &SpjBlock,
    v: &SpjBlock,
    assignment: &[Option<usize>],
    meter: &BudgetMeter,
) -> Result<Option<MatchWitness>> {
    // Flat-offset mapping from Q's frame into V's frame.
    let flat = q.flat_arity();
    let mut q_to_v = vec![0usize; flat];
    for (qi, vi) in assignment.iter().enumerate() {
        // `align` only recurses here once every Q scan is assigned; an
        // incomplete assignment can never witness a match, so degrade to
        // "no match" rather than panic.
        let Some(vi) = *vi else {
            return Ok(None);
        };
        let (qs, qe) = q.scan_range(qi);
        let (vs, _) = v.scan_range(vi);
        for (k, slot) in q_to_v.iter_mut().enumerate().take(qe).skip(qs) {
            *slot = vs + (k - qs);
        }
    }
    let qc_in_v: Vec<ScalarExpr> = q
        .conjuncts
        .iter()
        .map(|c| c.map_cols(&|i| q_to_v[i]))
        .collect();

    // Q's rows must be a subset of V's: Qc ⟹ Vc.
    if !implies_metered(&qc_in_v, &v.conjuncts, v.flat_arity(), meter)? {
        return Ok(None);
    }

    // Every base column Q needs (in projection or predicate) must be
    // available through V's projection as a plain column.
    let avail = |flat_col: usize| -> Option<usize> {
        v.projection
            .iter()
            .position(|e| e == &ScalarExpr::Col(flat_col))
    };
    // Remap an expression's columns through V's projection; None if any
    // needed column is unavailable.
    let remap = |e: &ScalarExpr, pre: &dyn Fn(usize) -> usize| -> Option<ScalarExpr> {
        let ok = std::cell::Cell::new(true);
        let remapped = e.transform(&|x| match x {
            ScalarExpr::Col(i) => match avail(pre(*i)) {
                Some(k) => Some(ScalarExpr::Col(k)),
                None => {
                    ok.set(false);
                    Some(x.clone())
                }
            },
            _ => None,
        });
        ok.get().then_some(remapped)
    };
    let mut extra = Vec::with_capacity(qc_in_v.len());
    for c in &qc_in_v {
        match remap(c, &|i| i) {
            Some(e) => extra.push(e),
            None => return Ok(None),
        }
    }
    let mut projection = Vec::with_capacity(q.projection.len());
    for p in &q.projection {
        match remap(p, &|i| q_to_v[i]) {
            Some(e) => projection.push(e),
            None => return Ok(None),
        }
    }

    // Multiplicity reasoning.
    if q.distinct {
        // Final Distinct absorbs everything.
        return Ok(Some(MatchWitness {
            extra_conjuncts: extra,
            projection,
            distinct: true,
            q_to_v,
        }));
    }
    if !v.distinct {
        // Duplicate-preserving all the way: σ_extra(V) reproduces Q's
        // base-row multiset exactly, π preserves it.
        return Ok(Some(MatchWitness {
            extra_conjuncts: extra,
            projection,
            distinct: false,
            q_to_v,
        }));
    }
    // V is a set; Q wants multiplicities. Sound only if Q is provably
    // duplicate-free (then sets = multisets).
    if is_duplicate_free(catalog, q) {
        return Ok(Some(MatchWitness {
            extra_conjuncts: extra,
            projection,
            distinct: false,
            q_to_v,
        }));
    }
    Ok(None)
}

/// A block is duplicate-free if it ends in DISTINCT, or if its projection
/// retains a primary key of *every* scan instance (so output tuples are
/// in bijection with base-row combinations, which are sets).
pub fn is_duplicate_free(catalog: &Catalog, block: &SpjBlock) -> bool {
    if block.distinct {
        return true;
    }
    block.scans.iter().enumerate().all(|(idx, (table, schema))| {
        let Some(meta) = catalog.table(table) else {
            return false;
        };
        let Some(pk) = &meta.primary_key else {
            return false;
        };
        let (start, _) = block.scan_range(idx);
        pk.iter().all(|col| {
            let Some(i) = schema.index_of(col) else {
                return false;
            };
            let flat = start + i;
            // Projected directly, or pinned to a constant by the
            // predicate (a pinned column carries no information and
            // cannot create duplicates).
            block.projection.contains(&ScalarExpr::Col(flat))
                || pinned_by(&block.conjuncts, flat, block.flat_arity())
        })
    })
}

/// An index of SPJ blocks by their base-relation multiset.
///
/// [`match_block_metered`] can only ever succeed when `Q` and `V` scan
/// the *same multiset* of base tables — its first two checks reject
/// everything else. The validator accumulates hundreds of valid blocks
/// (views, σ-restrictions, U2 compositions, U3 cores), so probing each
/// one linearly pays a sort + comparison per pair just to discover the
/// mismatch. This index buckets blocks by their sorted scan-table list;
/// a lookup returns only the blocks that could possibly align, and every
/// returned candidate goes straight to the alignment search.
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    by_tables: std::collections::HashMap<Vec<Ident>, Vec<usize>>,
    /// C3 buckets: a block with `k ≥ 2` scans is indexed under each
    /// distinct signature-minus-one-table, because
    /// [`super::c3::candidates_metered`] can only split a valid block
    /// whose scan multiset is the query's plus exactly one remainder
    /// table. A query's C3 candidates are then the bucket at the
    /// query's own signature.
    sub_tables: std::collections::HashMap<Vec<Ident>, Vec<usize>>,
}

impl CandidateIndex {
    /// The block's matching signature: its scan tables, sorted (a
    /// canonical multiset encoding).
    pub fn signature(block: &SpjBlock) -> Vec<Ident> {
        let mut tables: Vec<Ident> = block.scans.iter().map(|(t, _)| t.clone()).collect();
        tables.sort();
        tables
    }

    /// Records that the block with handle `idx` has `signature`.
    pub fn insert(&mut self, signature: Vec<Ident>, idx: usize) {
        if signature.len() >= 2 {
            for i in 0..signature.len() {
                // The signature is sorted, so equal adjacent tables
                // produce the same reduced signature — index it once.
                if i > 0 && signature[i] == signature[i - 1] {
                    continue;
                }
                let mut reduced = signature.clone();
                reduced.remove(i);
                self.sub_tables.entry(reduced).or_default().push(idx);
            }
        }
        self.by_tables.entry(signature).or_default().push(idx);
    }

    /// Handles of every indexed block with exactly this signature.
    pub fn bucket(&self, signature: &[Ident]) -> &[usize] {
        self.by_tables
            .get(signature)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Handles of the blocks that could possibly match `block` — i.e.
    /// whose scan-table multiset equals `block`'s.
    pub fn candidates(&self, block: &SpjBlock) -> &[usize] {
        self.bucket(&Self::signature(block))
    }

    /// Handles of the blocks that could possibly yield a C3 remainder
    /// split for query `block` — i.e. whose scan-table multiset equals
    /// `block`'s plus exactly one extra table. Everything this bucket
    /// omits is rejected by `candidates_metered`'s first length/alignment
    /// checks anyway, so routing C3 through it cannot change verdicts.
    pub fn c3_candidates(&self, block: &SpjBlock) -> &[usize] {
        self.sub_tables
            .get(&Self::signature(block))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Is `col` forced to a single value by the conjuncts?
fn pinned_by(conjuncts: &[ScalarExpr], col: usize, arity: usize) -> bool {
    use fgac_algebra::CmpOp;
    // col = const appears (possibly via implication).
    let _ = arity;
    conjuncts.iter().any(|c| {
        matches!(c, ScalarExpr::Cmp { op: CmpOp::Eq, left, right }
            if matches!(&**left, ScalarExpr::Col(i) if *i == col)
                && matches!(&**right, ScalarExpr::Lit(_) | ScalarExpr::AccessParam(_)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::{CmpOp, Plan};
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        c
    }

    fn students() -> Plan {
        Plan::scan(
            "students",
            catalog().table(&Ident::new("students")).unwrap().schema.clone(),
        )
    }

    fn grades() -> Plan {
        Plan::scan(
            "grades",
            catalog().table(&Ident::new("grades")).unwrap().schema.clone(),
        )
    }

    fn block(p: &Plan) -> SpjBlock {
        SpjBlock::decompose(&fgac_algebra::normalize(p)).unwrap()
    }

    #[test]
    fn example_5_3_shape_matches() {
        // V: select distinct name, type from students (U3a-derived).
        let v = block(
            &students()
                .project(vec![ScalarExpr::col(1), ScalarExpr::col(2)])
                .distinct(),
        );
        // Q: select distinct name from students where type = 'FullTime'.
        let q = block(
            &students()
                .select(vec![ScalarExpr::eq(
                    ScalarExpr::col(2),
                    ScalarExpr::lit("FullTime"),
                )])
                .project(vec![ScalarExpr::col(1)])
                .distinct(),
        );
        let w = match_block(&catalog(), &q, &v).expect("must match");
        assert!(w.distinct);
        assert_eq!(w.projection, vec![ScalarExpr::Col(0)]);
        assert_eq!(w.extra_conjuncts.len(), 1);
    }

    #[test]
    fn non_distinct_query_from_distinct_view_needs_key() {
        // V: select distinct student_id, course_id, grade from grades.
        let v = block(&grades().distinct());
        // Q: select * from grades where course_id='cs101' — dup-free via
        // the (student_id, course_id) primary key. Example 5.5.
        let q = block(&grades().select(vec![ScalarExpr::eq(
            ScalarExpr::col(1),
            ScalarExpr::lit("cs101"),
        )]));
        assert!(match_block(&catalog(), &q, &v).is_some());

        // But projecting away the key makes multiplicity unrecoverable.
        let q_lossy = block(
            &grades()
                .select(vec![ScalarExpr::eq(
                    ScalarExpr::col(1),
                    ScalarExpr::lit("cs101"),
                )])
                .project(vec![ScalarExpr::col(2)]),
        );
        assert!(match_block(&catalog(), &q_lossy, &v).is_none());
    }

    #[test]
    fn predicate_must_imply_view_predicate() {
        // V: grades with grade > 50.
        let v = block(&grades().select(vec![ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(2),
            ScalarExpr::lit(50),
        )]));
        // Q: grade > 80 — implies V's predicate. Match.
        let q = block(&grades().select(vec![ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(2),
            ScalarExpr::lit(80),
        )]));
        assert!(match_block(&catalog(), &q, &v).is_some());
        // Q: grade > 10 — does not imply. No match.
        let q = block(&grades().select(vec![ScalarExpr::cmp(
            CmpOp::Gt,
            ScalarExpr::col(2),
            ScalarExpr::lit(10),
        )]));
        assert!(match_block(&catalog(), &q, &v).is_none());
    }

    #[test]
    fn filtering_on_unprojected_column_fails() {
        // V projects only name.
        let v = block(&students().project(vec![ScalarExpr::col(1)]).distinct());
        // Q filters on type, which V dropped.
        let q = block(
            &students()
                .select(vec![ScalarExpr::eq(
                    ScalarExpr::col(2),
                    ScalarExpr::lit("FullTime"),
                )])
                .project(vec![ScalarExpr::col(1)])
                .distinct(),
        );
        assert!(match_block(&catalog(), &q, &v).is_none());
    }

    #[test]
    fn table_mismatch_fails_fast() {
        let v = block(&students());
        let q = block(&grades());
        assert!(match_block(&catalog(), &q, &v).is_none());
    }

    #[test]
    fn self_join_alignment_permutes() {
        // V: grades g1 × grades g2 with g1 filtered; Q: same but written
        // with the instances swapped.
        let v = block(&fgac_algebra::normalize(
            &grades()
                .select(vec![ScalarExpr::eq(
                    ScalarExpr::col(0),
                    ScalarExpr::lit("11"),
                )])
                .join(grades(), vec![]),
        ));
        let q = block(&fgac_algebra::normalize(
            &grades()
                .join(
                    grades().select(vec![ScalarExpr::eq(
                        ScalarExpr::col(0),
                        ScalarExpr::lit("11"),
                    )]),
                    vec![],
                )
                // Project in V's order: the filtered instance first.
                .project(
                    (3..6)
                        .chain(0..3)
                        .map(ScalarExpr::Col)
                        .collect::<Vec<_>>(),
                ),
        ));
        assert!(match_block(&catalog(), &q, &v).is_some());
    }

    #[test]
    fn duplicate_free_detection() {
        let cat = catalog();
        // Full grades row retains the PK.
        assert!(is_duplicate_free(&cat, &block(&grades())));
        // Projection without course_id loses the PK.
        let lossy = block(&grades().project(vec![ScalarExpr::col(0), ScalarExpr::col(2)]));
        assert!(!is_duplicate_free(&cat, &lossy));
        // Pinning course_id by predicate restores key coverage.
        let pinned = block(
            &grades()
                .select(vec![ScalarExpr::eq(
                    ScalarExpr::col(1),
                    ScalarExpr::lit("cs101"),
                )])
                .project(vec![ScalarExpr::col(0), ScalarExpr::col(2)]),
        );
        assert!(is_duplicate_free(&cat, &pinned));
    }

    #[test]
    fn c3_buckets_match_brute_force() {
        // Index blocks over {students}, {grades}, {students, grades},
        // {grades, grades}, {students, grades, grades} and check that
        // c3_candidates agrees with a brute-force scan for the
        // "one extra table" condition C3 needs.
        let blocks = vec![
            block(&students()),
            block(&grades()),
            block(&fgac_algebra::normalize(&students().join(grades(), vec![]))),
            block(&fgac_algebra::normalize(&grades().join(grades(), vec![]))),
            block(&fgac_algebra::normalize(
                &students().join(grades(), vec![]).join(grades(), vec![]),
            )),
        ];
        let mut index = CandidateIndex::default();
        for (i, b) in blocks.iter().enumerate() {
            index.insert(CandidateIndex::signature(b), i);
        }
        for q in &blocks {
            let qsig = CandidateIndex::signature(q);
            let brute: Vec<usize> = blocks
                .iter()
                .enumerate()
                .filter(|(_, v)| {
                    let vsig = CandidateIndex::signature(v);
                    vsig.len() == qsig.len() + 1
                        && (0..vsig.len()).any(|i| {
                            let mut reduced = vsig.clone();
                            reduced.remove(i);
                            reduced == qsig
                        })
                })
                .map(|(i, _)| i)
                .collect();
            let mut indexed: Vec<usize> = index.c3_candidates(q).to_vec();
            indexed.sort_unstable();
            indexed.dedup();
            assert_eq!(indexed, brute, "C3 bucket mismatch for {qsig:?}");
        }
    }
}
