//! Compiled authorization fast path: per-principal capability bitmasks.
//!
//! The Non-Truman validator is a theorem prover: on every cold check it
//! instantiates the principal's entire granted view set, builds the
//! AND-OR DAG, and walks inference rules U1/U2/U3/C3. That cost is
//! linear in the number of granted views — fine at 10 policies,
//! unacceptable at 50,000. Yet the *dominant* workload case needs none
//! of it: a query whose every scanned relation is covered by a granted,
//! unconditional (parameter-free, predicate-free, duplicate-preserving)
//! authorization view is U1/U2-valid by construction. This module
//! compiles that case into a decision structure the admission path can
//! consult with a mask AND and a hash lookup:
//!
//! * per epoch, every catalog relation gets a bit id;
//! * per principal, the granted view set is folded into
//!   [`PrincipalCaps`]: a bitmask over relation ids marking *full-width*
//!   unconditional coverage, plus per-relation column-coverage summaries
//!   for the single-relation case;
//! * admission ANDs the query's relation mask against the capability
//!   mask; residual cases (parameterized or predicated views,
//!   conditional C3, U3 dependency joins, access patterns) miss and fall
//!   through to the full prover unchanged.
//!
//! **Fail closed on any coverage doubt.** The fast path may only accept
//! when the full prover provably would: full-width coverage admits any
//! plan shape (each scan leaf is a granted view verbatim, and every
//! operator over valid subexpressions is valid — rule U2); column-subset
//! coverage admits only single-scan SPJ blocks, mirroring the matcher's
//! own availability/implication/multiplicity conditions one-for-one.
//! Anything else — a `$$` access parameter, a column outside the
//! summary, a DISTINCT view, a relation with no compiled entry — is a
//! miss, never a deny and never an accept.
//!
//! **Epoch/invalidation contract.** Compiled tables are immutable
//! snapshots ([`Arc<PrincipalCaps>`]) keyed by the policy epoch. Every
//! grant, revoke, role change, or DDL bumps the epoch inside the
//! writer's critical section and calls [`CompiledPolicies::invalidate`]
//! there, so under [`crate::SharedEngine`] no reader ever observes a
//! mask compiled against dead grants: readers hold the shared lock for
//! the whole statement, and the swap happens while no reader is in
//! flight. Lookups additionally re-key on the live epoch, so even a
//! missed explicit invalidation (e.g. a pure catalog extension) can only
//! cause a recompile, never a stale accept.
//!
//! Every fast-path accept still mints a checkable certificate (PR 5's
//! guarantee): one U1 step per covering view plus a U2 goal step — the
//! same shape the DAG-marking acceptance emits — which
//! [`fgac_analyze::check_certificate`] re-verifies from the catalog.

use crate::authview::AuthorizationView;
use crate::grants::Grants;
use fgac_algebra::{normalize, ParamScope, Plan, ScalarExpr, SpjBlock};
use fgac_storage::Catalog;
use fgac_types::Ident;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Column-coverage summaries track at most this many columns per
/// relation; wider relations fall back to the full prover for
/// column-precise questions.
const MAX_COLS: usize = 128;

/// Per-relation cap on incomparable column-coverage entries. Beyond it,
/// additional partial-coverage views are left to the prover — the cap
/// keeps a fast-path probe O(1) in the size of the granted view set.
const MAX_COVERAGE_ENTRIES: usize = 32;

// Process-wide observability counters, following the C3_PROBES pattern:
// monotone, relaxed, never a correctness input. The server's `METRICS`
// command reports all three next to the cache counters.
static FASTPATH_HITS: AtomicU64 = AtomicU64::new(0);
static FASTPATH_MISSES: AtomicU64 = AtomicU64::new(0);
static COMPILE_COUNT: AtomicU64 = AtomicU64::new(0);

/// Queries admitted by the compiled fast path (all engines).
pub fn fastpath_hit_count() -> u64 {
    FASTPATH_HITS.load(Ordering::Relaxed)
}

/// Fast-path probes that fell through to the full prover (all engines).
pub fn fastpath_miss_count() -> u64 {
    FASTPATH_MISSES.load(Ordering::Relaxed)
}

/// Per-principal compilations performed (all engines).
pub fn compile_count() -> u64 {
    COMPILE_COUNT.load(Ordering::Relaxed)
}

pub(crate) fn note_fastpath_hit() {
    FASTPATH_HITS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_fastpath_miss() {
    FASTPATH_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// One unconditional covering view of a single relation.
#[derive(Debug, Clone)]
struct RelCoverage {
    /// The granted authorization view this coverage comes from.
    view: Ident,
    /// The view's instantiated SPJ block — recorded verbatim in the
    /// certificate's U1 step so the checker can re-derive it.
    block: SpjBlock,
    /// Bit `i` set ⇔ schema column `i` is available through the view's
    /// projection as a plain column (columns ≥ [`MAX_COLS`] are never
    /// claimed).
    cols: u128,
    /// Every schema column is available: the view *is* the relation, up
    /// to projection order.
    full_width: bool,
}

/// A fast-path acceptance: the human-readable rule line and the covering
/// views (name + instantiated block) that justify it — exactly the U1
/// premises of the minted certificate.
#[derive(Debug, Clone)]
pub struct FastAccept {
    pub note: String,
    pub views: Vec<(Ident, SpjBlock)>,
}

/// A principal's compiled capabilities at one policy epoch — an
/// immutable snapshot; see the module docs for the invalidation
/// contract.
#[derive(Debug)]
pub struct PrincipalCaps {
    epoch: u64,
    /// Relation → bit id, shared by every principal compiled at this
    /// epoch.
    rel_ids: Arc<HashMap<Ident, u32>>,
    /// Capability bitmask: bit `r` set ⇔ relation id `r` has a
    /// full-width unconditional covering view.
    full_mask: Vec<u64>,
    /// Per-relation coverage entries (full-width first).
    coverage: HashMap<Ident, Vec<RelCoverage>>,
    /// Granted views that did not compile (parameterized, predicated,
    /// distinct, multi-relation, access-pattern, non-SPJ) — the prover
    /// handles them on fast-path misses.
    residual: usize,
}

impl PrincipalCaps {
    /// The policy epoch this snapshot was compiled against.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Relations with at least one compiled coverage entry.
    pub fn compiled_relations(&self) -> usize {
        self.coverage.len()
    }

    /// Granted views left to the full prover.
    pub fn residual_views(&self) -> usize {
        self.residual
    }

    /// Attempts to admit `plan` (normalized) on compiled coverage alone.
    ///
    /// `Some` means the query is U1/U2-unconditionally valid and the
    /// returned views certify it; `None` means *nothing* — the caller
    /// must fall through to the full prover (fail closed, never deny
    /// from here).
    pub fn admit(&self, plan: &Plan, qblock: Option<&SpjBlock>) -> Option<FastAccept> {
        if plan.has_access_params() {
            return None;
        }
        let tables = plan.scanned_tables();
        if tables.is_empty() {
            return None;
        }
        // Single-scan SPJ block: column-precise coverage suffices; this
        // mirrors the matcher (availability through the view projection,
        // trivial implication against a predicate-free view, and a
        // duplicate-preserving view satisfying either multiplicity
        // direction).
        if let Some(qb) = qblock {
            if qb.scans.len() == 1 {
                return self.admit_single(qb);
            }
        }
        // Any other shape (joins, aggregates, nested blocks): demand
        // full-width coverage of every scanned relation — then each scan
        // leaf is a granted view and every operator above is an
        // operation over valid subexpressions (rule U2).
        self.admit_full(&tables)
    }

    /// The mask-AND path: every scanned relation must carry full-width
    /// coverage.
    fn admit_full(&self, tables: &[Ident]) -> Option<FastAccept> {
        let mut qmask = vec![0u64; self.full_mask.len()];
        for t in tables {
            let id = *self.rel_ids.get(t)? as usize;
            let word = id / 64;
            if word >= qmask.len() {
                return None;
            }
            qmask[word] |= 1u64 << (id % 64);
        }
        if qmask
            .iter()
            .zip(self.full_mask.iter())
            .any(|(q, m)| q & m != *q)
        {
            return None;
        }
        // Mask says yes; fetch the witnesses (hash lookups) for the
        // certificate. A mask/coverage mismatch is impossible by
        // construction, but stays a miss rather than a panic.
        let mut seen: std::collections::BTreeSet<&Ident> = Default::default();
        let mut views = Vec::new();
        for t in tables {
            if !seen.insert(t) {
                continue;
            }
            let cov = self.coverage.get(t)?.iter().find(|c| c.full_width)?;
            views.push((cov.view.clone(), cov.block.clone()));
        }
        let names: Vec<String> = views.iter().map(|(v, _)| v.to_string()).collect();
        Some(FastAccept {
            note: format!(
                "FP1: compiled capability mask covers every scanned relation \
                 full-width via {} (unconditional)",
                names.join(", ")
            ),
            views,
        })
    }

    /// The column-coverage path for a single-scan SPJ block.
    fn admit_single(&self, qb: &SpjBlock) -> Option<FastAccept> {
        let (table, _) = qb.scans.first()?;
        let mut used: u128 = 0;
        let mut wide = false;
        for e in qb.conjuncts.iter().chain(qb.projection.iter()) {
            for c in e.referenced_cols() {
                if c >= MAX_COLS {
                    wide = true;
                } else {
                    used |= 1u128 << c;
                }
            }
        }
        let cov = self
            .coverage
            .get(table)?
            .iter()
            .find(|c| c.full_width || (!wide && (c.cols & used) == used))?;
        Some(FastAccept {
            note: format!(
                "FP2: compiled column coverage of {table} via {} (unconditional)",
                cov.view
            ),
            views: vec![(cov.view.clone(), cov.block.clone())],
        })
    }
}

/// The engine's compiled-policy tables: one immutable
/// [`PrincipalCaps`] snapshot per principal, lazily compiled per policy
/// epoch and swapped out wholesale on the writer's epoch bump.
#[derive(Debug, Default)]
pub struct CompiledPolicies {
    inner: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    /// `None` until first use and after [`CompiledPolicies::invalidate`].
    epoch: Option<u64>,
    rel_ids: Arc<HashMap<Ident, u32>>,
    principals: HashMap<String, Arc<PrincipalCaps>>,
}

impl CompiledPolicies {
    pub fn new() -> Self {
        Self::default()
    }

    /// The principal's compiled snapshot for `epoch`, compiling it on
    /// first use. Compilation runs outside the table lock — it is
    /// O(granted views) — so concurrent readers compiling *different*
    /// principals do not serialize behind each other.
    pub fn principal(
        &self,
        epoch: u64,
        user: &str,
        catalog: &Catalog,
        grants: &Grants,
    ) -> Arc<PrincipalCaps> {
        let rel_ids = {
            let mut st = self.inner.lock();
            if st.epoch != Some(epoch) {
                st.epoch = Some(epoch);
                st.principals.clear();
                st.rel_ids = Arc::new(relation_ids(catalog));
            }
            if let Some(caps) = st.principals.get(user) {
                return Arc::clone(caps);
            }
            Arc::clone(&st.rel_ids)
        };
        COMPILE_COUNT.fetch_add(1, Ordering::Relaxed);
        let caps = Arc::new(compile_principal(epoch, user, catalog, grants, rel_ids));
        let mut st = self.inner.lock();
        if st.epoch == Some(epoch) {
            // First compile wins on a benign race; both snapshots are
            // identical (compilation is a pure function of epoch state).
            return Arc::clone(
                st.principals
                    .entry(user.to_string())
                    .or_insert(caps),
            );
        }
        // The epoch moved while we compiled (not possible under the
        // engine's locking, but cheap to tolerate): hand the snapshot to
        // this caller only, without publishing it.
        caps
    }

    /// Drops every compiled snapshot. Called by the writer inside its
    /// critical section on every policy/schema change, so the epoch bump
    /// and the table swap are one atomic event from any reader's view.
    pub fn invalidate(&self) {
        let mut st = self.inner.lock();
        st.epoch = None;
        st.principals.clear();
        st.rel_ids = Arc::new(HashMap::new());
    }

    /// The dependency-tracked policy-change sweep, run inside the
    /// writer's critical section right after the epoch bump
    /// `from_epoch → to_epoch`: drops only the snapshots of principals
    /// the change affects and re-keys the table to the new epoch, so
    /// unaffected principals keep their compiled caps across churn.
    ///
    /// Soundness: a snapshot is a pure function of the catalog and one
    /// principal's effective grants. For an unaffected principal
    /// neither input changed, so the retained snapshot equals what a
    /// recompile at `to_epoch` would produce. A pure catalog extension
    /// (CREATE TABLE) passes the new catalog so *future* compiles see
    /// the new relation ids; retained snapshots keep their own embedded
    /// `rel_ids` and simply miss (→ full prover) on the new table —
    /// never a stale accept. Returns the number of snapshots dropped.
    ///
    /// If the table's epoch does not match `from_epoch` (possible only
    /// if an invalidation was missed), everything is dropped — fail
    /// closed, exactly like [`CompiledPolicies::invalidate`].
    pub fn apply_policy_change<F>(
        &self,
        from_epoch: u64,
        to_epoch: u64,
        affects: F,
        new_catalog: Option<&Catalog>,
    ) -> usize
    where
        F: Fn(&str) -> bool,
    {
        let mut st = self.inner.lock();
        match st.epoch {
            // Nothing compiled yet: leave the table unkeyed — the first
            // `principal()` call builds relation ids from the live
            // catalog and keys the table in one step.
            None => 0,
            Some(e) if e == from_epoch => {
                st.epoch = Some(to_epoch);
                let before = st.principals.len();
                st.principals.retain(|user, _| !affects(user));
                if let Some(cat) = new_catalog {
                    st.rel_ids = Arc::new(relation_ids(cat));
                }
                before - st.principals.len()
            }
            Some(_) => {
                let dropped = st.principals.len();
                st.epoch = None;
                st.principals.clear();
                st.rel_ids = Arc::new(HashMap::new());
                dropped
            }
        }
    }

    /// Number of principals with a live compiled snapshot (gauge).
    pub fn compiled_principals(&self) -> u64 {
        self.inner.lock().principals.len() as u64
    }
}

/// Stable relation → bit-id assignment for one epoch (catalog iteration
/// order is deterministic).
fn relation_ids(catalog: &Catalog) -> HashMap<Ident, u32> {
    let mut ids = HashMap::new();
    for (i, t) in catalog.tables().enumerate() {
        ids.insert(t.name.clone(), i as u32);
    }
    ids
}

/// Folds the principal's granted view set into a capability snapshot.
fn compile_principal(
    epoch: u64,
    user: &str,
    catalog: &Catalog,
    grants: &Grants,
    rel_ids: Arc<HashMap<Ident, u32>>,
) -> PrincipalCaps {
    let mut coverage: HashMap<Ident, Vec<RelCoverage>> = HashMap::new();
    let mut residual = 0usize;
    for name in grants.views_for(user) {
        let Some(def) = catalog.view(&name) else {
            continue;
        };
        if !def.authorization {
            continue;
        }
        let view = AuthorizationView::new(def.name.clone(), def.query.clone());
        // Parameterized and access-pattern views are session- or
        // state-dependent: residual by definition.
        if view.is_access_pattern() || !view.session_params().is_empty() {
            residual += 1;
            continue;
        }
        // Instantiation with an empty scope proves session independence;
        // a view needing any parameter errors out here and stays
        // residual.
        let Ok(bound) = view.instantiate(catalog, &ParamScope::new()) else {
            residual += 1;
            continue;
        };
        let plan = normalize(&bound.plan);
        let Some(block) = SpjBlock::decompose(&plan) else {
            residual += 1;
            continue;
        };
        match compile_view_block(&name, block) {
            Some((table, cov)) => {
                let entries = coverage.entry(table).or_default();
                if dominated(entries, &cov) || entries.len() >= MAX_COVERAGE_ENTRIES {
                    // Nothing new to claim, or the per-relation cap is
                    // reached: the prover still sees the view.
                    continue;
                }
                if cov.full_width {
                    // Full width subsumes everything: keep it in front.
                    entries.retain(|e| e.full_width);
                    if entries.is_empty() {
                        entries.push(cov);
                    }
                } else {
                    entries.push(cov);
                }
            }
            None => residual += 1,
        }
    }
    let mut full_mask = vec![0u64; rel_ids.len().div_ceil(64)];
    for (table, entries) in &coverage {
        if entries.iter().any(|e| e.full_width) {
            if let Some(&id) = rel_ids.get(table) {
                let id = id as usize;
                full_mask[id / 64] |= 1u64 << (id % 64);
            }
        }
    }
    PrincipalCaps {
        epoch,
        rel_ids,
        full_mask,
        coverage,
        residual,
    }
}

/// Is `cov`'s claim already implied by an existing entry?
fn dominated(entries: &[RelCoverage], cov: &RelCoverage) -> bool {
    entries.iter().any(|e| {
        e.full_width || (!cov.full_width && (e.cols | cov.cols) == e.cols)
    })
}

/// Classifies one instantiated view block: `Some` iff it is an
/// unconditional single-relation coverage (no predicate, no DISTINCT —
/// i.e. duplicate-preserving `π_cols(T)`).
fn compile_view_block(name: &Ident, block: SpjBlock) -> Option<(Ident, RelCoverage)> {
    if block.distinct || !block.conjuncts.is_empty() || block.scans.len() != 1 {
        return None;
    }
    let (table, schema) = block.scans.first()?.clone();
    let mut cols: u128 = 0;
    for e in &block.projection {
        if let ScalarExpr::Col(i) = e {
            if *i < MAX_COLS {
                cols |= 1u128 << i;
            }
        }
    }
    if cols == 0 {
        return None;
    }
    let full_width =
        schema.len() <= MAX_COLS && (0..schema.len()).all(|i| cols & (1u128 << i) != 0);
    Some((
        table,
        RelCoverage {
            view: name.clone(),
            block,
            cols,
            full_width,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        c.add_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        c
    }

    fn add_view(c: &mut Catalog, sql: &str) {
        let fgac_sql::Statement::CreateView(v) = fgac_sql::parse_statement(sql).unwrap() else {
            panic!("not a view");
        };
        c.add_view(fgac_storage::ViewDef {
            name: v.name,
            authorization: v.authorization,
            query: v.query,
        })
        .unwrap();
    }

    fn caps(catalog: &Catalog, grants: &Grants) -> PrincipalCaps {
        compile_principal(
            7,
            "u",
            catalog,
            grants,
            Arc::new(relation_ids(catalog)),
        )
    }

    fn bound_plan(catalog: &Catalog, sql: &str) -> Plan {
        let q = fgac_sql::parse_query(sql).unwrap();
        let b = fgac_algebra::bind_query(catalog, &q, &ParamScope::with_user("u")).unwrap();
        normalize(&b.plan)
    }

    fn admit(caps: &PrincipalCaps, catalog: &Catalog, sql: &str) -> Option<FastAccept> {
        let plan = bound_plan(catalog, sql);
        let qb = SpjBlock::decompose(&plan);
        caps.admit(&plan, qb.as_ref())
    }

    #[test]
    fn full_width_view_covers_any_shape() {
        let mut c = catalog();
        add_view(&mut c, "create authorization view g as select * from grades");
        let mut g = Grants::new();
        g.grant_view("u", "g");
        let caps = caps(&c, &g);
        assert_eq!(caps.compiled_relations(), 1);
        assert!(admit(&caps, &c, "select grade from grades where course_id = 'cs101'").is_some());
        // Aggregates are non-SPJ but full-width coverage admits them.
        assert!(admit(&caps, &c, "select course_id, avg(grade) from grades group by course_id")
            .is_some());
        // A relation with no coverage misses.
        assert!(admit(&caps, &c, "select name from students").is_none());
        // A join touching the uncovered relation misses too.
        assert!(admit(
            &caps,
            &c,
            "select grades.grade from grades, students \
             where grades.student_id = students.student_id"
        )
        .is_none());
    }

    #[test]
    fn column_subset_covers_single_scan_only() {
        let mut c = catalog();
        add_view(
            &mut c,
            "create authorization view sg as select student_id, grade from grades",
        );
        let mut g = Grants::new();
        g.grant_view("u", "sg");
        let caps = caps(&c, &g);
        // Uses only covered columns: hit.
        assert!(admit(&caps, &c, "select grade from grades where student_id = '11'").is_some());
        // Filters on course_id, which the view drops: miss.
        assert!(admit(&caps, &c, "select grade from grades where course_id = 'cs101'").is_none());
        // Self-join needs full width: miss.
        assert!(admit(
            &caps,
            &c,
            "select a.grade from grades a, grades b where a.student_id = b.student_id"
        )
        .is_none());
    }

    #[test]
    fn residual_views_never_compile() {
        let mut c = catalog();
        add_view(
            &mut c,
            "create authorization view my as select * from grades where student_id = $user_id",
        );
        add_view(
            &mut c,
            "create authorization view hi as select * from grades where grade > 50",
        );
        add_view(
            &mut c,
            "create authorization view one as select * from grades where student_id = $$1",
        );
        add_view(
            &mut c,
            "create authorization view dn as select distinct name from students",
        );
        let mut g = Grants::new();
        for v in ["my", "hi", "one", "dn"] {
            g.grant_view("u", v);
        }
        let caps = caps(&c, &g);
        assert_eq!(caps.compiled_relations(), 0);
        assert_eq!(caps.residual_views(), 4);
        assert!(admit(&caps, &c, "select grade from grades where student_id = 'u'").is_none());
    }

    #[test]
    fn sweep_retains_unaffected_principals() {
        let mut c = catalog();
        add_view(&mut c, "create authorization view g as select * from grades");
        add_view(&mut c, "create authorization view s as select * from students");
        let mut g = Grants::new();
        g.grant_view("u", "g");
        g.grant_view("w", "s");
        let tables = CompiledPolicies::new();
        let u1 = tables.principal(1, "u", &c, &g);
        let _w1 = tables.principal(1, "w", &c, &g);
        assert_eq!(tables.compiled_principals(), 2);
        // A change affecting only "w" keeps "u"'s snapshot byte-for-byte.
        g.revoke_view("w", &Ident::new("s"));
        let dropped = tables.apply_policy_change(1, 2, |user| user == "w", None);
        assert_eq!(dropped, 1);
        assert_eq!(tables.compiled_principals(), 1);
        let u2 = tables.principal(2, "u", &c, &g);
        assert!(Arc::ptr_eq(&u1, &u2), "unaffected snapshot must survive");
        // "w" recompiles against the post-revoke grants.
        let w2 = tables.principal(2, "w", &c, &g);
        assert_eq!(w2.compiled_relations(), 0);
    }

    #[test]
    fn sweep_with_unexpected_epoch_fails_closed() {
        let mut c = catalog();
        add_view(&mut c, "create authorization view g as select * from grades");
        let mut g = Grants::new();
        g.grant_view("u", "g");
        let tables = CompiledPolicies::new();
        let _ = tables.principal(3, "u", &c, &g);
        // from_epoch disagrees with the table's key: drop everything.
        let dropped = tables.apply_policy_change(9, 10, |_| false, None);
        assert_eq!(dropped, 1);
        assert_eq!(tables.compiled_principals(), 0);
    }

    #[test]
    fn new_table_sweep_rebuilds_relation_ids_for_future_compiles() {
        let mut c = catalog();
        add_view(&mut c, "create authorization view g as select * from grades");
        let mut g = Grants::new();
        g.grant_view("u", "g");
        let tables = CompiledPolicies::new();
        let before = tables.principal(1, "u", &c, &g);
        // Pure catalog extension: "u" is unaffected and keeps its caps.
        c.add_table(
            "audit",
            Schema::new(vec![Column::new("id", DataType::Str)]),
            None,
        )
        .unwrap();
        tables.apply_policy_change(1, 2, |_| false, Some(&c));
        let after = tables.principal(2, "u", &c, &g);
        assert!(Arc::ptr_eq(&before, &after));
        // A fresh principal compiled after the sweep sees the new
        // relation in its id space (full-width view over grades still
        // admits; the new table simply has no coverage).
        g.grant_view("v2", "g");
        let fresh = tables.principal(2, "v2", &c, &g);
        assert!(admit(&fresh, &c, "select grade from grades where course_id = 'x'").is_some());
        assert!(admit(&fresh, &c, "select id from audit").is_none());
    }

    #[test]
    fn epoch_change_swaps_snapshots() {
        let mut c = catalog();
        add_view(&mut c, "create authorization view g as select * from grades");
        let mut g = Grants::new();
        g.grant_view("u", "g");
        let tables = CompiledPolicies::new();
        let a = tables.principal(1, "u", &c, &g);
        assert_eq!(a.epoch(), 1);
        assert_eq!(tables.compiled_principals(), 1);
        // Same epoch: same snapshot.
        let b = tables.principal(1, "u", &c, &g);
        assert!(Arc::ptr_eq(&a, &b));
        // Writer-side invalidation drops everything.
        tables.invalidate();
        assert_eq!(tables.compiled_principals(), 0);
        // New epoch recompiles against the (changed) grants.
        g.revoke_view("u", &Ident::new("g"));
        let c2 = tables.principal(2, "u", &c, &g);
        assert_eq!(c2.epoch(), 2);
        assert_eq!(c2.compiled_relations(), 0);
    }
}
