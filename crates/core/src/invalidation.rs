//! Dependency-tracked policy-change invalidation.
//!
//! Before this module, every grant, revoke, role change, or DDL bumped
//! the global `policy_epoch` and cold-started all three admission
//! caches at once — the plan cache, the sharded validity cache, and the
//! compiled capability snapshots. Under server traffic with frequent
//! policy churn that is a recurring p99 cliff: one revocation for one
//! principal re-proves every other principal's working set from
//! scratch.
//!
//! A [`PolicyDelta`] describes *what actually changed*, and
//! [`PolicyDelta::affects`] answers the only question the caches need:
//! "could this change alter the effective grant set of user `u`?" The
//! engine applies a change by bumping the epoch as before (the epoch
//! remains the global version stamp certificates are minted under) and
//! then sweeping each cache with the delta:
//!
//! * validity-cache entries of **unaffected** principals are restamped
//!   to the new epoch — still fresh, no recheck;
//! * affected ACCEPT entries that carry a validity certificate are left
//!   at their mint epoch — *stale*, eligible for cheap warm
//!   revalidation ([`fgac_analyze::revalidate_certificate`]) on next
//!   lookup;
//! * affected entries without a certificate (and cached denials, which
//!   a grant may legitimately flip) are dropped;
//! * plan-cache entries are keyed by the relation/view names they were
//!   bound against and are invalidated only by DDL that introduces a
//!   colliding name — grants never change binding;
//! * compiled [`crate::PrincipalCaps`] snapshots of unaffected
//!   principals survive (compilation is a pure function of the catalog
//!   and that principal's grants, neither of which changed for them).
//!
//! **Safety.** Every sweep runs inside the writer's critical section
//! (`&mut Engine` / the [`crate::SharedEngine`] write lock), so a
//! reader observes either the pre-change caches with the pre-change
//! grants or the post-change caches with the post-change grants, never
//! a mix. Restamping only ever applies to entries stamped with the
//! *pre-change* epoch: an entry already left stale by an earlier
//! affecting change keeps its old stamp and still must pass
//! revalidation before it serves again. Anything doubtful — a missing
//! certificate, a failed or budget-exhausted revalidation — falls
//! closed to a full cold check.

use crate::grants::Grants;
use fgac_sql::Query;
use fgac_storage::Catalog;
use fgac_types::Ident;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

// Process-wide churn observability, following the compiled fast path's
// counter pattern: monotone, relaxed, never a correctness input.
static POLICY_CHANGES: AtomicU64 = AtomicU64::new(0);
static FULL_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);

/// Policy/schema changes applied through dependency-tracked
/// invalidation (all engines).
pub fn policy_change_count() -> u64 {
    POLICY_CHANGES.load(Ordering::Relaxed)
}

/// Changes that fell back to a full cold-start sweep (recovery, or an
/// explicit [`PolicyDelta::Full`]) — all engines.
pub fn full_invalidation_count() -> u64 {
    FULL_INVALIDATIONS.load(Ordering::Relaxed)
}

pub(crate) fn note_policy_change() {
    POLICY_CHANGES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn note_full_invalidation() {
    FULL_INVALIDATIONS.fetch_add(1, Ordering::Relaxed);
}

/// One policy or schema change, in just enough detail to decide which
/// cached admission state it can possibly touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyDelta {
    /// An authorization view was granted to a principal (directly or by
    /// delegation).
    GrantView { principal: String, view: Ident },
    /// An authorization view was revoked from a principal.
    RevokeView { principal: String, view: Ident },
    /// An integrity constraint was made visible to a principal.
    GrantConstraint { principal: String, name: Ident },
    /// A user was added to a role: only that user's effective set moves.
    AddRole { user: String },
    /// `CREATE [AUTHORIZATION] VIEW`: a new name exists, but until it is
    /// granted it is in nobody's effective set.
    NewView { view: Ident },
    /// `CREATE TABLE`: a pure catalog extension. Existing verdicts
    /// quantify over the relations they mention and stay sound.
    NewTable { table: Ident },
    /// A new inclusion dependency: invisible until granted.
    NewConstraint { name: Ident },
    /// Shape unknown — invalidate everything (recovery uses this).
    Full,
}

impl PolicyDelta {
    /// Could this change alter `user`'s *effective* grant set (direct
    /// grants plus role-inherited ones)? `true` means the user's cached
    /// verdicts may no longer match a cold check and must be dropped or
    /// revalidated; `false` means they provably still would.
    pub fn affects(&self, grants: &Grants, user: &str) -> bool {
        match self {
            PolicyDelta::GrantView { principal, .. }
            | PolicyDelta::RevokeView { principal, .. }
            | PolicyDelta::GrantConstraint { principal, .. } => {
                user == principal
                    || grants
                        .role_memberships()
                        .get(user)
                        .is_some_and(|roles| roles.contains(principal))
            }
            PolicyDelta::AddRole { user: u } => user == u,
            // A freshly created view/table/constraint is granted to no
            // one: no effective set moves until a later grant (which
            // arrives as its own delta).
            PolicyDelta::NewView { .. }
            | PolicyDelta::NewTable { .. }
            | PolicyDelta::NewConstraint { .. } => false,
            PolicyDelta::Full => true,
        }
    }

    /// The catalog name this change introduces, if any — the only kind
    /// of change that can alter how an existing SQL text *binds* (name
    /// resolution / view expansion), and therefore the only kind that
    /// touches the plan cache.
    pub fn introduced_name(&self) -> Option<&Ident> {
        match self {
            PolicyDelta::NewView { view } => Some(view),
            PolicyDelta::NewTable { table } => Some(table),
            _ => None,
        }
    }
}

/// The catalog names a query's binding depends on: every name in a FROM
/// clause (tables *and* views, joins included), recursing through view
/// definitions — a cached plan embeds expanded view bodies, so it reads
/// every view on the expansion path and every base table underneath.
pub fn query_dependencies(catalog: &Catalog, query: &Query) -> BTreeSet<Ident> {
    let mut deps = BTreeSet::new();
    collect_query(catalog, query, &mut deps, 0);
    deps
}

/// View definitions can nest; the binder enforces its own expansion
/// limits, so a runaway here would indicate a cycle the binder already
/// rejected. Depth-capped defensively all the same.
const MAX_VIEW_DEPTH: usize = 32;

fn collect_query(catalog: &Catalog, query: &Query, deps: &mut BTreeSet<Ident>, depth: usize) {
    for tref in &query.from {
        collect_name(catalog, &tref.name, deps, depth);
        for join in &tref.joins {
            collect_name(catalog, &join.table, deps, depth);
        }
    }
}

fn collect_name(catalog: &Catalog, name: &Ident, deps: &mut BTreeSet<Ident>, depth: usize) {
    if !deps.insert(name.clone()) || depth >= MAX_VIEW_DEPTH {
        return;
    }
    if let Some(def) = catalog.view(name) {
        collect_query(catalog, &def.query, deps, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grants() -> Grants {
        let mut g = Grants::new();
        g.grant_view("alice", "v1");
        g.grant_view("student", "v2");
        g.add_role("bob", "student");
        g
    }

    #[test]
    fn grant_and_revoke_affect_principal_and_role_members() {
        let g = grants();
        let d = PolicyDelta::RevokeView {
            principal: "alice".into(),
            view: Ident::new("v1"),
        };
        assert!(d.affects(&g, "alice"));
        assert!(!d.affects(&g, "bob"));
        let role = PolicyDelta::GrantView {
            principal: "student".into(),
            view: Ident::new("v3"),
        };
        // Bob inherits through the role; Alice does not hold it.
        assert!(role.affects(&g, "bob"));
        assert!(!role.affects(&g, "alice"));
        // The role principal itself is affected too.
        assert!(role.affects(&g, "student"));
    }

    #[test]
    fn add_role_affects_only_that_user() {
        let g = grants();
        let d = PolicyDelta::AddRole { user: "carol".into() };
        assert!(d.affects(&g, "carol"));
        assert!(!d.affects(&g, "alice"));
        assert!(!d.affects(&g, "bob"));
    }

    #[test]
    fn pure_schema_changes_affect_nobody() {
        let g = grants();
        for d in [
            PolicyDelta::NewTable { table: Ident::new("t") },
            PolicyDelta::NewView { view: Ident::new("v") },
            PolicyDelta::NewConstraint { name: Ident::new("c") },
        ] {
            assert!(!d.affects(&g, "alice"));
            assert!(!d.affects(&g, "bob"));
        }
        assert!(PolicyDelta::Full.affects(&g, "anyone"));
    }

    #[test]
    fn introduced_names_cover_binding_changes_only() {
        assert_eq!(
            PolicyDelta::NewTable { table: Ident::new("t") }
                .introduced_name()
                .map(|i| i.as_str()),
            Some("t")
        );
        assert_eq!(
            PolicyDelta::NewView { view: Ident::new("v") }
                .introduced_name()
                .map(|i| i.as_str()),
            Some("v")
        );
        assert!(PolicyDelta::GrantView {
            principal: "u".into(),
            view: Ident::new("v"),
        }
        .introduced_name()
        .is_none());
        assert!(PolicyDelta::Full.introduced_name().is_none());
    }

    #[test]
    fn query_dependencies_recurse_through_views() {
        let mut c = Catalog::new();
        c.add_table(
            "base",
            fgac_types::Schema::new(vec![fgac_types::Column::new(
                "a",
                fgac_types::DataType::Int,
            )]),
            None,
        )
        .unwrap();
        let fgac_sql::Statement::CreateView(v) =
            fgac_sql::parse_statement("create view outer_v as select a from base").unwrap()
        else {
            panic!("not a view");
        };
        c.add_view(fgac_storage::ViewDef {
            name: v.name,
            authorization: v.authorization,
            query: v.query,
        })
        .unwrap();
        let q = fgac_sql::parse_query("select a from outer_v").unwrap();
        let deps = query_dependencies(&c, &q);
        assert!(deps.contains(&Ident::new("outer_v")));
        assert!(deps.contains(&Ident::new("base")));
    }
}
