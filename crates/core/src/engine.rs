//! The engine façade: the object a downstream application talks to.
//!
//! Wires together the database, grants, the Non-Truman validator (with
//! caching), per-tuple update authorization, and the Truman baseline.
//! DDL and grant management run through `admin_*` methods (the DBA
//! path); `execute` is the user path and enforces access control.
//!
//! ## The hot path
//!
//! A repeated query under warm caches costs: one plan-cache lookup
//! (skips parse + bind + normalize + fingerprint), one validity-cache
//! lookup (skips the whole inference pipeline), and one executor run
//! over borrowed scans (clones only the surviving rows). See
//! DESIGN.md "Hot path & caching layers".

use crate::cache::{CacheOutcome, ValidityCache};
use crate::durability::Durability;
use crate::grants::Grants;
use crate::invalidation::PolicyDelta;
use crate::nontruman::{CheckOptions, Validator, Verdict, ValidityReport};
use crate::plancache::{CachedPlan, PlanCache};
use crate::session::Session;
use crate::truman::TrumanPolicy;
use crate::updates::UpdateAuthorizer;
use fgac_analyze::Diagnostic;
use fgac_exec::QueryResult;
use fgac_sql::{GrantKind, Statement};
use fgac_storage::{Database, ForeignKey, InclusionDependency, ViewDef};
use fgac_types::{Error, Ident, Result, Row, Schema, Value};
use fgac_wal::WalRecord;
use std::sync::Arc;
use std::time::Instant;

/// Response from [`Engine::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum EngineResponse {
    /// A validated query's result (the query ran **unmodified**).
    Rows(QueryResult),
    /// DML outcome: number of affected tuples.
    Affected(usize),
}

impl EngineResponse {
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            EngineResponse::Rows(r) => Some(r),
            _ => None,
        }
    }

    pub fn affected(&self) -> Option<usize> {
        match self {
            EngineResponse::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// The fine-grained access control engine.
pub struct Engine {
    pub(crate) db: Database,
    pub(crate) grants: Grants,
    pub(crate) cache: ValidityCache,
    pub(crate) plan_cache: PlanCache,
    /// Per-principal compiled capability snapshots (the authorization
    /// fast path). Keyed by `policy_epoch`: invalidated explicitly on
    /// every policy/schema change and re-keyed lazily on lookup, so a
    /// revoke can never leave a stale mask serving accepts.
    compiled: crate::compiled::CompiledPolicies,
    /// Epoch-stamped per-principal flow findings + shared view-summary
    /// memo for incremental `ANALYZE FLOW` (see [`crate::flowcache`]).
    flow: crate::flowcache::FlowAnalysisCache,
    options: CheckOptions,
    /// Bumped on every successful DML — versions conditional verdicts.
    pub(crate) data_version: u64,
    /// Bumped on every catalog or authorization change — versions cached
    /// plans (binding depends on the catalog; validity depends on both).
    pub(crate) policy_epoch: u64,
    /// `Some` when the engine writes a WAL (see [`Engine::open`]).
    pub(crate) durability: Option<Durability>,
    /// Set by [`Engine::close`]. A closed engine returns a clean
    /// [`Error::Unsupported`] from every entry point instead of serving
    /// (or re-syncing) — double-close and use-after-close are defined,
    /// non-panicking states.
    pub(crate) closed: bool,
}

impl Engine {
    pub fn new() -> Self {
        Engine {
            db: Database::new(),
            grants: Grants::new(),
            cache: ValidityCache::new(),
            plan_cache: PlanCache::new(),
            compiled: crate::compiled::CompiledPolicies::new(),
            flow: crate::flowcache::FlowAnalysisCache::new(),
            options: CheckOptions::default(),
            data_version: 0,
            policy_epoch: 0,
            durability: None,
            closed: false,
        }
    }

    /// Clean-error guard on every entry point of a closed engine.
    pub(crate) fn ensure_open(&self) -> Result<()> {
        if self.closed {
            return Err(Error::Unsupported(
                "engine is closed: no further statements are accepted".into(),
            ));
        }
        Ok(())
    }

    /// True once [`Engine::close`] has run.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// Replaces the checker options (e.g. `CheckOptions::basic_only()`).
    pub fn with_check_options(mut self, options: CheckOptions) -> Self {
        self.options = options;
        self
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn grants(&self) -> &Grants {
        &self.grants
    }

    pub fn cache(&self) -> &ValidityCache {
        &self.cache
    }

    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    pub fn policy_epoch(&self) -> u64 {
        self.policy_epoch
    }

    /// Applies one policy/schema change to the admission caches:
    /// dependency-tracked invalidation instead of the old global
    /// cold-start. The epoch still bumps on every change (it remains
    /// the version stamp certificates are minted under), but each cache
    /// is swept with the delta:
    ///
    /// * validity cache — entries of unaffected principals are
    ///   restamped to the new epoch; affected certificate-carrying
    ///   accepts stay behind as *stale* (warm-revalidated on next
    ///   lookup, see [`Engine::check_admitted_at`]); affected denials
    ///   and certificate-less entries are dropped;
    /// * plan cache — only DDL introducing a catalog name can change
    ///   binding, so only entries depending on that name are dropped
    ///   (grants/roles touch nothing);
    /// * compiled caps — affected principals' snapshots are dropped,
    ///   the rest survive; a CREATE TABLE also rebuilds the relation-id
    ///   space for future compiles.
    ///
    /// Runs inside the writer's critical section (`&mut self`), so
    /// under [`crate::SharedEngine`] no reader observes the new grants
    /// with the old caches or vice versa.
    pub(crate) fn apply_change(&mut self, delta: PolicyDelta) {
        let from = self.policy_epoch;
        self.policy_epoch += 1;
        let to = self.policy_epoch;
        crate::invalidation::note_policy_change();
        if matches!(delta, PolicyDelta::Full) {
            crate::invalidation::note_full_invalidation();
            self.cache.clear();
            self.plan_cache.clear();
            self.compiled.invalidate();
            self.flow.clear();
            return;
        }
        let grants = &self.grants;
        let affects = |user: &str| delta.affects(grants, user);
        self.cache.apply_policy_change(from, to, affects);
        if let Some(name) = delta.introduced_name() {
            self.plan_cache.invalidate_deps(std::slice::from_ref(name));
        }
        self.flow
            .apply_policy_change(from, to, affects, delta.introduced_name().is_some());
        let new_catalog = match delta {
            PolicyDelta::NewTable { .. } => Some(self.db.catalog()),
            _ => None,
        };
        self.compiled.apply_policy_change(from, to, affects, new_catalog);
    }

    /// The compiled-policy store (fast-path capability snapshots).
    pub fn compiled_policies(&self) -> &crate::compiled::CompiledPolicies {
        &self.compiled
    }

    // ---------------- DBA path ----------------

    /// Runs a DDL/DML script with no access checks (the DBA loads
    /// schema, constraints, views, and seed data this way).
    pub fn admin_script(&mut self, sql: &str) -> Result<()> {
        self.ensure_open()?;
        for stmt in fgac_sql::parse_statements(sql)? {
            self.admin_statement(&stmt)?;
        }
        Ok(())
    }

    /// Executes one admin statement.
    pub fn admin_statement(&mut self, stmt: &Statement) -> Result<()> {
        self.ensure_open()?;
        match stmt {
            Statement::CreateTable(_)
            | Statement::CreateView(_)
            | Statement::CreateInclusionDependency(_) => self.apply_ddl_logged(stmt),
            Statement::Insert(i) => self.admin_dml(&i.table, |db| {
                fgac_exec::execute_insert(db, i, &fgac_algebra::ParamScope::new()).map(|_| ())
            }),
            Statement::Update(u) => self.admin_dml(&u.table, |db| {
                fgac_exec::execute_update(db, u, &fgac_algebra::ParamScope::new()).map(|_| ())
            }),
            Statement::Delete(d) => self.admin_dml(&d.table, |db| {
                fgac_exec::execute_delete(db, d, &fgac_algebra::ParamScope::new()).map(|_| ())
            }),
            Statement::Authorize(_) => Err(Error::Unsupported(
                "AUTHORIZE statements are granted to principals: use grant_update_sql".into(),
            )),
            Statement::Grant(g) => match g.kind {
                GrantKind::View => self.grant_view(&g.principal, g.object.as_str()),
                GrantKind::Constraint => self.grant_constraint(&g.principal, g.object.as_str()),
                GrantKind::Role => self.add_role(&g.principal, g.object.as_str()),
            },
            Statement::AnalyzePolicy(_) => Err(Error::Unsupported(
                "ANALYZE POLICY returns rows: call Engine::analyze_policy for the \
                 whole-set report (sessions running it through execute see only \
                 their own grants)"
                    .into(),
            )),
            Statement::AnalyzeFlow(_) => Err(Error::Unsupported(
                "ANALYZE FLOW returns rows: call Engine::analyze_flow for the \
                 whole-set report (sessions running it through execute see only \
                 their own lattice)"
                    .into(),
            )),
            Statement::ExplainAuthorization(_) => Err(Error::Unsupported(
                "EXPLAIN AUTHORIZATION is session-scoped: run it through execute \
                 so the derivation is against the session's own grants"
                    .into(),
            )),
            Statement::Query(_) => Err(Error::Unsupported(
                "admin_script does not run queries; use execute".into(),
            )),
        }
    }

    /// Applies one DDL statement to the catalog and bumps the epoch.
    /// Shared by the live admin path and WAL replay — both must produce
    /// the same catalog state and version counters.
    pub(crate) fn apply_ddl(&mut self, stmt: &Statement) -> Result<()> {
        match stmt {
            Statement::CreateTable(t) => {
                let schema = Schema::new(
                    t.columns
                        .iter()
                        .map(|c| {
                            let mut col = fgac_types::Column::new(c.name.clone(), c.ty);
                            if c.nullable {
                                col = col.nullable();
                            }
                            col
                        })
                        .collect(),
                );
                self.db
                    .create_table(t.name.clone(), schema, t.primary_key.clone())?;
                for (i, fk) in t.foreign_keys.iter().enumerate() {
                    self.db.add_foreign_key(ForeignKey {
                        name: Ident::new(format!("fk_{}_{i}", t.name)),
                        child_table: t.name.clone(),
                        child_columns: fk.columns.clone(),
                        parent_table: fk.parent_table.clone(),
                        parent_columns: fk.parent_columns.clone(),
                    })?;
                }
                self.apply_change(PolicyDelta::NewTable {
                    table: t.name.clone(),
                });
                Ok(())
            }
            Statement::CreateView(v) => {
                self.db.add_view(ViewDef {
                    name: v.name.clone(),
                    authorization: v.authorization,
                    query: v.query.clone(),
                })?;
                self.apply_change(PolicyDelta::NewView {
                    view: v.name.clone(),
                });
                Ok(())
            }
            Statement::CreateInclusionDependency(d) => {
                self.db.add_inclusion_dependency(InclusionDependency {
                    name: d.name.clone(),
                    src_table: d.src_table.clone(),
                    src_columns: d.src_columns.clone(),
                    src_filter: d.src_filter.clone(),
                    dst_table: d.dst_table.clone(),
                    dst_columns: d.dst_columns.clone(),
                    dst_filter: d.dst_filter.clone(),
                })?;
                self.apply_change(PolicyDelta::NewConstraint {
                    name: d.name.clone(),
                });
                Ok(())
            }
            _ => Err(Error::Internal("apply_ddl called on non-DDL".into())),
        }
    }

    /// DDL commit protocol: apply, then log. If the WAL append fails,
    /// the catalog change is structurally undone and the statement fails
    /// — the catalog never runs ahead of the log.
    fn apply_ddl_logged(&mut self, stmt: &Statement) -> Result<()> {
        if self.durability.is_none() {
            return self.apply_ddl(stmt);
        }
        let fks_before = self.db.catalog().foreign_keys().len();
        let deps_before = self.db.catalog().inclusion_dependencies().len();
        self.apply_ddl(stmt)?;
        if let Err(e) = self.log_commit(WalRecord::Ddl {
            sql: fgac_sql::print_statement(stmt),
        }) {
            match stmt {
                Statement::CreateTable(t) => {
                    let _ = self.db.drop_table(&t.name);
                    self.db.catalog_mut().truncate_foreign_keys(fks_before);
                }
                Statement::CreateView(v) => {
                    let _ = self.db.drop_view(&v.name);
                }
                Statement::CreateInclusionDependency(_) => {
                    self.db
                        .catalog_mut()
                        .truncate_inclusion_dependencies(deps_before);
                }
                _ => {}
            }
            return Err(e);
        }
        self.maybe_snapshot();
        Ok(())
    }

    /// Admin DML commit protocol: execute against the database, then
    /// commit the recorded deltas ([`Engine::commit_dml`]). On failure
    /// the target table is restored and the deltas are dropped.
    fn admin_dml(&mut self, table: &Ident, f: impl FnOnce(&mut Database) -> Result<()>) -> Result<()> {
        let undo = self.db.snapshot_table(table).ok();
        match f(&mut self.db) {
            Ok(()) => self.commit_dml(undo),
            Err(e) => {
                self.discard_deltas();
                Err(e)
            }
        }
    }

    /// Direct (unchecked) row insertion for loaders/benches.
    pub fn admin_insert(&mut self, table: &Ident, row: Row) -> Result<()> {
        self.ensure_open()?;
        let undo = self.db.snapshot_table(table).ok();
        let recorded = self.db.insert(table, row);
        match recorded {
            Ok(()) => self.commit_dml(undo),
            Err(e) => {
                self.discard_deltas();
                Err(e)
            }
        }
    }

    /// Bulk load without per-row constraint checks. Atomic: a failure
    /// mid-load restores the table to its pre-load rows.
    pub fn admin_load(&mut self, table: &Ident, rows: Vec<Row>) -> Result<usize> {
        self.ensure_open()?;
        let undo = self.db.snapshot_table(table).ok();
        let mut n = 0;
        for row in rows {
            if let Err(e) = self.db.insert_unchecked(table, row) {
                self.discard_deltas();
                if let Some(snap) = undo {
                    let _ = self.db.restore_table(snap);
                }
                return Err(e);
            }
            n += 1;
        }
        self.commit_dml(undo)?;
        Ok(n)
    }

    /// Grants an authorization view to a principal. Log-then-apply: on a
    /// durable engine the record is committed first, so the grant tables
    /// never run ahead of the log.
    pub fn grant_view(&mut self, principal: &str, view: &str) -> Result<()> {
        self.ensure_open()?;
        self.log_commit(WalRecord::GrantView {
            principal: principal.into(),
            view: view.into(),
        })?;
        self.grants.grant_view(principal, view);
        self.apply_change(PolicyDelta::GrantView {
            principal: principal.to_string(),
            view: Ident::new(view),
        });
        self.maybe_snapshot();
        Ok(())
    }

    /// Revokes an authorization view from a principal. Cached verdicts
    /// and plans derived under the old grant set are discarded.
    pub fn revoke_view(&mut self, principal: &str, view: &str) -> Result<()> {
        self.ensure_open()?;
        self.log_commit(WalRecord::RevokeView {
            principal: principal.into(),
            view: view.into(),
        })?;
        self.grants.revoke_view(principal, &Ident::new(view));
        self.apply_change(PolicyDelta::RevokeView {
            principal: principal.to_string(),
            view: Ident::new(view),
        });
        self.maybe_snapshot();
        Ok(())
    }

    /// Makes an integrity constraint visible to a principal (U3a
    /// condition 2).
    pub fn grant_constraint(&mut self, principal: &str, name: &str) -> Result<()> {
        self.ensure_open()?;
        self.log_commit(WalRecord::GrantConstraint {
            principal: principal.into(),
            name: name.into(),
        })?;
        self.grants.grant_constraint(principal, name);
        self.apply_change(PolicyDelta::GrantConstraint {
            principal: principal.to_string(),
            name: Ident::new(name),
        });
        self.maybe_snapshot();
        Ok(())
    }

    /// Grants an `AUTHORIZE ...` update authorization (SQL text).
    pub fn grant_update_sql(&mut self, principal: &str, sql: &str) -> Result<()> {
        self.ensure_open()?;
        match fgac_sql::parse_statement(sql)? {
            Statement::Authorize(a) => {
                self.log_commit(WalRecord::GrantUpdate {
                    principal: principal.into(),
                    sql: sql.into(),
                })?;
                self.grants.grant_update(principal, a);
                self.maybe_snapshot();
                Ok(())
            }
            _ => Err(Error::Parse("expected an AUTHORIZE statement".into())),
        }
    }

    /// Adds a user to a role.
    pub fn add_role(&mut self, user: &str, role: &str) -> Result<()> {
        self.ensure_open()?;
        self.log_commit(WalRecord::AddRole {
            user: user.into(),
            role: role.into(),
        })?;
        self.grants.add_role(user, role);
        self.apply_change(PolicyDelta::AddRole {
            user: user.to_string(),
        });
        self.maybe_snapshot();
        Ok(())
    }

    /// Delegates a view grant between users (Section 6). The delegator
    /// must hold the view — validated *before* logging, so only
    /// legitimate delegations ever reach the log.
    pub fn delegate_view(&mut self, from: &str, to: &str, view: &str) -> Result<()> {
        self.ensure_open()?;
        let v = Ident::new(view);
        if !self.grants.views_for(from).contains(&v) {
            return Err(Error::Unauthorized(format!(
                "user {from} does not hold view {v} and cannot delegate it"
            )));
        }
        self.log_commit(WalRecord::DelegateView {
            from: from.into(),
            to: to.into(),
            view: view.into(),
        })?;
        self.grants.grant_view(to, v.clone());
        self.apply_change(PolicyDelta::GrantView {
            principal: to.to_string(),
            view: v,
        });
        self.maybe_snapshot();
        Ok(())
    }

    // ---------------- user path ----------------

    /// Executes a statement under the **Non-Truman model**: queries are
    /// validity-checked and run unmodified or rejected; DML is authorized
    /// per tuple (Section 4.4).
    ///
    /// Repeated query texts take the zero-parse fast path: the admitted
    /// plan comes from the plan cache keyed on `(policy epoch, SQL,
    /// session parameters)`, so steady-state admission is two cache
    /// lookups.
    pub fn execute(&mut self, session: &Session, sql: &str) -> Result<EngineResponse> {
        self.execute_at(session, sql, None)
    }

    /// [`Engine::execute`] under a per-request wall-clock deadline.
    ///
    /// The deadline is threaded into the validity check's [`fgac_types::Budget`]
    /// meter (clamping any engine-configured allowance), so expiry
    /// surfaces exactly like fuel exhaustion: a fail-closed
    /// [`Error::ResourceExhausted`] whose verdict is **never cached** —
    /// a retry with time to spare may legitimately be accepted. A
    /// deadline already past denies before admission, touching neither
    /// the plan cache nor the validity cache.
    pub fn execute_at(
        &mut self,
        session: &Session,
        sql: &str,
        deadline: Option<Instant>,
    ) -> Result<EngineResponse> {
        self.ensure_open()?;
        check_deadline(deadline)?;
        if let Some(cached) = self.plan_cache.get(sql, session.params()) {
            return self.execute_cached_query_at(session, &cached, deadline);
        }
        let stmt = fgac_sql::parse_statement(sql)?;
        if let Statement::Query(q) = &stmt {
            let cached = self.admit_query(session, sql, q)?;
            return self.execute_cached_query_at(session, &cached, deadline);
        }
        self.execute_statement(session, &stmt)
    }

    /// The shared-read-lock execution path: runs `sql` if (and only if)
    /// it needs no `&mut` access — queries, `EXPLAIN AUTHORIZATION`, and
    /// session-scoped `ANALYZE POLICY`. Returns `None` for write
    /// statements (DML/DDL), which the caller must route through an
    /// exclusive path ([`crate::SharedEngine`] does exactly this).
    ///
    /// `deadline` is the request's wall-clock allowance, threaded into
    /// the validity check's budget meter (see [`Engine::execute_at`]).
    pub fn try_execute_read(
        &self,
        session: &Session,
        sql: &str,
        deadline: Option<Instant>,
    ) -> Option<Result<EngineResponse>> {
        if let Err(e) = self.ensure_open() {
            return Some(Err(e));
        }
        if let Err(e) = check_deadline(deadline) {
            return Some(Err(e));
        }
        if let Some(cached) = self.plan_cache.get(sql, session.params()) {
            return Some(self.execute_cached_query_at(session, &cached, deadline));
        }
        let stmt = match fgac_sql::parse_statement(sql) {
            Ok(stmt) => stmt,
            Err(e) => return Some(Err(e)),
        };
        match stmt {
            Statement::Query(q) => Some(
                self.admit_query(session, sql, &q)
                    .and_then(|cached| self.execute_cached_query_at(session, &cached, deadline)),
            ),
            Statement::AnalyzePolicy(a) => Some(self.analyze_policy_session(session, &a)),
            Statement::AnalyzeFlow(a) => Some(self.analyze_flow_session(session, &a)),
            Statement::ExplainAuthorization(ex) => Some(
                self.certify_query(session, &ex.query)
                    .map(|report| EngineResponse::Rows(explain_authorization_result(&report))),
            ),
            _ => None,
        }
    }

    /// The session-scoped `ANALYZE POLICY` arm, shared by the `&mut`
    /// statement path and the read path.
    fn analyze_policy_session(
        &self,
        session: &Session,
        a: &fgac_sql::AnalyzePolicy,
    ) -> Result<EngineResponse> {
        // The analyzer's output *is* policy metadata: grant sets, role
        // memberships, revocation tombstones, and messages that name
        // other views. On the session path that is the exact disclosure
        // channel P005 guards against, so a session may analyze only its
        // own effective grants; the whole-set report is admin surface
        // ([`Engine::analyze_policy`], `fgac-analyze`).
        if let Some(p) = a.principal.as_deref() {
            if p != session.user() {
                return Err(Error::Unauthorized(
                    "ANALYZE POLICY FOR another principal is admin-only; \
                     a session may analyze only its own grants"
                        .into(),
                ));
            }
        }
        let diags = self.analyze_policy(Some(session.user()));
        Ok(EngineResponse::Rows(diagnostics_result(&diags)))
    }

    /// The session-scoped `ANALYZE FLOW` arm, shared by the `&mut`
    /// statement path and the read path. Same disclosure discipline as
    /// `ANALYZE POLICY`: a flow report names other principals' views
    /// and lattice cells, so a session may analyze only its own.
    fn analyze_flow_session(
        &self,
        session: &Session,
        a: &fgac_sql::AnalyzeFlow,
    ) -> Result<EngineResponse> {
        if let Some(p) = a.principal.as_deref() {
            if p != session.user() {
                return Err(Error::Unauthorized(
                    "ANALYZE FLOW FOR another principal is admin-only; \
                     a session may analyze only its own disclosure lattice"
                        .into(),
                ));
            }
        }
        let diags = self.analyze_flow(Some(session.user()));
        Ok(EngineResponse::Rows(diagnostics_result(&diags)))
    }

    /// Binds, normalizes, and fingerprints a parsed query, publishing
    /// the result in the plan cache under the current policy epoch.
    /// Bind failures are returned (and not cached).
    pub(crate) fn admit_query(
        &self,
        session: &Session,
        sql: &str,
        q: &fgac_sql::Query,
    ) -> Result<Arc<CachedPlan>> {
        let bound = fgac_algebra::bind_query(self.db.catalog(), q, session.params())?;
        let normalized = fgac_algebra::normalize(&bound.plan);
        let validity_fp = ValidityCache::fingerprint_in_session(&normalized, session.params());
        // The entry's read set, for dependency invalidation: every name
        // binding resolved (views included, recursively) plus every base
        // table the normalized plan scans.
        let mut deps = crate::invalidation::query_dependencies(self.db.catalog(), q);
        deps.extend(normalized.scanned_tables());
        let cached = Arc::new(CachedPlan {
            bound,
            normalized,
            validity_fp,
            deps,
        });
        self.plan_cache.insert(sql, session.params(), cached.clone());
        Ok(cached)
    }

    /// Validity-checks and runs an admitted query. Panic-isolated like
    /// [`Engine::execute_statement`]; queries never mutate tables, so no
    /// undo snapshot is needed.
    pub(crate) fn execute_cached_query(
        &self,
        session: &Session,
        cached: &CachedPlan,
    ) -> Result<EngineResponse> {
        self.execute_cached_query_at(session, cached, None)
    }

    /// [`Engine::execute_cached_query`] under a request deadline.
    pub(crate) fn execute_cached_query_at(
        &self,
        session: &Session,
        cached: &CachedPlan,
        deadline: Option<Instant>,
    ) -> Result<EngineResponse> {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.execute_cached_query_inner(session, cached, deadline)
        }));
        match outcome {
            Ok(result) => result,
            Err(payload) => Err(Error::Internal(format!(
                "statement execution panicked: {}",
                panic_message(payload)
            ))),
        }
    }

    fn execute_cached_query_inner(
        &self,
        session: &Session,
        cached: &CachedPlan,
        deadline: Option<Instant>,
    ) -> Result<EngineResponse> {
        let report =
            self.check_admitted_at(session, &cached.normalized, cached.validity_fp, deadline)?;
        if !report.is_valid() {
            return Err(deny_error(report));
        }
        // Valid: execute the ORIGINAL query, unmodified.
        let rows = fgac_exec::execute_bound(&self.db, &cached.bound)?;
        Ok(EngineResponse::Rows(QueryResult {
            names: cached.bound.output_names.clone(),
            rows,
        }))
    }

    /// Executes an already-parsed statement (the prepared-statement
    /// path; see [`crate::Prepared`]).
    ///
    /// The user path is panic-isolated: an unwind anywhere below this
    /// frame becomes [`Error::Internal`], a DML target mutated before
    /// the panic is rolled back to its pre-statement rows, and the
    /// engine remains usable for subsequent statements.
    pub fn execute_statement(
        &mut self,
        session: &Session,
        stmt: &Statement,
    ) -> Result<EngineResponse> {
        self.ensure_open()?;
        let is_dml = matches!(
            stmt,
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)
        );
        let undo = match stmt {
            Statement::Insert(i) => self.db.snapshot_table(&i.table).ok(),
            Statement::Update(u) => self.db.snapshot_table(&u.table).ok(),
            Statement::Delete(d) => self.db.snapshot_table(&d.table).ok(),
            _ => None,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.execute_statement_inner(session, stmt)
        }));
        match outcome {
            Ok(Ok(response)) => {
                if is_dml {
                    // Commit point: log the deltas (durable engines) and
                    // bump the data version. A WAL failure rolls the
                    // statement back and fails it.
                    self.commit_dml(undo)?;
                }
                Ok(response)
            }
            Ok(Err(e)) => {
                if is_dml {
                    self.discard_deltas();
                }
                Err(e)
            }
            Err(payload) => {
                self.discard_deltas();
                if let Some(snap) = undo {
                    // The table existed when the snapshot was taken and
                    // DDL is admin-only, so this cannot fail.
                    let _ = self.db.restore_table(snap);
                }
                Err(Error::Internal(format!(
                    "statement execution panicked: {}",
                    panic_message(payload)
                )))
            }
        }
    }

    fn execute_statement_inner(
        &mut self,
        session: &Session,
        stmt: &Statement,
    ) -> Result<EngineResponse> {
        match stmt {
            Statement::Query(q) => {
                // No SQL text here, so the plan cache is bypassed (the
                // textful paths — execute / prepared statements — hit
                // it); admission still happens exactly once.
                let bound = fgac_algebra::bind_query(self.db.catalog(), q, session.params())?;
                let normalized = fgac_algebra::normalize(&bound.plan);
                let fp = ValidityCache::fingerprint_in_session(&normalized, session.params());
                let report = self.check_admitted(session, &normalized, fp)?;
                if !report.is_valid() {
                    return Err(deny_error(report));
                }
                // Valid: execute the ORIGINAL query, unmodified.
                let rows = fgac_exec::execute_bound(&self.db, &bound)?;
                Ok(EngineResponse::Rows(QueryResult {
                    names: bound.output_names,
                    rows,
                }))
            }
            // DML arms do not bump the data version themselves: the
            // commit point (log + bump) lives in `execute_statement`,
            // after the WAL append is known to have succeeded.
            Statement::Insert(i) => {
                let auth = UpdateAuthorizer::new(&self.grants);
                let n = auth.insert(&mut self.db, session, i)?;
                Ok(EngineResponse::Affected(n))
            }
            Statement::Update(u) => {
                let auth = UpdateAuthorizer::new(&self.grants);
                let n = auth.update(&mut self.db, session, u)?;
                Ok(EngineResponse::Affected(n))
            }
            Statement::Delete(d) => {
                let auth = UpdateAuthorizer::new(&self.grants);
                let n = auth.delete(&mut self.db, session, d)?;
                Ok(EngineResponse::Affected(n))
            }
            Statement::AnalyzePolicy(a) => self.analyze_policy_session(session, a),
            Statement::AnalyzeFlow(a) => self.analyze_flow_session(session, a),
            Statement::ExplainAuthorization(ex) => {
                // Session-scoped by construction: the check runs against
                // the session's own grants, so — unlike ANALYZE POLICY —
                // there is no cross-principal disclosure to guard.
                let report = self.certify_query(session, &ex.query)?;
                Ok(EngineResponse::Rows(explain_authorization_result(&report)))
            }
            _ => Err(Error::Unauthorized(
                "DDL requires the admin interface".into(),
            )),
        }
    }

    /// Runs the grant-time policy static analyzer (`fgac-analyze`) over
    /// the installed policy set: authorization-view grants, constraint
    /// visibility, role memberships, revocation tombstones, and the
    /// catalog they refer to. `principal` restricts the per-principal
    /// lints to one principal's effective grant set.
    ///
    /// The analysis runs under the engine's configured [`fgac_types::Budget`]
    /// and *fails open*: on exhaustion it reports diagnostics of
    /// severity `unknown` instead of erroring — a lint must never be
    /// the thing that panics or wedges the DBA path.
    pub fn analyze_policy(&self, principal: Option<&str>) -> Vec<Diagnostic> {
        let set = fgac_analyze::PolicySet {
            catalog: self.db.catalog(),
            view_grants: self.grants.view_grants(),
            constraint_grants: self.grants.constraint_grants(),
            role_memberships: self.grants.role_memberships(),
            revocations: self.grants.revoked_views(),
        };
        let opts = fgac_analyze::AnalyzeOptions {
            budget: self.options.budget.clone(),
        };
        fgac_analyze::analyze_policy_set(&set, principal, &opts)
    }

    /// Runs the whole-policy information-flow analysis (disclosure
    /// lattices, F-codes — see `fgac_analyze::flow`) over the installed
    /// policy set. `principal` restricts it to one principal's lattice.
    ///
    /// Whole-set runs are incremental: per-principal results are cached
    /// under the policy epoch and swept by the same
    /// [`crate::invalidation::PolicyDelta::affects`] predicate as the
    /// admission caches, so a single grant re-analyzes only the
    /// affected principals. Fails open like the policy lints.
    pub fn analyze_flow(&self, principal: Option<&str>) -> Vec<Diagnostic> {
        let set = fgac_analyze::PolicySet {
            catalog: self.db.catalog(),
            view_grants: self.grants.view_grants(),
            constraint_grants: self.grants.constraint_grants(),
            role_memberships: self.grants.role_memberships(),
            revocations: self.grants.revoked_views(),
        };
        let opts = fgac_analyze::AnalyzeOptions {
            budget: self.options.budget.clone(),
        };
        match principal {
            Some(p) => self.flow.analyze_one(&set, p, &opts),
            None => self.flow.analyze_full(&set, self.policy_epoch, &opts),
        }
    }

    /// F004: what a proposed grant would newly disclose, computed
    /// against the live policy set without applying the grant.
    pub fn flow_diff_grant(&self, grant: &fgac_analyze::ProposedGrant) -> Vec<Diagnostic> {
        let set = fgac_analyze::PolicySet {
            catalog: self.db.catalog(),
            view_grants: self.grants.view_grants(),
            constraint_grants: self.grants.constraint_grants(),
            role_memberships: self.grants.role_memberships(),
            revocations: self.grants.revoked_views(),
        };
        let opts = fgac_analyze::AnalyzeOptions {
            budget: self.options.budget.clone(),
        };
        fgac_analyze::flow_diff_grant(&set, grant, &opts)
    }

    /// (epoch-fresh flow entries, total flow entries) — metrics.
    pub fn flow_cache_stats(&self) -> (usize, usize) {
        self.flow.stats(self.policy_epoch)
    }

    /// The live policy in the shape the independent certificate checker
    /// consumes ([`fgac_analyze::check_certificate`]).
    pub fn certificate_policy(&self) -> fgac_analyze::CertPolicy<'_> {
        fgac_analyze::CertPolicy {
            catalog: self.db.catalog(),
            view_grants: self.grants.view_grants(),
            constraint_grants: self.grants.constraint_grants(),
            role_memberships: self.grants.role_memberships(),
            policy_epoch: self.policy_epoch,
        }
    }

    /// Runs the validity check *uncached* with certificate emission
    /// forced on, stamps the live policy epoch, and re-verifies the
    /// certificate with the independent checker before returning. The
    /// certification surface behind `EXPLAIN AUTHORIZATION` and
    /// `fgac-analyze --certify`: an ACCEPT whose derivation the checker
    /// rejects is reported as an error, not returned.
    pub fn certify(&self, session: &Session, sql: &str) -> Result<ValidityReport> {
        let query = fgac_sql::parse_query(sql)?;
        self.certify_query(session, &query)
    }

    /// [`Engine::certify`] for an already-parsed query.
    pub fn certify_query(
        &self,
        session: &Session,
        query: &fgac_sql::Query,
    ) -> Result<ValidityReport> {
        let mut options = self.options.clone();
        options.emit_certificates = true;
        let caps =
            self.compiled
                .principal(self.policy_epoch, session.user(), self.db.catalog(), &self.grants);
        let mut report = Validator::new(&self.db, &self.grants)
            .with_options(options)
            .with_compiled(caps)
            .check_query(session, query)?;
        if let Some(cert) = &mut report.certificate {
            cert.policy_epoch = self.policy_epoch;
        }
        if report.is_valid() {
            let Some(cert) = &report.certificate else {
                return Err(Error::Execution(
                    "validator accepted without emitting a certificate".into(),
                ));
            };
            let diags = fgac_analyze::check_certificate(
                cert,
                &self.certificate_policy(),
                &fgac_analyze::CheckerOptions::default(),
            );
            if !diags.is_empty() {
                let msgs: Vec<String> = diags
                    .iter()
                    .map(|d| format!("{}: {}", d.code.as_str(), d.message))
                    .collect();
                return Err(Error::Execution(format!(
                    "certificate failed independent verification: {}",
                    msgs.join("; ")
                )));
            }
        }
        Ok(report)
    }

    /// The validity check alone (with caching) — what the optimizer
    /// would run at prepare time. Warms both the plan cache and the
    /// validity cache.
    pub fn check(&self, session: &Session, sql: &str) -> Result<ValidityReport> {
        let cached = match self.plan_cache.get(sql, session.params()) {
            Some(c) => c,
            None => {
                let q = fgac_sql::parse_query(sql)?;
                self.admit_query(session, sql, &q)?
            }
        };
        self.check_admitted(session, &cached.normalized, cached.validity_fp)
    }

    /// Validity check of an admitted (bound + normalized) plan through
    /// the validity cache.
    fn check_admitted(
        &self,
        session: &Session,
        plan: &fgac_algebra::Plan,
        fp: u64,
    ) -> Result<ValidityReport> {
        self.check_admitted_at(session, plan, fp, None)
    }

    /// [`Engine::check_admitted`] under a request deadline: the
    /// remaining wall-clock time is clamped onto the configured
    /// [`fgac_types::Budget`], so the validator's own meter enforces it
    /// mid-inference. An already-expired deadline denies *before* the
    /// cache lookup — nothing is read, nothing is stored.
    fn check_admitted_at(
        &self,
        session: &Session,
        plan: &fgac_algebra::Plan,
        fp: u64,
        deadline: Option<Instant>,
    ) -> Result<ValidityReport> {
        check_deadline(deadline)?;
        match self
            .cache
            .lookup(session.user(), fp, self.data_version, self.policy_epoch)
        {
            CacheOutcome::Hit(verdict) => {
                return Ok(ValidityReport {
                    verdict,
                    rules: vec!["validity cache hit".into()],
                    reason: if verdict == Verdict::Invalid {
                        Some("query rejected (cached verdict)".into())
                    } else {
                        None
                    },
                    dag_stats: Default::default(),
                    views_considered: 0,
                    exhausted: None,
                    certificate: None,
                });
            }
            // Computed under an older grant state but the accept carries
            // its derivation: re-verify the certificate against the
            // *current* grants (same independent checker, epoch pin
            // lifted). Verification success means the derivation is
            // valid under today's policy — serve the verdict and restamp
            // without re-proving. ANY defect — failed step, revoked
            // view, budget exhaustion — falls closed to the cold check.
            CacheOutcome::Stale { verdict, cert } => {
                let diags = fgac_analyze::revalidate_certificate(
                    &cert,
                    &self.certificate_policy(),
                    &fgac_analyze::CheckerOptions {
                        budget: self.options.budget.clone(),
                    },
                );
                if diags.is_empty() {
                    self.cache.revalidated(session.user(), fp, self.policy_epoch);
                    return Ok(ValidityReport {
                        verdict,
                        rules: vec![
                            "validity cache hit (certificate revalidated against current grants)"
                                .into(),
                        ],
                        reason: None,
                        dag_stats: Default::default(),
                        views_considered: 0,
                        exhausted: None,
                        certificate: None,
                    });
                }
                self.cache.evict_stale(session.user(), fp);
                // Fall through to the cold check below.
            }
            CacheOutcome::Miss => {}
        }
        let mut options = self.options.clone();
        clamp_budget_deadline(&mut options, deadline);
        let caps =
            self.compiled
                .principal(self.policy_epoch, session.user(), self.db.catalog(), &self.grants);
        let report = match Validator::new(&self.db, &self.grants)
            .with_options(options)
            .with_compiled(caps)
            .check_plan(session, plan)
        {
            Ok(mut report) => {
                // The validator stamps epoch 0; rebase the certificate on
                // the live policy epoch it was actually minted under.
                if let Some(cert) = &mut report.certificate {
                    cert.policy_epoch = self.policy_epoch;
                }
                // Shadow mode: in debug builds, every ACCEPT must carry a
                // certificate the independent checker verifies. A failure
                // here is an engine bug (the derivation and the proof
                // disagree), never a user error.
                #[cfg(debug_assertions)]
                if report.is_valid() {
                    if let Some(cert) = &report.certificate {
                        let diags = fgac_analyze::check_certificate(
                            cert,
                            &self.certificate_policy(),
                            &fgac_analyze::CheckerOptions::default(),
                        );
                        if !diags.is_empty() {
                            let msgs: Vec<String> = diags
                                .iter()
                                .map(|d| format!("{}: {}", d.code.as_str(), d.message))
                                .collect();
                            return Err(Error::Execution(format!(
                                "shadow certificate check failed: {}",
                                msgs.join("; ")
                            )));
                        }
                    }
                }
                report
            }
            Err(Error::ResourceExhausted(phase)) => {
                // Fail closed: an interrupted check denies. The verdict is
                // NOT cached — a retry under a larger budget (or a calmer
                // system) may legitimately accept the same query.
                return Ok(ValidityReport {
                    verdict: Verdict::Invalid,
                    rules: vec![format!("check aborted: budget exhausted in {phase}")],
                    reason: Some(format!(
                        "validity check exhausted its resource budget ({phase}); \
                         denied fail-closed"
                    )),
                    dag_stats: Default::default(),
                    views_considered: 0,
                    exhausted: Some(phase),
                    certificate: None,
                });
            }
            Err(e) => return Err(e),
        };
        // Accepts keep their certificate alongside the verdict so a
        // later policy change can warm-revalidate instead of dropping
        // the entry; denials (and emission-off checks) store none.
        let cert = report.certificate.clone().map(Arc::new);
        self.cache.store(
            session.user(),
            fp,
            self.data_version,
            self.policy_epoch,
            report.verdict,
            cert,
        );
        Ok(report)
    }

    /// Executes under the **Truman model** baseline for comparison.
    pub fn truman_execute(
        &self,
        policy: &TrumanPolicy,
        session: &Session,
        sql: &str,
    ) -> Result<QueryResult> {
        crate::truman::truman_execute(&self.db, policy, session, sql)
    }

    pub(crate) fn bump(&mut self) {
        self.data_version += 1;
    }
}

/// Maps a non-valid report to the engine's deny error, preserving the
/// ResourceExhausted class so callers can distinguish "proved invalid"
/// from "ran out of budget before proving validity" — both deny.
/// Renders analyzer diagnostics as a result set, so `ANALYZE POLICY`
/// works from any client that can run a statement (e.g. the repl).
fn diagnostics_result(diags: &[Diagnostic]) -> QueryResult {
    QueryResult {
        names: ["code", "severity", "principal", "object", "message"]
            .into_iter()
            .map(Ident::new)
            .collect(),
        rows: diags
            .iter()
            .map(|d| {
                Row::new(vec![
                    Value::Str(d.code.as_str().to_string()),
                    Value::Str(d.severity.as_str().to_string()),
                    Value::Str(d.principal.clone()),
                    Value::Str(d.object.clone()),
                    Value::Str(d.message.clone()),
                ])
            })
            .collect(),
    }
}

/// Renders a certified validity report as rows for
/// `EXPLAIN AUTHORIZATION`: one leading verdict row, then one row per
/// derivation step of the (independently re-verified) certificate.
fn explain_authorization_result(report: &ValidityReport) -> QueryResult {
    let names = ["step", "rule", "object", "premises", "detail"]
        .into_iter()
        .map(Ident::new)
        .collect();
    let verdict = match report.verdict {
        Verdict::Unconditional => "unconditional",
        Verdict::Conditional => "conditional",
        Verdict::Invalid => "invalid",
    };
    let mut rows = vec![Row::new(vec![
        Value::Str(String::new()),
        Value::Str("VERDICT".into()),
        Value::Str(verdict.into()),
        Value::Str(String::new()),
        Value::Str(report.reason.clone().unwrap_or_default()),
    ])];
    if let Some(cert) = &report.certificate {
        for (i, step) in cert.steps.iter().enumerate() {
            let object = match (&step.view, &step.constraint) {
                (Some(v), _) => v.to_string(),
                (None, Some(c)) => c.to_string(),
                (None, None) => String::new(),
            };
            let premises = step
                .premises
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let mut detail = step.note.clone();
            for (name, val) in &step.pins {
                detail.push_str(&format!(" [${name} = {val}]"));
            }
            if let Some(n) = step.probe_rows {
                detail.push_str(&format!(" [probe: {n} row(s)]"));
            }
            rows.push(Row::new(vec![
                Value::Str(i.to_string()),
                Value::Str(step.rule.to_string()),
                Value::Str(object),
                Value::Str(premises),
                Value::Str(detail),
            ]));
        }
    }
    QueryResult { names, rows }
}

/// Fails with a deadline-flavored [`Error::ResourceExhausted`] once the
/// request deadline has passed. The message is intentionally
/// distinguishable from fuel exhaustion ("step budget exhausted") and
/// from a mid-check deadline trip ("deadline exceeded after N steps"):
/// overload handling upstream keys off the "deadline" prefix.
fn check_deadline(deadline: Option<Instant>) -> Result<()> {
    match deadline {
        Some(at) if Instant::now() >= at => Err(Error::ResourceExhausted(
            "deadline: request wall-clock deadline expired before the validity check".into(),
        )),
        _ => Ok(()),
    }
}

/// Threads a per-request absolute deadline into the check's [`fgac_types::Budget`]:
/// the meter's wall-clock allowance becomes the *smaller* of the
/// engine-configured allowance and the time remaining until `deadline`.
fn clamp_budget_deadline(options: &mut CheckOptions, deadline: Option<Instant>) {
    if let Some(at) = deadline {
        let remaining = at.saturating_duration_since(Instant::now());
        options.budget.deadline = Some(match options.budget.deadline {
            Some(configured) => configured.min(remaining),
            None => remaining,
        });
    }
}

fn deny_error(report: ValidityReport) -> Error {
    if let Some(phase) = report.exhausted {
        return Error::ResourceExhausted(phase);
    }
    Error::Unauthorized(report.reason.unwrap_or_else(|| {
        "query rejected by the Non-Truman validity check".into()
    }))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("data_version", &self.data_version)
            .field("policy_epoch", &self.policy_epoch)
            .field("durable", &self.durability.is_some())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        let mut e = Engine::new();
        e.admin_script(
            "create table students (student_id varchar not null, name varchar not null, \
               type varchar not null, primary key (student_id));
             create table grades (student_id varchar not null, course_id varchar not null, \
               grade int, primary key (student_id, course_id));
             create authorization view MyGrades as \
               select * from grades where student_id = $user_id;
             insert into students values ('11', 'ann', 'FullTime'), ('12', 'bob', 'PartTime');
             insert into grades values ('11', 'cs101', 90), ('12', 'cs101', 70);",
        )
        .unwrap();
        e.grant_view("11", "mygrades").unwrap();
        e
    }

    #[test]
    fn valid_query_executes_unmodified() {
        let mut e = engine();
        let s = Session::new("11");
        let r = e
            .execute(&s, "select grade from grades where student_id = '11'")
            .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
    }

    #[test]
    fn invalid_query_rejected_with_unauthorized() {
        let mut e = engine();
        let s = Session::new("11");
        let err = e.execute(&s, "select grade from grades").unwrap_err();
        assert!(err.is_unauthorized());
        // The misleading Truman behaviour does NOT happen: no silent
        // partial answer.
    }

    #[test]
    fn starved_budget_denies_with_resource_exhausted() {
        use fgac_types::Budget;
        // This exact query is accepted under the default budget (see
        // valid_query_executes_unmodified). Starving the checker must
        // turn it into a ResourceExhausted-backed DENY, never an ALLOW.
        let mut e = engine().with_check_options(CheckOptions {
            budget: Budget::with_max_steps(2),
            ..CheckOptions::default()
        });
        let s = Session::new("11");
        let q = "select grade from grades where student_id = '11'";
        let report = e.check(&s, q).unwrap();
        assert_eq!(report.verdict, Verdict::Invalid);
        assert!(report.exhausted.is_some());
        let err = e.execute(&s, q).unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "got {err:?}");
        // The exhausted verdict must NOT be cached: nothing stored means
        // a later retry with a larger budget re-runs the check.
        let (hits, _) = e.cache().stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn cache_hits_on_repeat() {
        let mut e = engine();
        let s = Session::new("11");
        let q = "select grade from grades where student_id = '11'";
        e.execute(&s, q).unwrap();
        e.execute(&s, q).unwrap();
        let (hits, _misses) = e.cache().stats();
        assert!(hits >= 1);
    }

    #[test]
    fn plan_cache_hits_on_repeat() {
        let mut e = engine();
        let s = Session::new("11");
        let q = "select grade from grades where student_id = '11'";
        e.execute(&s, q).unwrap();
        e.execute(&s, q).unwrap();
        e.execute(&s, q).unwrap();
        let (hits, misses) = e.plan_cache().stats();
        assert!(hits >= 2, "plan cache hits {hits} misses {misses}");
    }

    #[test]
    fn dml_requires_authorization() {
        let mut e = engine();
        let s = Session::new("11");
        let err = e.execute(&s, "insert into grades values ('11', 'cs202', 80)");
        assert!(err.is_err());
        e.grant_update_sql("11", "authorize insert on grades where student_id = $user_id")
            .unwrap();
        let n = e
            .execute(&s, "insert into grades values ('11', 'cs202', 80)")
            .unwrap();
        assert_eq!(n.affected(), Some(1));
        // Data version bumped.
        assert!(e.data_version() > 0);
    }

    #[test]
    fn ddl_via_user_path_rejected() {
        let mut e = engine();
        let s = Session::new("11");
        let err = e.execute(&s, "create table t (a int)");
        assert!(err.is_err());
    }

    #[test]
    fn revoked_view_rejects_previously_valid_query() {
        let mut e = engine();
        let s = Session::new("11");
        let q = "select grade from grades where student_id = '11'";
        e.execute(&s, q).unwrap();
        e.revoke_view("11", "mygrades").unwrap();
        let err = e.execute(&s, q).unwrap_err();
        assert!(err.is_unauthorized(), "got {err:?}");
    }

    #[test]
    fn truman_baseline_accessible() {
        let e = engine();
        let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");
        let s = Session::new("11");
        let r = e
            .truman_execute(&policy, &s, "select avg(grade) from grades")
            .unwrap();
        // Truman silently restricts to user 11's grades.
        assert_eq!(r.rows[0].get(0), &fgac_types::Value::Double(90.0));
    }
}
