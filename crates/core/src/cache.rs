//! Validity-check caching (the Section 5.6 optimizations).
//!
//! "Most uses of a database are from application programs, which execute
//! the same queries repeatedly ... If the same query is reissued multiple
//! times in a session, we can cache the results of the validity check
//! (assuming no underlying data on which it depends changes during the
//! session)."
//!
//! Keyed on `(user, fingerprint of the normalized bound plan)`, so the
//! cache naturally covers prepared statements re-executed with the same
//! parameter values, and re-binding with different `$user_id` produces a
//! different fingerprint (a different instantiated query).
//!
//! Conditional verdicts (rule C3) depend on the database *state*, so
//! they carry the data version they were computed at and expire on any
//! mutation; unconditional verdicts and rejections survive data changes
//! (they quantify over all states).
//!
//! ## Policy churn
//!
//! Every entry also carries the policy epoch it was computed at and,
//! for accepts, the validity certificate that proves the derivation.
//! A policy change no longer clears the cache: the engine sweeps it
//! with [`ValidityCache::apply_policy_change`], restamping entries of
//! unaffected principals to the new epoch (still fresh) and leaving
//! affected certificate-carrying accepts behind at their mint epoch.
//! Those surface from [`ValidityCache::lookup`] as
//! [`CacheOutcome::Stale`]: the engine re-verifies the certificate
//! against the *current* grant state and either restamps
//! ([`ValidityCache::revalidated`]) or evicts and re-proves cold
//! ([`ValidityCache::evict_stale`]). Affected entries without a
//! certificate — including every cached denial, which a grant may
//! legitimately flip to an accept — are dropped in the sweep.
//!
//! ## Concurrency
//!
//! The map is split into [`SHARDS`] independently-locked shards selected
//! by the key's hash, so concurrent lookups for different keys rarely
//! contend, and the hit/miss counters are a single packed [`AtomicU64`]
//! — one relaxed `fetch_add` per lookup instead of the three mutex
//! acquisitions (entries + hits + misses) the first implementation paid.
//! All counters are **cumulative for the life of the engine**: neither
//! the policy-change sweep nor [`ValidityCache::clear`] resets them, so
//! a churn bench reads true hit rates across invalidations.

use crate::nontruman::Verdict;
use fgac_algebra::Plan;
use fgac_analyze::Certificate;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of independently locked shards. A power of two so shard
/// selection is a mask.
const SHARDS: usize = 16;

/// One lookup outcome unit in the packed counter word: hits live in the
/// high 32 bits, misses in the low 32.
const HIT_UNIT: u64 = 1 << 32;
const MISS_UNIT: u64 = 1;

/// Cache lookup result.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheOutcome {
    /// Fresh at the current policy epoch: serve it.
    Hit(Verdict),
    /// Computed under an older grant state, but the accept carries its
    /// derivation: the caller may revalidate the certificate against
    /// the current grants and restamp on success. Serving the verdict
    /// without that check is never sound.
    Stale {
        verdict: Verdict,
        cert: Arc<Certificate>,
    },
    Miss,
}

/// A coherent point-in-time view of the cache counters.
///
/// The hit/miss pair comes from a *single* atomic load of the packed
/// counter word, so a snapshot can never observe a lookup half-applied
/// (a hit counted but visible as neither hit nor miss, or vice versa);
/// likewise the revalidation pair. Counters are cumulative across
/// policy-change sweeps and [`ValidityCache::clear`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Live entries across all shards at (approximately) snapshot time.
    pub entries: usize,
    /// Stale accepts readmitted after their certificate re-verified
    /// against the current grant state.
    pub revalidation_hits: u64,
    /// Stale accepts whose certificate failed re-verification and fell
    /// back to a cold check.
    pub revalidation_misses: u64,
    /// Entries dropped by policy-change sweeps and full clears.
    pub invalidated: u64,
}

impl CacheStats {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Fraction of stale entries that revalidated, in [0, 1]; 0 when no
    /// revalidation was attempted.
    pub fn revalidation_rate(&self) -> f64 {
        let attempts = self.revalidation_hits + self.revalidation_misses;
        if attempts == 0 {
            0.0
        } else {
            self.revalidation_hits as f64 / attempts as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    verdict: Verdict,
    data_version: u64,
    /// The policy epoch this verdict was computed (or last revalidated)
    /// at. `< current` means stale.
    policy_epoch: u64,
    /// The accept's derivation, for warm revalidation. `None` for
    /// denials and for accepts checked with certificate emission off.
    cert: Option<Arc<Certificate>>,
}

/// A concurrent, sharded validity cache.
#[derive(Debug)]
pub struct ValidityCache {
    shards: [Mutex<HashMap<(String, u64), Entry>>; SHARDS],
    /// `hits << 32 | misses`, updated with one relaxed fetch_add per
    /// lookup. Each half holds 2^32 lookups; the process-lifetime counts
    /// this engine sees stay far below that.
    counters: AtomicU64,
    /// `revalidation_hits << 32 | revalidation_misses`, same packing.
    revalidations: AtomicU64,
    /// Entries dropped by sweeps/clears (satellite of the churn work:
    /// cumulative, never reset).
    invalidated: AtomicU64,
}

impl Default for ValidityCache {
    fn default() -> Self {
        ValidityCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            counters: AtomicU64::new(0),
            revalidations: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }
}

impl ValidityCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fingerprint of a normalized bound plan.
    pub fn fingerprint(plan: &Plan) -> u64 {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        h.finish()
    }

    /// Fingerprint of a bound plan *in a session context*. Verdicts
    /// depend on every session parameter (views like
    /// `... where $hour >= 9` instantiate differently per session), so
    /// the parameters are part of the key — not just the user.
    pub fn fingerprint_in_session(plan: &Plan, params: &fgac_algebra::ParamScope) -> u64 {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        params.hash(&mut h);
        h.finish()
    }

    fn shard(&self, user: &str, fingerprint: u64) -> &Mutex<HashMap<(String, u64), Entry>> {
        let mut h = DefaultHasher::new();
        user.hash(&mut h);
        fingerprint.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    fn count_hit(&self) {
        self.counters.fetch_add(HIT_UNIT, Ordering::Relaxed);
    }

    fn count_miss(&self) {
        self.counters.fetch_add(MISS_UNIT, Ordering::Relaxed);
    }

    /// Looks up a verdict for (user, plan) at the given data version and
    /// policy epoch.
    pub fn lookup(
        &self,
        user: &str,
        fingerprint: u64,
        data_version: u64,
        policy_epoch: u64,
    ) -> CacheOutcome {
        let shard = self.shard(user, fingerprint).lock();
        match shard.get(&(user.to_string(), fingerprint)) {
            Some(e) => {
                // Conditional verdicts are state-dependent; Invalid
                // verdicts may become Conditional after inserts (the C3
                // probe can flip from empty to non-empty). Both are
                // state-pinned; only Unconditional survives data changes.
                if e.verdict != Verdict::Unconditional && e.data_version != data_version {
                    drop(shard);
                    self.count_miss();
                    return CacheOutcome::Miss;
                }
                if e.policy_epoch == policy_epoch {
                    let verdict = e.verdict;
                    drop(shard);
                    self.count_hit();
                    return CacheOutcome::Hit(verdict);
                }
                // Behind the current epoch: only a certificate-carrying
                // accept is worth offering for revalidation. A stale
                // entry with nothing to re-verify is as good as absent.
                match (&e.cert, e.verdict) {
                    (Some(cert), verdict) if verdict != Verdict::Invalid => {
                        let out = CacheOutcome::Stale {
                            verdict,
                            cert: Arc::clone(cert),
                        };
                        drop(shard);
                        // Counted later as a revalidation hit or miss by
                        // the engine; not a plain hit/miss yet.
                        out
                    }
                    _ => {
                        drop(shard);
                        self.count_miss();
                        CacheOutcome::Miss
                    }
                }
            }
            None => {
                drop(shard);
                self.count_miss();
                CacheOutcome::Miss
            }
        }
    }

    /// Records a verdict (with the accept's certificate when available).
    pub fn store(
        &self,
        user: &str,
        fingerprint: u64,
        data_version: u64,
        policy_epoch: u64,
        verdict: Verdict,
        cert: Option<Arc<Certificate>>,
    ) {
        self.shard(user, fingerprint).lock().insert(
            (user.to_string(), fingerprint),
            Entry {
                verdict,
                data_version,
                policy_epoch,
                cert,
            },
        );
    }

    /// Restamps a stale entry whose certificate just re-verified against
    /// the current grant state: it is fresh again at `policy_epoch`.
    /// Counts as both a cache hit and a revalidation hit (the lookup
    /// that surfaced it counted nothing yet).
    pub fn revalidated(&self, user: &str, fingerprint: u64, policy_epoch: u64) {
        if let Some(e) = self
            .shard(user, fingerprint)
            .lock()
            .get_mut(&(user.to_string(), fingerprint))
        {
            // Only move the stamp forward; a concurrent writer sweep may
            // already have re-staled the entry under a newer epoch, in
            // which case this revalidation (made under a read lock held
            // across the whole check) still proved the older state.
            if e.policy_epoch < policy_epoch {
                e.policy_epoch = policy_epoch;
            }
        }
        self.count_hit();
        self.revalidations.fetch_add(HIT_UNIT, Ordering::Relaxed);
    }

    /// Drops a stale entry whose certificate failed re-verification.
    /// Counts as both a cache miss and a revalidation miss; the caller
    /// falls through to a cold check (fail closed).
    pub fn evict_stale(&self, user: &str, fingerprint: u64) {
        self.shard(user, fingerprint)
            .lock()
            .remove(&(user.to_string(), fingerprint));
        self.count_miss();
        self.revalidations.fetch_add(MISS_UNIT, Ordering::Relaxed);
    }

    /// The policy-change sweep, run inside the writer's critical section
    /// right after the epoch bump `from_epoch → to_epoch`:
    ///
    /// * entries of principals the change cannot affect are restamped to
    ///   `to_epoch` — still fresh;
    /// * affected certificate-carrying accepts stay at their mint epoch
    ///   (stale, revalidatable on next lookup);
    /// * everything else affected is dropped.
    ///
    /// Only entries stamped exactly `from_epoch` are restamped: an entry
    /// left stale by an *earlier* affecting change must not be
    /// freshened by a later unrelated one — it still has a pending
    /// revalidation to pass.
    pub fn apply_policy_change<F>(&self, from_epoch: u64, to_epoch: u64, affects: F)
    where
        F: Fn(&str) -> bool,
    {
        let mut dropped = 0u64;
        for shard in &self.shards {
            shard.lock().retain(|(user, _), e| {
                if !affects(user) {
                    if e.policy_epoch == from_epoch {
                        e.policy_epoch = to_epoch;
                    }
                    return true;
                }
                if e.verdict != Verdict::Invalid && e.cert.is_some() {
                    // Keep, stale: the certificate decides its fate on
                    // the next lookup.
                    return true;
                }
                dropped += 1;
                false
            });
        }
        if dropped > 0 {
            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Clears every entry (recovery cold-start). Counters survive — they
    /// are cumulative engine-lifetime statistics.
    pub fn clear(&self) {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut s = shard.lock();
            dropped += s.len() as u64;
            s.clear();
        }
        if dropped > 0 {
            self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// (hits, misses) counters — experiment E5 instrumentation. The pair
    /// comes from one atomic load, so it is internally consistent.
    pub fn stats(&self) -> (u64, u64) {
        let packed = self.counters.load(Ordering::Relaxed);
        (packed >> 32, packed & 0xFFFF_FFFF)
    }

    /// (revalidation hits, revalidation misses), one atomic load.
    pub fn revalidation_stats(&self) -> (u64, u64) {
        let packed = self.revalidations.load(Ordering::Relaxed);
        (packed >> 32, packed & 0xFFFF_FFFF)
    }

    /// Entries dropped by sweeps and clears, cumulative.
    pub fn invalidated_entries(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// A coherent snapshot of counters and occupancy.
    pub fn snapshot(&self) -> CacheStats {
        let (hits, misses) = self.stats();
        let (revalidation_hits, revalidation_misses) = self.revalidation_stats();
        CacheStats {
            hits,
            misses,
            entries: self.len(),
            revalidation_hits,
            revalidation_misses,
            invalidated: self.invalidated_entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_analyze::{CertVerdict, Certificate};
    use fgac_types::Schema;

    fn plan(table: &str) -> Plan {
        Plan::scan(table, Schema::new(vec![]))
    }

    fn cert(epoch: u64) -> Arc<Certificate> {
        Arc::new(Certificate {
            principal: "11".into(),
            policy_epoch: epoch,
            verdict: CertVerdict::Unconditional,
            params: vec![],
            query_tables: vec![],
            query: None,
            steps: vec![],
        })
    }

    #[test]
    fn unconditional_survives_data_changes() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Unconditional, None);
        assert_eq!(c.lookup("11", fp, 99, 0), CacheOutcome::Hit(Verdict::Unconditional));
    }

    #[test]
    fn conditional_expires_on_data_change() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Conditional, None);
        assert_eq!(c.lookup("11", fp, 1, 0), CacheOutcome::Hit(Verdict::Conditional));
        assert_eq!(c.lookup("11", fp, 2, 0), CacheOutcome::Miss);
    }

    #[test]
    fn invalid_expires_on_data_change() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Invalid, None);
        assert_eq!(c.lookup("11", fp, 2, 0), CacheOutcome::Miss);
    }

    #[test]
    fn per_user_keys() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Unconditional, None);
        assert_eq!(c.lookup("12", fp, 1, 0), CacheOutcome::Miss);
    }

    #[test]
    fn distinct_plans_have_distinct_fingerprints() {
        assert_ne!(
            ValidityCache::fingerprint(&plan("a")),
            ValidityCache::fingerprint(&plan("b"))
        );
    }

    #[test]
    fn clear_and_stats() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Unconditional, None);
        assert_eq!(c.len(), 1);
        let _ = c.lookup("11", fp, 1, 0);
        let _ = c.lookup("11", fp + 1, 1, 0);
        assert_eq!(c.stats(), (1, 1));
        c.clear();
        assert!(c.is_empty());
        // Satellite 1: counters are cumulative — a clear (or sweep) must
        // not wipe hit/miss history, and the drop itself is counted.
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.invalidated_entries(), 1);
    }

    #[test]
    fn stale_epoch_without_certificate_misses() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Unconditional, None);
        assert_eq!(c.lookup("11", fp, 1, 5), CacheOutcome::Miss);
    }

    #[test]
    fn stale_epoch_with_certificate_offers_revalidation() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Unconditional, Some(cert(0)));
        match c.lookup("11", fp, 1, 3) {
            CacheOutcome::Stale { verdict, cert } => {
                assert_eq!(verdict, Verdict::Unconditional);
                assert_eq!(cert.policy_epoch, 0);
            }
            other => panic!("expected Stale, got {other:?}"),
        }
        // Revalidation restamps: the next lookup at epoch 3 is a hit.
        c.revalidated("11", fp, 3);
        assert_eq!(c.lookup("11", fp, 1, 3), CacheOutcome::Hit(Verdict::Unconditional));
        let snap = c.snapshot();
        assert_eq!(snap.revalidation_hits, 1);
        assert_eq!(snap.revalidation_misses, 0);
        assert!(snap.revalidation_rate() > 0.99);
    }

    #[test]
    fn evict_stale_counts_a_revalidation_miss() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, 0, Verdict::Unconditional, Some(cert(0)));
        assert!(matches!(c.lookup("11", fp, 1, 2), CacheOutcome::Stale { .. }));
        c.evict_stale("11", fp);
        assert_eq!(c.lookup("11", fp, 1, 2), CacheOutcome::Miss);
        let snap = c.snapshot();
        assert_eq!(snap.revalidation_misses, 1);
        assert_eq!(snap.entries, 0);
    }

    #[test]
    fn sweep_restamps_unaffected_and_drops_affected_denials() {
        let c = ValidityCache::new();
        let fa = ValidityCache::fingerprint(&plan("a"));
        let fb = ValidityCache::fingerprint(&plan("b"));
        let fc = ValidityCache::fingerprint(&plan("c"));
        // Unaffected accept, affected accept-with-cert, affected denial.
        c.store("alice", fa, 1, 4, Verdict::Unconditional, None);
        c.store("bob", fb, 1, 4, Verdict::Unconditional, Some(cert(4)));
        c.store("bob", fc, 1, 4, Verdict::Invalid, None);
        c.apply_policy_change(4, 5, |user| user == "bob");
        // Alice restamped: fresh at 5 without a recheck.
        assert_eq!(c.lookup("alice", fa, 1, 5), CacheOutcome::Hit(Verdict::Unconditional));
        // Bob's accept is stale but revalidatable.
        assert!(matches!(c.lookup("bob", fb, 1, 5), CacheOutcome::Stale { .. }));
        // Bob's denial is gone — the grant may have made it valid.
        assert_eq!(c.lookup("bob", fc, 1, 5), CacheOutcome::Miss);
        assert_eq!(c.invalidated_entries(), 1);
    }

    #[test]
    fn sweep_never_freshens_an_already_stale_entry() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("bob", fp, 1, 4, Verdict::Unconditional, Some(cert(4)));
        // Change affecting bob: entry goes stale at epoch 4.
        c.apply_policy_change(4, 5, |user| user == "bob");
        // Later change affecting only alice: bob's entry must NOT be
        // restamped to 6 — it still owes a revalidation.
        c.apply_policy_change(5, 6, |user| user == "alice");
        assert!(matches!(c.lookup("bob", fp, 1, 6), CacheOutcome::Stale { .. }));
    }

    #[test]
    fn keys_spread_across_shards() {
        // Not a correctness requirement, but the sharding is pointless if
        // everything lands in one shard; check a spread of keys occupies
        // several.
        let c = ValidityCache::new();
        for i in 0..64u64 {
            c.store(
                &format!("user{i}"),
                i.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                0,
                0,
                Verdict::Unconditional,
                None,
            );
        }
        let occupied = c.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(occupied >= SHARDS / 2, "only {occupied} shards occupied");
    }
}
