//! Validity-check caching (the Section 5.6 optimizations).
//!
//! "Most uses of a database are from application programs, which execute
//! the same queries repeatedly ... If the same query is reissued multiple
//! times in a session, we can cache the results of the validity check
//! (assuming no underlying data on which it depends changes during the
//! session)."
//!
//! Keyed on `(user, fingerprint of the normalized bound plan)`, so the
//! cache naturally covers prepared statements re-executed with the same
//! parameter values, and re-binding with different `$user_id` produces a
//! different fingerprint (a different instantiated query).
//!
//! Conditional verdicts (rule C3) depend on the database *state*, so
//! they carry the data version they were computed at and expire on any
//! mutation; unconditional verdicts and rejections survive data changes
//! (they quantify over all states) but not authorization/schema changes,
//! which bump the policy epoch and clear everything.
//!
//! ## Concurrency
//!
//! The map is split into [`SHARDS`] independently-locked shards selected
//! by the key's hash, so concurrent lookups for different keys rarely
//! contend, and the hit/miss counters are a single packed [`AtomicU64`]
//! — one relaxed `fetch_add` per lookup instead of the three mutex
//! acquisitions (entries + hits + misses) the first implementation paid.

use crate::nontruman::Verdict;
use fgac_algebra::Plan;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. A power of two so shard
/// selection is a mask.
const SHARDS: usize = 16;

/// One lookup outcome unit in the packed counter word: hits live in the
/// high 32 bits, misses in the low 32.
const HIT_UNIT: u64 = 1 << 32;
const MISS_UNIT: u64 = 1;

/// Cache lookup result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit(Verdict),
    Miss,
}

/// A coherent point-in-time view of the cache counters.
///
/// Both counters come from a *single* atomic load of the packed counter
/// word, so a snapshot can never observe a lookup half-applied (a hit
/// counted but visible as neither hit nor miss, or vice versa) — the
/// tearing the old two-lock `stats()` allowed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Live entries across all shards at (approximately) snapshot time.
    pub entries: usize,
}

impl CacheStats {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in [0, 1]; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    verdict: Verdict,
    data_version: u64,
}

/// A concurrent, sharded validity cache.
#[derive(Debug)]
pub struct ValidityCache {
    shards: [Mutex<HashMap<(String, u64), Entry>>; SHARDS],
    /// `hits << 32 | misses`, updated with one relaxed fetch_add per
    /// lookup. Each half holds 2^32 lookups; the process-lifetime counts
    /// this engine sees stay far below that.
    counters: AtomicU64,
}

impl Default for ValidityCache {
    fn default() -> Self {
        ValidityCache {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            counters: AtomicU64::new(0),
        }
    }
}

impl ValidityCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fingerprint of a normalized bound plan.
    pub fn fingerprint(plan: &Plan) -> u64 {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        h.finish()
    }

    /// Fingerprint of a bound plan *in a session context*. Verdicts
    /// depend on every session parameter (views like
    /// `... where $hour >= 9` instantiate differently per session), so
    /// the parameters are part of the key — not just the user.
    pub fn fingerprint_in_session(plan: &Plan, params: &fgac_algebra::ParamScope) -> u64 {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        params.hash(&mut h);
        h.finish()
    }

    fn shard(&self, user: &str, fingerprint: u64) -> &Mutex<HashMap<(String, u64), Entry>> {
        let mut h = DefaultHasher::new();
        user.hash(&mut h);
        fingerprint.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    fn count_hit(&self) {
        self.counters.fetch_add(HIT_UNIT, Ordering::Relaxed);
    }

    fn count_miss(&self) {
        self.counters.fetch_add(MISS_UNIT, Ordering::Relaxed);
    }

    /// Looks up a verdict for (user, plan) at the given data version.
    pub fn lookup(&self, user: &str, fingerprint: u64, data_version: u64) -> CacheOutcome {
        let shard = self.shard(user, fingerprint).lock();
        match shard.get(&(user.to_string(), fingerprint)) {
            Some(e) => {
                // Conditional verdicts are state-dependent; Invalid
                // verdicts may become Conditional after inserts (the C3
                // probe can flip from empty to non-empty). Both are
                // state-pinned; only Unconditional survives data changes.
                if e.verdict != Verdict::Unconditional && e.data_version != data_version {
                    drop(shard);
                    self.count_miss();
                    return CacheOutcome::Miss;
                }
                let verdict = e.verdict;
                drop(shard);
                self.count_hit();
                CacheOutcome::Hit(verdict)
            }
            None => {
                drop(shard);
                self.count_miss();
                CacheOutcome::Miss
            }
        }
    }

    /// Records a verdict.
    pub fn store(&self, user: &str, fingerprint: u64, data_version: u64, verdict: Verdict) {
        self.shard(user, fingerprint).lock().insert(
            (user.to_string(), fingerprint),
            Entry {
                verdict,
                data_version,
            },
        );
    }

    /// Clears everything — required when views, grants, or schema change
    /// (a new policy epoch).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// (hits, misses) counters — experiment E5 instrumentation. The pair
    /// comes from one atomic load, so it is internally consistent.
    pub fn stats(&self) -> (u64, u64) {
        let packed = self.counters.load(Ordering::Relaxed);
        (packed >> 32, packed & 0xFFFF_FFFF)
    }

    /// A coherent snapshot of counters and occupancy.
    pub fn snapshot(&self) -> CacheStats {
        let (hits, misses) = self.stats();
        CacheStats {
            hits,
            misses,
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::Schema;

    fn plan(table: &str) -> Plan {
        Plan::scan(table, Schema::new(vec![]))
    }

    #[test]
    fn unconditional_survives_data_changes() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Unconditional);
        assert_eq!(c.lookup("11", fp, 99), CacheOutcome::Hit(Verdict::Unconditional));
    }

    #[test]
    fn conditional_expires_on_data_change() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Conditional);
        assert_eq!(c.lookup("11", fp, 1), CacheOutcome::Hit(Verdict::Conditional));
        assert_eq!(c.lookup("11", fp, 2), CacheOutcome::Miss);
    }

    #[test]
    fn invalid_expires_on_data_change() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Invalid);
        assert_eq!(c.lookup("11", fp, 2), CacheOutcome::Miss);
    }

    #[test]
    fn per_user_keys() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Unconditional);
        assert_eq!(c.lookup("12", fp, 1), CacheOutcome::Miss);
    }

    #[test]
    fn distinct_plans_have_distinct_fingerprints() {
        assert_ne!(
            ValidityCache::fingerprint(&plan("a")),
            ValidityCache::fingerprint(&plan("b"))
        );
    }

    #[test]
    fn clear_and_stats() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Unconditional);
        assert_eq!(c.len(), 1);
        let _ = c.lookup("11", fp, 1);
        let _ = c.lookup("11", fp + 1, 1);
        assert_eq!(c.stats(), (1, 1));
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn snapshot_is_consistent_with_counters() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("u", fp, 0, Verdict::Unconditional);
        for _ in 0..5 {
            let _ = c.lookup("u", fp, 0);
        }
        let _ = c.lookup("u", fp ^ 1, 0);
        let snap = c.snapshot();
        assert_eq!((snap.hits, snap.misses), (5, 1));
        assert_eq!(snap.lookups(), 6);
        assert!(snap.hit_rate() > 0.8);
        assert_eq!(snap.entries, 1);
    }

    #[test]
    fn keys_spread_across_shards() {
        // Not a correctness requirement, but the sharding is pointless if
        // everything lands in one shard; check a spread of keys occupies
        // several.
        let c = ValidityCache::new();
        for i in 0..64u64 {
            c.store(&format!("user{i}"), i.wrapping_mul(0x9E37_79B9_7F4A_7C15), 0, Verdict::Unconditional);
        }
        let occupied = c.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(occupied >= SHARDS / 2, "only {occupied} shards occupied");
    }
}
