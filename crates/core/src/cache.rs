//! Validity-check caching (the Section 5.6 optimizations).
//!
//! "Most uses of a database are from application programs, which execute
//! the same queries repeatedly ... If the same query is reissued multiple
//! times in a session, we can cache the results of the validity check
//! (assuming no underlying data on which it depends changes during the
//! session)."
//!
//! Keyed on `(user, fingerprint of the normalized bound plan)`, so the
//! cache naturally covers prepared statements re-executed with the same
//! parameter values, and re-binding with different `$user_id` produces a
//! different fingerprint (a different instantiated query).
//!
//! Conditional verdicts (rule C3) depend on the database *state*, so
//! they carry the data version they were computed at and expire on any
//! mutation; unconditional verdicts and rejections survive data changes
//! (they quantify over all states) but not authorization/schema changes,
//! which bump the policy epoch and clear everything.

use crate::nontruman::Verdict;
use fgac_algebra::Plan;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Cache lookup result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    Hit(Verdict),
    Miss,
}

#[derive(Debug, Clone)]
struct Entry {
    verdict: Verdict,
    data_version: u64,
}

/// A concurrent validity cache.
#[derive(Debug, Default)]
pub struct ValidityCache {
    entries: Mutex<HashMap<(String, u64), Entry>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
}

impl ValidityCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fingerprint of a normalized bound plan.
    pub fn fingerprint(plan: &Plan) -> u64 {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        h.finish()
    }

    /// Fingerprint of a bound plan *in a session context*. Verdicts
    /// depend on every session parameter (views like
    /// `... where $hour >= 9` instantiate differently per session), so
    /// the parameters are part of the key — not just the user.
    pub fn fingerprint_in_session(plan: &Plan, params: &fgac_algebra::ParamScope) -> u64 {
        let mut h = DefaultHasher::new();
        plan.hash(&mut h);
        params.hash(&mut h);
        h.finish()
    }

    /// Looks up a verdict for (user, plan) at the given data version.
    pub fn lookup(&self, user: &str, fingerprint: u64, data_version: u64) -> CacheOutcome {
        let entries = self.entries.lock();
        match entries.get(&(user.to_string(), fingerprint)) {
            Some(e) => {
                // Conditional verdicts are state-dependent.
                if e.verdict == Verdict::Conditional && e.data_version != data_version {
                    *self.misses.lock() += 1;
                    return CacheOutcome::Miss;
                }
                // Invalid verdicts may become Conditional after inserts
                // (the C3 probe can flip from empty to non-empty), so
                // they are also state-pinned.
                if e.verdict == Verdict::Invalid && e.data_version != data_version {
                    *self.misses.lock() += 1;
                    return CacheOutcome::Miss;
                }
                *self.hits.lock() += 1;
                CacheOutcome::Hit(e.verdict)
            }
            None => {
                *self.misses.lock() += 1;
                CacheOutcome::Miss
            }
        }
    }

    /// Records a verdict.
    pub fn store(&self, user: &str, fingerprint: u64, data_version: u64, verdict: Verdict) {
        self.entries.lock().insert(
            (user.to_string(), fingerprint),
            Entry {
                verdict,
                data_version,
            },
        );
    }

    /// Clears everything — required when views, grants, or schema change
    /// (a new policy epoch).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// (hits, misses) counters — experiment E5 instrumentation.
    pub fn stats(&self) -> (u64, u64) {
        (*self.hits.lock(), *self.misses.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::Schema;

    fn plan(table: &str) -> Plan {
        Plan::scan(table, Schema::new(vec![]))
    }

    #[test]
    fn unconditional_survives_data_changes() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Unconditional);
        assert_eq!(c.lookup("11", fp, 99), CacheOutcome::Hit(Verdict::Unconditional));
    }

    #[test]
    fn conditional_expires_on_data_change() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Conditional);
        assert_eq!(c.lookup("11", fp, 1), CacheOutcome::Hit(Verdict::Conditional));
        assert_eq!(c.lookup("11", fp, 2), CacheOutcome::Miss);
    }

    #[test]
    fn invalid_expires_on_data_change() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Invalid);
        assert_eq!(c.lookup("11", fp, 2), CacheOutcome::Miss);
    }

    #[test]
    fn per_user_keys() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Unconditional);
        assert_eq!(c.lookup("12", fp, 1), CacheOutcome::Miss);
    }

    #[test]
    fn distinct_plans_have_distinct_fingerprints() {
        assert_ne!(
            ValidityCache::fingerprint(&plan("a")),
            ValidityCache::fingerprint(&plan("b"))
        );
    }

    #[test]
    fn clear_and_stats() {
        let c = ValidityCache::new();
        let fp = ValidityCache::fingerprint(&plan("t"));
        c.store("11", fp, 1, Verdict::Unconditional);
        assert_eq!(c.len(), 1);
        let _ = c.lookup("11", fp, 1);
        let _ = c.lookup("11", fp + 1, 1);
        assert_eq!(c.stats(), (1, 1));
        c.clear();
        assert!(c.is_empty());
    }
}
