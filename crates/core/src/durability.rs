//! Durable engines: WAL commit points, snapshots, and recovery.
//!
// Commit/recovery code must never panic (see clippy.toml); bubble a
// Result instead. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]
//!
//! A durable engine is an ordinary [`Engine`] attached to a
//! [`fgac_wal::WalStore`]. Every committed state change is logged:
//!
//! * **DDL** (tables, views, inclusion dependencies) — apply-then-log
//!   with structural undo: if the WAL append fails, the catalog change
//!   is rolled back and the statement fails as a whole.
//! * **DML** — physical [`fgac_storage::TableDelta`]s recorded by the
//!   storage layer, logged after the statement succeeds. If the append
//!   fails, the pre-statement table snapshot is restored. A record is
//!   written even when zero rows changed, so replay reproduces the data
//!   version exactly.
//! * **Policy operations** (grants, revocations, roles, delegation,
//!   constraint visibility) — log-then-apply: the in-memory application
//!   is infallible, so nothing needs undoing and the grant tables never
//!   run ahead of the log.
//!
//! ## Recovery (`Engine::open`)
//!
//! Recovery loads the snapshot (if any), replays the log tail, and
//! returns an engine equal to the committed prefix of the crashed one.
//! It is **fail-closed**: a torn tail is truncated and reported, but a
//! checksum failure on a policy record or the snapshot refuses to serve
//! ([`Error::Corrupt`]). Recovered engines bump the policy epoch past
//! the replayed value and start with cold plan/validity caches, so no
//! verdict cached before the crash can ever be served after it.
//!
//! ## Durability levels
//!
//! Appends always reach the OS before a statement is acknowledged, so a
//! *process* crash (including drop-without-[`Engine::close`], which is a
//! supported way to exit) loses nothing. Surviving power loss requires
//! fsync: set [`DurabilityOptions::sync_on_commit`], or call
//! [`Engine::sync`] / [`Engine::close`] at a boundary you choose.

use crate::engine::Engine;
use crate::invalidation::PolicyDelta;
use fgac_sql::Statement;
use fgac_storage::TableSnapshot;
use fgac_types::{Error, Ident, Result};
use fgac_wal::{GrantsState, SnapshotState, TableState, WalRecord, WalStore};
use std::path::Path;

/// Tuning knobs for a durable engine.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Fsync after every commit. Off by default: appends still reach the
    /// OS synchronously (process-crash safe); power-loss durability of
    /// the last few commits then depends on [`Engine::sync`]/
    /// [`Engine::close`].
    pub sync_on_commit: bool,
    /// Install a snapshot and rotate the log every N records
    /// (0 = only on explicit [`Engine::snapshot_now`]).
    pub snapshot_every: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            sync_on_commit: false,
            snapshot_every: 1024,
        }
    }
}

/// What [`Engine::open_with`] found and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// LSN of the loaded snapshot, if one existed.
    pub snapshot_lsn: Option<u64>,
    /// Log records scanned (including any below the snapshot LSN).
    pub records_scanned: usize,
    /// Records actually replayed into the engine.
    pub records_replayed: usize,
    /// Bytes of torn tail truncated from the log (0 = clean shutdown).
    pub truncated_tail_bytes: u64,
}

/// The engine's attachment to its log.
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) store: WalStore,
    pub(crate) opts: DurabilityOptions,
}

impl Engine {
    /// Opens (or initializes) a durable engine in `dir`.
    ///
    /// An empty/missing directory becomes a fresh durable engine; an
    /// existing one is recovered: snapshot + log tail replayed, torn
    /// tail truncated, corrupt policy state refused with
    /// [`Error::Corrupt`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Engine> {
        Self::open_with(dir, DurabilityOptions::default()).map(|(e, _)| e)
    }

    /// [`Engine::open`] with explicit options, also returning what
    /// recovery found.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: DurabilityOptions,
    ) -> Result<(Engine, RecoveryReport)> {
        let dir = dir.as_ref();
        if !dir.join("wal.log").exists() {
            // Other WAL artifacts without a log mean this directory
            // *held* durable state that is now partially gone (partial
            // delete, botched restore). Initializing fresh here would
            // later overwrite the survivors — fail closed instead.
            for leftover in ["snapshot.fgs", "snapshot.tmp", "wal.tmp"] {
                if dir.join(leftover).exists() {
                    return Err(Error::Corrupt(format!(
                        "{} exists but wal.log is missing in {}: refusing to initialize \
                         a fresh store over remnants of durable state",
                        leftover,
                        dir.display()
                    )));
                }
            }
            let store = WalStore::create(dir)?;
            let mut engine = Engine::new();
            engine.attach(Durability { store, opts });
            return Ok((engine, RecoveryReport::default()));
        }

        let recovered = WalStore::recover(dir)?;
        let mut engine = Engine::new();
        let min_lsn = recovered.snapshot.as_ref().map_or(0, |s| s.lsn);
        if let Some(snapshot) = recovered.snapshot {
            engine.install_snapshot_state(snapshot)?;
        }
        let mut replayed = 0usize;
        for (lsn, record) in recovered.records {
            if lsn < min_lsn {
                // Already folded into the snapshot (crash between
                // snapshot installation and log rotation).
                continue;
            }
            engine.replay_record(record).map_err(|e| {
                Error::Corrupt(format!("wal replay failed at lsn {lsn}: {e}"))
            })?;
            replayed += 1;
        }

        // No verdict cached before the crash may survive it: the epoch
        // moves strictly past every epoch the crashed engine ever had a
        // cache entry under, and every cache — plans, verdicts, compiled
        // caps — starts cold (a recovered engine has no certificates to
        // revalidate against anyway).
        engine.apply_change(crate::invalidation::PolicyDelta::Full);
        engine.attach(Durability {
            store: recovered.store,
            opts,
        });

        Ok((
            engine,
            RecoveryReport {
                snapshot_lsn: recovered.report.snapshot_lsn,
                records_scanned: recovered.report.records_scanned,
                records_replayed: replayed,
                truncated_tail_bytes: recovered.report.truncated_tail_bytes,
            },
        ))
    }

    fn attach(&mut self, durability: Durability) {
        self.db.set_delta_recording(true);
        self.durability = Some(durability);
    }

    /// Whether this engine writes a WAL.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Flushes and fsyncs the WAL, then shuts the engine down. Dropping
    /// without calling this is a supported crash: recovery replays the
    /// log and loses nothing that was acknowledged.
    ///
    /// Idempotent in effect: the first call syncs and marks the engine
    /// closed; a second call (or any statement after close) returns a
    /// clean [`Error::Unsupported`] instead of re-syncing or panicking.
    /// Taking `&mut self` rather than `self` is what lets a shared,
    /// concurrently-referenced engine ([`crate::SharedEngine`]) be shut
    /// down at all.
    pub fn close(&mut self) -> Result<()> {
        self.ensure_open().map_err(|_| {
            Error::Unsupported("engine is already closed (double close)".into())
        })?;
        let result = self.sync();
        // Closed even if the final sync failed: the engine must not
        // accept further commits it could no longer make durable.
        self.closed = true;
        result
    }

    /// Fsyncs the WAL without closing: everything committed so far
    /// becomes power-loss durable.
    pub fn sync(&mut self) -> Result<()> {
        match self.durability.as_mut() {
            Some(d) => d.store.sync(),
            None => Ok(()),
        }
    }

    /// Installs a full snapshot now and rotates the log. Recovery after
    /// this loads the snapshot and replays only newer records.
    pub fn snapshot_now(&mut self) -> Result<()> {
        self.ensure_open()?;
        let Some(mut d) = self.durability.take() else {
            return Err(Error::Unsupported(
                "snapshot_now: engine has no durability (use Engine::open)".into(),
            ));
        };
        let state = self.snapshot_state(d.store.next_lsn());
        let outcome = d.store.install_snapshot(&state);
        self.durability = Some(d);
        outcome
    }

    /// Appends one committed change. A no-op for in-memory engines.
    pub(crate) fn log_commit(&mut self, record: WalRecord) -> Result<()> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        let sync = d.opts.sync_on_commit;
        d.store.append(&record, sync)?;
        Ok(())
    }

    /// Commits a successful DML statement: logs the recorded deltas and
    /// bumps the data version. On WAL failure the pre-statement snapshot
    /// is restored and the statement fails — the database never runs
    /// ahead of the log.
    pub(crate) fn commit_dml(&mut self, undo: Option<TableSnapshot>) -> Result<()> {
        if self.durability.is_some() {
            let deltas = self.db.take_deltas();
            if let Err(e) = self.log_commit(WalRecord::Dml { deltas }) {
                if let Some(snap) = undo {
                    // The table existed when the snapshot was taken and
                    // DDL is admin-only, so this cannot fail.
                    let _ = self.db.restore_table(snap);
                }
                return Err(e);
            }
        }
        self.bump();
        self.maybe_snapshot();
        Ok(())
    }

    /// Drops deltas recorded by a statement that failed or rolled back.
    pub(crate) fn discard_deltas(&mut self) {
        if self.durability.is_some() {
            let _ = self.db.take_deltas();
        }
    }

    /// Installs a snapshot when the log has grown past the configured
    /// threshold. Best-effort: a snapshot failure does not fail the
    /// already-committed statement (the log still holds every record).
    pub(crate) fn maybe_snapshot(&mut self) {
        let due = match self.durability.as_ref() {
            Some(d) => d.opts.snapshot_every > 0
                && d.store.records_in_log() >= d.opts.snapshot_every,
            None => false,
        };
        if due {
            let _ = self.snapshot_now();
        }
    }

    // ---------------- snapshot state conversion ----------------

    /// Materializes the engine's full durable state at log position
    /// `lsn`. Deterministic: catalog iteration is BTreeMap-ordered and
    /// view/constraint bodies print to canonical SQL.
    pub(crate) fn snapshot_state(&self, lsn: u64) -> SnapshotState {
        let catalog = self.db.catalog();
        let tables = catalog
            .tables()
            .map(|meta| TableState {
                name: meta.name.clone(),
                schema: meta.schema.clone(),
                primary_key: meta.primary_key.clone(),
                rows: self
                    .db
                    .table(&meta.name)
                    .map(|t| t.rows().to_vec())
                    .unwrap_or_default(),
            })
            .collect();
        let views_sql = catalog
            .views()
            .map(|v| {
                fgac_sql::print_statement(&Statement::CreateView(fgac_sql::CreateView {
                    name: v.name.clone(),
                    authorization: v.authorization,
                    query: v.query.clone(),
                }))
            })
            .collect();
        let inclusion_deps_sql = catalog
            .inclusion_dependencies()
            .iter()
            .map(|d| {
                fgac_sql::print_statement(&Statement::CreateInclusionDependency(
                    fgac_sql::CreateInclusionDependency {
                        name: d.name.clone(),
                        src_table: d.src_table.clone(),
                        src_columns: d.src_columns.clone(),
                        src_filter: d.src_filter.clone(),
                        dst_table: d.dst_table.clone(),
                        dst_columns: d.dst_columns.clone(),
                        dst_filter: d.dst_filter.clone(),
                    },
                ))
            })
            .collect();
        let grants = GrantsState {
            views: self
                .grants
                .view_grants()
                .iter()
                .map(|(p, vs)| (p.clone(), vs.iter().cloned().collect()))
                .collect(),
            constraints: self
                .grants
                .constraint_grants()
                .iter()
                .map(|(p, cs)| (p.clone(), cs.iter().cloned().collect()))
                .collect(),
            update_auths: self
                .grants
                .update_grants()
                .iter()
                .map(|(p, auths)| {
                    (
                        p.clone(),
                        auths
                            .iter()
                            .map(|a| {
                                fgac_sql::print_statement(&Statement::Authorize(a.clone()))
                            })
                            .collect(),
                    )
                })
                .collect(),
            roles: self
                .grants
                .role_memberships()
                .iter()
                .map(|(u, rs)| (u.clone(), rs.iter().cloned().collect()))
                .collect(),
        };
        SnapshotState {
            lsn,
            data_version: self.data_version,
            policy_epoch: self.policy_epoch,
            tables,
            foreign_keys: self.db.catalog().foreign_keys().to_vec(),
            views_sql,
            inclusion_deps_sql,
            grants,
        }
    }

    /// A canonical byte encoding of the engine's durable state —
    /// tables, catalog, grants, and the data version — excluding the
    /// policy epoch (recovery bumps it deliberately). Two engines with
    /// equal fingerprints return identical verdicts and query results.
    pub fn state_fingerprint(&self) -> Vec<u8> {
        use fgac_types::wire::WireEncode;
        let mut state = self.snapshot_state(0);
        state.policy_epoch = 0;
        state.to_bytes()
    }

    /// Rebuilds engine state from a snapshot. Counters are restored
    /// last, overwriting the bumps the rebuild itself produced.
    fn install_snapshot_state(&mut self, snap: SnapshotState) -> Result<()> {
        for t in &snap.tables {
            self.db
                .create_table(t.name.clone(), t.schema.clone(), t.primary_key.clone())?;
        }
        for t in snap.tables {
            for row in t.rows {
                self.db.insert_unchecked(&t.name, row)?;
            }
        }
        for fk in snap.foreign_keys {
            self.db.add_foreign_key(fk)?;
        }
        for sql in snap.views_sql.iter().chain(&snap.inclusion_deps_sql) {
            let stmt = fgac_sql::parse_statement(sql)?;
            self.apply_ddl(&stmt)?;
        }
        for (principal, views) in snap.grants.views {
            for v in views {
                self.grants.grant_view(principal.clone(), v);
            }
        }
        for (principal, constraints) in snap.grants.constraints {
            for c in constraints {
                self.grants.grant_constraint(principal.clone(), c);
            }
        }
        for (principal, auths) in snap.grants.update_auths {
            for sql in auths {
                match fgac_sql::parse_statement(&sql)? {
                    Statement::Authorize(a) => self.grants.grant_update(principal.clone(), a),
                    _ => {
                        return Err(Error::Corrupt(format!(
                            "snapshot update authorization is not an AUTHORIZE statement: {sql}"
                        )))
                    }
                }
            }
        }
        for (user, roles) in snap.grants.roles {
            for r in roles {
                self.grants.add_role(user.clone(), r);
            }
        }
        self.data_version = snap.data_version;
        self.policy_epoch = snap.policy_epoch;
        Ok(())
    }

    /// Replays one log record. Mirrors the live commit paths exactly —
    /// including epoch/data-version bumps — but without re-logging
    /// (durability is not attached yet during replay).
    fn replay_record(&mut self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::Ddl { sql } => {
                let stmt = fgac_sql::parse_statement(&sql)?;
                self.apply_ddl(&stmt)
            }
            WalRecord::Dml { deltas } => {
                for delta in deltas {
                    self.db.apply_delta(delta)?;
                }
                self.bump();
                Ok(())
            }
            WalRecord::GrantView { principal, view } => {
                self.grants.grant_view(principal.clone(), view.as_str());
                self.apply_change(PolicyDelta::GrantView {
                    principal,
                    view: Ident::new(view),
                });
                Ok(())
            }
            WalRecord::RevokeView { principal, view } => {
                let v = Ident::new(view);
                self.grants.revoke_view(&principal, &v);
                self.apply_change(PolicyDelta::RevokeView { principal, view: v });
                Ok(())
            }
            WalRecord::GrantConstraint { principal, name } => {
                self.grants.grant_constraint(principal.clone(), name.as_str());
                self.apply_change(PolicyDelta::GrantConstraint {
                    principal,
                    name: Ident::new(name),
                });
                Ok(())
            }
            WalRecord::GrantUpdate { principal, sql } => match fgac_sql::parse_statement(&sql)? {
                Statement::Authorize(a) => {
                    self.grants.grant_update(principal, a);
                    Ok(())
                }
                _ => Err(Error::Corrupt(format!(
                    "logged update authorization is not an AUTHORIZE statement: {sql}"
                ))),
            },
            WalRecord::AddRole { user, role } => {
                self.grants.add_role(user.clone(), role);
                self.apply_change(PolicyDelta::AddRole { user });
                Ok(())
            }
            WalRecord::DelegateView { to, view, .. } => {
                // Validation (delegator holds the view) passed at log
                // time; replay applies the effect.
                self.grants.grant_view(to.clone(), view.as_str());
                self.apply_change(PolicyDelta::GrantView {
                    principal: to,
                    view: Ident::new(view),
                });
                Ok(())
            }
        }
    }
}
