//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every WAL frame and the snapshot payload carry a CRC so recovery can
//! distinguish a torn tail (partial final record — expected after a
//! crash) from corruption (checksum mismatch — fail closed for policy
//! records). The table is built at compile time; no external crate.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (IEEE, reflected, init/xorout `0xFFFFFFFF`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_detected() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
