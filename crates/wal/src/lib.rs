//! # fgac-wal
//!
// Commit/recovery code must never panic (see clippy.toml): a panic
// between the data mutation and the WAL append is exactly the torn
// state the log exists to prevent. Test code is exempt.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]
//!
//! Crash-consistent durability for the fgac engine: an append-only,
//! length-prefixed, CRC-checksummed write-ahead log plus full-state
//! snapshots.
//!
//! The Non-Truman model (Rizvi et al., SIGMOD 2004) is only trustworthy
//! if the authorization state the validator consults — views, grants,
//! constraint visibility — survives failures *exactly*: a lost REVOKE or
//! a half-applied UPDATE silently breaks the unconditional-validity
//! guarantee. Hence the asymmetric failure policy implemented here:
//!
//! * a **torn tail** (partial final record, the normal crash signature)
//!   is truncated and reported;
//! * a **checksum failure on any policy record** refuses to serve
//!   ([`fgac_types::Error::Corrupt`]) rather than guessing;
//! * a checksum failure on the *final* record is given torn-write
//!   leniency only when the frame header — whose class byte is
//!   protected by its own checksum — marks it as a data record.
//!
//! This crate owns the byte format and file management; `fgac-core`
//! owns what gets logged and how records replay into an engine
//! (`Engine::open`). See DESIGN.md §Durability for the full scheme.

mod crc;
mod log;
mod record;
mod snapshot;

pub use crc::crc32;
pub use log::{Recovered, RecoveryReport, WalStore};
pub use record::{WalRecord, CLASS_DATA, CLASS_POLICY, FRAME_HEADER_LEN};
pub use snapshot::{GrantsState, SnapshotState, TableState};
