//! The on-disk log: framing, append, torn-tail scanning, snapshot
//! installation, and the crash windows each step is designed to survive.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/wal.log       header (magic ‖ base_lsn) + frames
//! <dir>/snapshot.fgs  magic + one checksummed SnapshotState
//! <dir>/*.tmp         in-flight atomic writes (ignored by recovery)
//! ```
//!
//! Each frame is `len(u32 LE) ‖ crc32(u32 LE) ‖ payload`. Record `i` of a
//! log with header `base_lsn = b` has LSN `b + i`. A snapshot stores the
//! LSN up to which it is current; records below it are skipped on replay,
//! which closes the crash window between "snapshot renamed into place"
//! and "log rotated".
//!
//! ## Failure semantics
//!
//! * **Append**: the frame is written with one `write_all`. If the write
//!   itself errors, the on-disk suffix is unknown, so the store is
//!   *poisoned* (all later appends fail) — the next open repairs the tail.
//! * **Flush/sync failure** (`wal::flush` fault site): the record may or
//!   may not have reached disk, so acknowledging it would be a lie and
//!   forgetting it silently would lose a committed change. The append is
//!   rolled back by truncating to the pre-append length and the caller
//!   gets the error — the statement fails as a whole. If even the
//!   truncate fails, the store is poisoned.
//! * **Torn write** (`wal::append_torn` fault site): half the frame is
//!   written and the store poisons itself, simulating a power cut
//!   mid-record. Recovery classifies the partial frame as a torn tail
//!   and truncates it.
//! * **Scan**: a frame that does not fit before EOF is a torn tail —
//!   truncated. A frame whose checksum fails is *corruption*: fail closed
//!   ([`Error::Corrupt`]) unless it is the final frame **and** its
//!   payload classifies as a data record, in which case it is one torn
//!   write older and also truncated. Policy records never get tail
//!   leniency.

use crate::crc::crc32;
use crate::record::{frame, payload_is_policy, WalRecord};
use crate::snapshot::SnapshotState;
use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 8] = b"FGACWAL1";
const SNAP_MAGIC: &[u8; 8] = b"FGACSNP1";
const WAL_HEADER_LEN: u64 = 16;

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Execution(format!("wal {what}: {e}"))
}

/// What recovery found and repaired while opening a directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded, and its LSN.
    pub snapshot_lsn: Option<u64>,
    /// Log records scanned (before LSN filtering).
    pub records_scanned: usize,
    /// Bytes of torn tail truncated from the log (0 = clean shutdown).
    pub truncated_tail_bytes: u64,
}

/// Result of scanning a directory: the snapshot (if any), the decoded
/// log records with their LSNs, and a store positioned for appending.
#[derive(Debug)]
pub struct Recovered {
    pub snapshot: Option<SnapshotState>,
    pub records: Vec<(u64, WalRecord)>,
    pub store: WalStore,
    pub report: RecoveryReport,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    file: File,
    /// Current log length in bytes (header included).
    len: u64,
    base_lsn: u64,
    next_lsn: u64,
    /// Once poisoned, every append fails with this reason. Set when the
    /// on-disk suffix is in an unknown state; cleared only by reopening
    /// (which repairs the tail).
    poisoned: Option<String>,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.fgs")
}

fn write_new_log(path: &Path, base_lsn: u64) -> Result<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
        .map_err(|e| io_err("create", e))?;
    let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(&base_lsn.to_le_bytes());
    file.write_all(&header).map_err(|e| io_err("header write", e))?;
    file.sync_data().map_err(|e| io_err("header sync", e))?;
    Ok(file)
}

fn open_append(path: &Path) -> Result<File> {
    OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err("open", e))
}

impl WalStore {
    /// Creates a fresh, empty log in `dir` (created if missing). Fails if
    /// a log already exists there — opening existing state must go
    /// through [`WalStore::recover`] so the tail gets repaired.
    pub fn create(dir: &Path) -> Result<WalStore> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let path = wal_path(dir);
        if path.exists() {
            return Err(Error::Execution(format!(
                "wal already exists at {}; use recovery to open it",
                path.display()
            )));
        }
        write_new_log(&path, 0)?;
        Ok(WalStore {
            dir: dir.to_path_buf(),
            file: open_append(&path)?,
            len: WAL_HEADER_LEN,
            base_lsn: 0,
            next_lsn: 0,
            poisoned: None,
        })
    }

    /// Scans `dir`, repairing a torn tail, and returns the snapshot, the
    /// decoded records, and a store positioned at the end of the log.
    ///
    /// Fail-closed rules are enforced here — see the module docs.
    pub fn recover(dir: &Path) -> Result<Recovered> {
        let mut report = RecoveryReport::default();
        let snapshot = load_snapshot(dir)?;
        report.snapshot_lsn = snapshot.as_ref().map(|s| s.lsn);

        let path = wal_path(dir);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", e))?;
        if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
            return Err(Error::Corrupt(format!(
                "wal header invalid in {}",
                path.display()
            )));
        }
        let base_lsn = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]);

        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let mut truncate_at: Option<usize> = None;
        while pos < bytes.len() {
            // Crash-during-recovery fault site: fires before anything in
            // this frame is trusted, so an aborted recovery changes no
            // state and a rerun sees the same bytes.
            #[cfg(feature = "fault-injection")]
            fgac_types::faults::hit("wal::recover")?;
            if pos + 8 > bytes.len() {
                // Not even a full frame header: torn tail.
                truncate_at = Some(pos);
                break;
            }
            let plen =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            let stored_crc = u32::from_le_bytes([
                bytes[pos + 4],
                bytes[pos + 5],
                bytes[pos + 6],
                bytes[pos + 7],
            ]);
            let end = pos + 8 + plen;
            if plen > bytes.len() || end > bytes.len() {
                // Payload runs past EOF: torn tail.
                truncate_at = Some(pos);
                break;
            }
            let payload = &bytes[pos + 8..end];
            let lsn = base_lsn + records.len() as u64;
            if crc32(payload) != stored_crc {
                let is_final = end == bytes.len();
                if is_final && !payload_is_policy(payload) {
                    // A torn write that happened to complete its length
                    // field: data record at the tail, truncate.
                    truncate_at = Some(pos);
                    break;
                }
                return Err(Error::Corrupt(format!(
                    "wal record {lsn}: checksum mismatch on a {} record",
                    if payload_is_policy(payload) {
                        "policy"
                    } else {
                        "non-final data"
                    }
                )));
            }
            let mut r = Reader::new(payload);
            let record = WalRecord::decode(&mut r)
                .and_then(|rec| r.expect_end().map(|()| rec))
                .map_err(|e| Error::Corrupt(format!("wal record {lsn}: {e}")))?;
            records.push((lsn, record));
            pos = end;
        }

        if let Some(at) = truncate_at {
            report.truncated_tail_bytes = (bytes.len() - at) as u64;
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("open for truncate", e))?;
            file.set_len(at as u64).map_err(|e| io_err("truncate", e))?;
            file.sync_data().map_err(|e| io_err("truncate sync", e))?;
        }
        report.records_scanned = records.len();

        let len = truncate_at.map_or(bytes.len(), |at| at) as u64;
        let next_lsn = base_lsn + records.len() as u64;
        Ok(Recovered {
            snapshot,
            records,
            store: WalStore {
                dir: dir.to_path_buf(),
                file: open_append(&path)?,
                len,
                base_lsn,
                next_lsn,
                poisoned: None,
            },
            report,
        })
    }

    /// LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records in the current log file (since the last snapshot).
    pub fn records_in_log(&self) -> u64 {
        self.next_lsn - self.base_lsn
    }

    /// Log length in bytes, header included.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn poison(&mut self, why: &str) {
        self.poisoned = Some(why.to_string());
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(why) => Err(Error::Execution(format!(
                "wal is poisoned ({why}); reopen the directory to recover"
            ))),
            None => Ok(()),
        }
    }

    /// Appends one record; with `sync`, also fsyncs before acknowledging.
    /// Returns the record's LSN.
    pub fn append(&mut self, record: &WalRecord, sync: bool) -> Result<u64> {
        self.check_poisoned()?;
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("wal::append")?;
        let payload = record.to_bytes();
        let framed = frame(&payload);

        #[cfg(feature = "fault-injection")]
        if let Err(e) = fgac_types::faults::hit("wal::append_torn") {
            // Power cut mid-record: half the frame lands, the writer dies.
            let half = framed.len() / 2;
            let _ = self.file.write_all(&framed[..half]);
            let _ = self.file.sync_data();
            self.poison("torn append");
            return Err(e);
        }

        let pre_len = self.len;
        if let Err(e) = self.file.write_all(&framed) {
            // How much of the frame landed is unknown.
            self.poison("partial append");
            return Err(io_err("append", e));
        }
        self.len += framed.len() as u64;

        let flushed: Result<()> = (|| {
            #[cfg(feature = "fault-injection")]
            fgac_types::faults::hit("wal::flush")?;
            if sync {
                self.file.sync_data().map_err(|e| io_err("sync", e))
            } else {
                Ok(())
            }
        })();
        if let Err(e) = flushed {
            // The record's durability is unknown; un-acknowledged-but-
            // durable would replay a change the caller saw fail, so roll
            // the append back entirely.
            match self.file.set_len(pre_len) {
                Ok(()) => self.len = pre_len,
                Err(_) => self.poison("flush-rollback truncate failed"),
            }
            return Err(e);
        }

        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Fsyncs the log (clean-shutdown path).
    pub fn sync(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.file.sync_data().map_err(|e| io_err("sync", e))
    }

    /// Atomically installs a snapshot and rotates the log.
    ///
    /// `state.lsn` must equal [`WalStore::next_lsn`]. Both files go
    /// through write-temp + fsync + rename; a crash between the two
    /// renames leaves the *old* log alongside the *new* snapshot, which
    /// replay handles by skipping records below the snapshot LSN.
    pub fn install_snapshot(&mut self, state: &SnapshotState) -> Result<()> {
        self.check_poisoned()?;
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("wal::snapshot")?;
        if state.lsn != self.next_lsn {
            return Err(Error::Internal(format!(
                "snapshot lsn {} != next lsn {}",
                state.lsn, self.next_lsn
            )));
        }
        let payload = state.to_bytes();
        let mut doc = Vec::with_capacity(16 + payload.len());
        doc.extend_from_slice(SNAP_MAGIC);
        doc.extend_from_slice(&frame(&payload));

        let tmp = self.dir.join("snapshot.tmp");
        let final_path = snapshot_path(&self.dir);
        write_atomic(&tmp, &final_path, &doc)?;

        // Rotate: a fresh log whose base LSN is the snapshot LSN.
        let wal_tmp = self.dir.join("wal.tmp");
        let final_wal = wal_path(&self.dir);
        {
            let file = write_new_log(&wal_tmp, state.lsn)?;
            drop(file);
        }
        std::fs::rename(&wal_tmp, &final_wal).map_err(|e| io_err("log rotate", e))?;
        self.file = open_append(&final_wal)?;
        self.len = WAL_HEADER_LEN;
        self.base_lsn = state.lsn;
        Ok(())
    }
}

fn write_atomic(tmp: &Path, final_path: &Path, bytes: &[u8]) -> Result<()> {
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(tmp)
            .map_err(|e| io_err("snapshot create", e))?;
        f.write_all(bytes).map_err(|e| io_err("snapshot write", e))?;
        f.sync_data().map_err(|e| io_err("snapshot sync", e))?;
    }
    std::fs::rename(tmp, final_path).map_err(|e| io_err("snapshot rename", e))
}

/// Loads and verifies the snapshot, if one exists. Any damage — bad
/// magic, bad checksum, truncation, undecodable payload — is
/// [`Error::Corrupt`]: the snapshot carries grant state and gets no
/// torn-tail leniency (it was renamed into place atomically, so a valid
/// installation is never partial).
fn load_snapshot(dir: &Path) -> Result<Option<SnapshotState>> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("snapshot read", e)),
    };
    let corrupt = |what: &str| Error::Corrupt(format!("snapshot {}: {what}", path.display()));
    if bytes.len() < 16 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic or truncated header"));
    }
    let plen = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
    let stored_crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if bytes.len() != 16 + plen {
        return Err(corrupt("length mismatch"));
    }
    let payload = &bytes[16..];
    if crc32(payload) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(payload);
    let state = SnapshotState::decode(&mut r).and_then(|s| r.expect_end().map(|()| s))?;
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "fgac-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::AddRole {
            user: format!("u{i}"),
            role: "student".into(),
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut store = WalStore::create(&dir).unwrap();
        for i in 0..5 {
            assert_eq!(store.append(&rec(i), false).unwrap(), i);
        }
        store.sync().unwrap();
        drop(store);
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 5);
        assert_eq!(recovered.report.truncated_tail_bytes, 0);
        for (i, (lsn, r)) in recovered.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64));
        }
        assert_eq!(recovered.store.next_lsn(), 5);
    }

    #[test]
    fn create_refuses_existing_log() {
        let dir = tmp_dir("exists");
        WalStore::create(&dir).unwrap();
        assert!(WalStore::create(&dir).is_err());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        drop(store);
        // Simulate a torn final record: append garbage that looks like a
        // frame header promising more bytes than exist.
        let path = wal_path(&dir);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]).unwrap();
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.report.truncated_tail_bytes, 10);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before - 10);
        // A second recovery is a no-op: same records, nothing truncated.
        let again = WalStore::recover(&dir).unwrap();
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.report.truncated_tail_bytes, 0);
    }

    #[test]
    fn corrupt_policy_record_fails_closed() {
        let dir = tmp_dir("corrupt-policy");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        drop(store);
        // Flip one payload bit of the (policy) record.
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn corrupt_final_data_record_is_torn_tail() {
        let dir = tmp_dir("corrupt-data");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), false).unwrap();
        store
            .append(&WalRecord::Dml { deltas: vec![] }, true)
            .unwrap();
        drop(store);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // damage the final (data) record's payload
        std::fs::write(&path, &bytes).unwrap();
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 1, "data tail dropped");
        assert!(recovered.report.truncated_tail_bytes > 0);
    }

    #[test]
    fn corrupt_non_final_data_record_fails_closed() {
        let dir = tmp_dir("corrupt-mid");
        let mut store = WalStore::create(&dir).unwrap();
        store
            .append(&WalRecord::Dml { deltas: vec![] }, false)
            .unwrap();
        store.append(&rec(1), true).unwrap();
        drop(store);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Damage the first record's last payload byte (it sits right
        // before the second frame's header).
        let dml_payload_len = WalRecord::Dml { deltas: vec![] }.to_bytes().len();
        let idx = WAL_HEADER_LEN as usize + 8 + dml_payload_len - 1;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn snapshot_roundtrip_and_rotation() {
        let dir = tmp_dir("snap");
        let mut store = WalStore::create(&dir).unwrap();
        for i in 0..3 {
            store.append(&rec(i), false).unwrap();
        }
        let state = SnapshotState {
            lsn: 3,
            data_version: 0,
            policy_epoch: 3,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        };
        store.install_snapshot(&state).unwrap();
        assert_eq!(store.records_in_log(), 0);
        store.append(&rec(3), true).unwrap();
        drop(store);
        let recovered = WalStore::recover(&dir).unwrap();
        let snap = recovered.snapshot.unwrap();
        assert_eq!(snap.lsn, 3);
        assert_eq!(recovered.records, vec![(3, rec(3))]);
    }

    #[test]
    fn corrupt_snapshot_fails_closed() {
        let dir = tmp_dir("snap-corrupt");
        let mut store = WalStore::create(&dir).unwrap();
        let state = SnapshotState {
            lsn: 0,
            data_version: 0,
            policy_epoch: 0,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        };
        store.install_snapshot(&state).unwrap();
        drop(store);
        let path = snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn snapshot_newer_than_log_skips_already_folded_records() {
        // Simulates a crash between snapshot rename and log rotation:
        // the snapshot says lsn=2 but the old log still holds lsns 0..2.
        let dir = tmp_dir("snap-race");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), false).unwrap();
        store.append(&rec(1), true).unwrap();
        let state = SnapshotState {
            lsn: 2,
            data_version: 0,
            policy_epoch: 2,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        };
        // Install the snapshot by hand WITHOUT rotating the log.
        let payload = state.to_bytes();
        let mut doc = Vec::new();
        doc.extend_from_slice(SNAP_MAGIC);
        doc.extend_from_slice(&frame(&payload));
        std::fs::write(snapshot_path(&dir), &doc).unwrap();
        drop(store);
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap().lsn, 2);
        // Both records are still scanned; the *caller* filters lsn < 2.
        assert_eq!(recovered.records.len(), 2);
    }
}
