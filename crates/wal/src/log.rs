//! The on-disk log: framing, append, torn-tail scanning, snapshot
//! installation, and the crash windows each step is designed to survive.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/wal.log       header (magic ‖ base_lsn) + frames
//! <dir>/snapshot.fgs  magic + one checksummed SnapshotState
//! <dir>/*.tmp         in-flight atomic writes (ignored by recovery)
//! ```
//!
//! Each frame is `len(u32 LE) ‖ class(u8) ‖ pcrc(u32 LE) ‖ hcrc(u32 LE)
//! ‖ payload` — see [`frame`] for why the class byte lives in the
//! header under its own checksum. Record `i` of a log with header
//! `base_lsn = b` has LSN `b + i`. A snapshot stores the LSN up to
//! which it is current; records below it are skipped on replay, which
//! closes the crash window between "snapshot renamed into place" and
//! "log rotated". Every rename is followed by an fsync of the
//! directory, so the two renames become durable in order; recovery
//! cross-checks them (a snapshot older than the log's `base_lsn` means
//! records were rotated away without a durable snapshot covering them —
//! fail closed).
//!
//! ## Failure semantics
//!
//! * **Append**: the frame is written with one `write_all`. If the write
//!   itself errors, the on-disk suffix is unknown, so the store is
//!   *poisoned* (all later appends fail) — the next open repairs the tail.
//! * **Flush/sync failure** (`wal::flush` fault site): the record may or
//!   may not have reached disk, so acknowledging it would be a lie and
//!   forgetting it silently would lose a committed change. The append is
//!   rolled back by truncating to the pre-append length and the caller
//!   gets the error — the statement fails as a whole. If even the
//!   truncate fails, the store is poisoned.
//! * **Torn write** (`wal::append_torn` fault site): half the frame is
//!   written and the store poisons itself, simulating a power cut
//!   mid-record. Recovery classifies the partial frame as a torn tail
//!   and truncates it.
//! * **Scan**: a frame whose header does not fit before EOF, or whose
//!   (header-validated) payload runs past EOF, is a torn tail —
//!   truncated. A full header whose own checksum fails is *corruption*
//!   ([`Error::Corrupt`]): a torn write lands a strict prefix of a
//!   valid frame, so it can shorten a header but never produce thirteen
//!   self-inconsistent bytes. With a valid header, a payload-checksum
//!   failure fails closed unless it is the final frame **and** the
//!   header's class byte marks a data record, in which case it is one
//!   torn write older and also truncated. Policy records never get tail
//!   leniency, and the decision never reads an unprotected byte.
//! * **Snapshot install** (`wal::rotate` fault site): the snapshot
//!   rename is made durable (file + directory fsync) before the log
//!   rotation rename is issued. Once the rotation rename happens, the
//!   old log's inode is unlinked — any failure before the store is
//!   reattached to the new file poisons it, because appending to the
//!   orphaned inode would acknowledge unrecoverable writes.

use crate::crc::crc32;
use crate::record::{frame, WalRecord, CLASS_DATA, CLASS_POLICY, FRAME_HEADER_LEN};
use crate::snapshot::SnapshotState;
use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Error, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 8] = b"FGACWAL2";
const SNAP_MAGIC: &[u8; 8] = b"FGACSNP2";
const WAL_HEADER_LEN: u64 = 16;

fn io_err(what: &str, e: std::io::Error) -> Error {
    Error::Execution(format!("wal {what}: {e}"))
}

/// What recovery found and repaired while opening a directory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded, and its LSN.
    pub snapshot_lsn: Option<u64>,
    /// Log records scanned (before LSN filtering).
    pub records_scanned: usize,
    /// Bytes of torn tail truncated from the log (0 = clean shutdown).
    pub truncated_tail_bytes: u64,
}

/// Result of scanning a directory: the snapshot (if any), the decoded
/// log records with their LSNs, and a store positioned for appending.
#[derive(Debug)]
pub struct Recovered {
    pub snapshot: Option<SnapshotState>,
    pub records: Vec<(u64, WalRecord)>,
    pub store: WalStore,
    pub report: RecoveryReport,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct WalStore {
    dir: PathBuf,
    file: File,
    /// Current log length in bytes (header included).
    len: u64,
    base_lsn: u64,
    next_lsn: u64,
    /// Once poisoned, every append fails with this reason. Set when the
    /// on-disk suffix is in an unknown state; cleared only by reopening
    /// (which repairs the tail).
    poisoned: Option<String>,
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.fgs")
}

fn write_new_log(path: &Path, base_lsn: u64) -> Result<File> {
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
        .map_err(|e| io_err("create", e))?;
    let mut header = Vec::with_capacity(WAL_HEADER_LEN as usize);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(&base_lsn.to_le_bytes());
    file.write_all(&header).map_err(|e| io_err("header write", e))?;
    file.sync_data().map_err(|e| io_err("header sync", e))?;
    Ok(file)
}

fn open_append(path: &Path) -> Result<File> {
    OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err("open", e))
}

/// Fsyncs the directory itself. A rename is only durable once the
/// directory entry pointing at the new inode has reached disk; without
/// this, power loss can reorder "snapshot renamed" and "log rotated"
/// or lose either one.
fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)
        .and_then(|d| d.sync_all())
        .map_err(|e| io_err("dir sync", e))
}

impl WalStore {
    /// Creates a fresh, empty log in `dir` (created if missing). Fails if
    /// a log already exists there — opening existing state must go
    /// through [`WalStore::recover`] so the tail gets repaired.
    pub fn create(dir: &Path) -> Result<WalStore> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let path = wal_path(dir);
        if path.exists() {
            return Err(Error::Execution(format!(
                "wal already exists at {}; use recovery to open it",
                path.display()
            )));
        }
        write_new_log(&path, 0)?;
        sync_dir(dir)?;
        Ok(WalStore {
            dir: dir.to_path_buf(),
            file: open_append(&path)?,
            len: WAL_HEADER_LEN,
            base_lsn: 0,
            next_lsn: 0,
            poisoned: None,
        })
    }

    /// Scans `dir`, repairing a torn tail, and returns the snapshot, the
    /// decoded records, and a store positioned at the end of the log.
    ///
    /// Fail-closed rules are enforced here — see the module docs.
    pub fn recover(dir: &Path) -> Result<Recovered> {
        let mut report = RecoveryReport::default();
        let snapshot = load_snapshot(dir)?;
        report.snapshot_lsn = snapshot.as_ref().map(|s| s.lsn);

        let path = wal_path(dir);
        let bytes = std::fs::read(&path).map_err(|e| io_err("read", e))?;
        if bytes.len() < WAL_HEADER_LEN as usize || &bytes[..8] != WAL_MAGIC {
            return Err(Error::Corrupt(format!(
                "wal header invalid in {}",
                path.display()
            )));
        }
        let base_lsn = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]);

        // LSN continuity: a rotated log (base_lsn > 0) promises that a
        // snapshot covers every record below base_lsn. If the snapshot
        // is missing or older — e.g. its rename was lost while the
        // rotation survived — acknowledged records in [snap, base) are
        // gone, so serving would silently drop committed changes.
        let snap_lsn = snapshot.as_ref().map_or(0, |s| s.lsn);
        if snap_lsn < base_lsn {
            return Err(Error::Corrupt(format!(
                "wal base_lsn {base_lsn} exceeds snapshot lsn {snap_lsn}: records in \
                 [{snap_lsn}, {base_lsn}) were rotated away without a durable snapshot"
            )));
        }

        let mut records = Vec::new();
        let mut pos = WAL_HEADER_LEN as usize;
        let mut truncate_at: Option<usize> = None;
        while pos < bytes.len() {
            // Crash-during-recovery fault site: fires before anything in
            // this frame is trusted, so an aborted recovery changes no
            // state and a rerun sees the same bytes.
            #[cfg(feature = "fault-injection")]
            fgac_types::faults::hit("wal::recover")?;
            let header_end = match pos.checked_add(FRAME_HEADER_LEN) {
                Some(e) if e <= bytes.len() => e,
                // Not even a full frame header: torn tail.
                _ => {
                    truncate_at = Some(pos);
                    break;
                }
            };
            let header = &bytes[pos..header_end];
            let plen = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
            let class = header[4];
            let stored_pcrc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
            let stored_hcrc = u32::from_le_bytes([header[9], header[10], header[11], header[12]]);
            let lsn = base_lsn + records.len() as u64;
            // A torn write lands a strict prefix of a valid frame, so
            // thirteen present-but-inconsistent header bytes can only be
            // corruption — and with an untrusted header neither `len`
            // nor `class` means anything. Fail closed before using them.
            if crc32(&header[..9]) != stored_hcrc {
                return Err(Error::Corrupt(format!(
                    "wal record {lsn}: frame header checksum mismatch"
                )));
            }
            if class != CLASS_POLICY && class != CLASS_DATA {
                return Err(Error::Corrupt(format!(
                    "wal record {lsn}: unknown frame class {class:#x}"
                )));
            }
            let end = match header_end.checked_add(plen) {
                Some(e) if e <= bytes.len() => e,
                // Valid header, payload runs past EOF (or a hostile
                // `len` would overflow the offset): torn tail.
                _ => {
                    truncate_at = Some(pos);
                    break;
                }
            };
            let payload = &bytes[header_end..end];
            if crc32(payload) != stored_pcrc {
                let is_final = end == bytes.len();
                if is_final && class == CLASS_DATA {
                    // A torn write that happened to complete its header:
                    // data record at the tail, truncate. The class comes
                    // from the header (validated above), never from the
                    // damaged payload.
                    truncate_at = Some(pos);
                    break;
                }
                return Err(Error::Corrupt(format!(
                    "wal record {lsn}: checksum mismatch on a {} record",
                    if class == CLASS_POLICY {
                        "policy"
                    } else {
                        "non-final data"
                    }
                )));
            }
            let mut r = Reader::new(payload);
            let record = WalRecord::decode(&mut r)
                .and_then(|rec| r.expect_end().map(|()| rec))
                .map_err(|e| Error::Corrupt(format!("wal record {lsn}: {e}")))?;
            if record.class() != class {
                return Err(Error::Corrupt(format!(
                    "wal record {lsn}: frame class {class:#x} does not match the decoded record"
                )));
            }
            records.push((lsn, record));
            pos = end;
        }

        if let Some(at) = truncate_at {
            report.truncated_tail_bytes = (bytes.len() - at) as u64;
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("open for truncate", e))?;
            file.set_len(at as u64).map_err(|e| io_err("truncate", e))?;
            file.sync_data().map_err(|e| io_err("truncate sync", e))?;
        }
        report.records_scanned = records.len();

        let len = truncate_at.map_or(bytes.len(), |at| at) as u64;
        let next_lsn = base_lsn + records.len() as u64;
        Ok(Recovered {
            snapshot,
            records,
            store: WalStore {
                dir: dir.to_path_buf(),
                file: open_append(&path)?,
                len,
                base_lsn,
                next_lsn,
                poisoned: None,
            },
            report,
        })
    }

    /// LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Records in the current log file (since the last snapshot).
    pub fn records_in_log(&self) -> u64 {
        self.next_lsn - self.base_lsn
    }

    /// Log length in bytes, header included.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn poison(&mut self, why: &str) {
        self.poisoned = Some(why.to_string());
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(why) => Err(Error::Execution(format!(
                "wal is poisoned ({why}); reopen the directory to recover"
            ))),
            None => Ok(()),
        }
    }

    /// Appends one record; with `sync`, also fsyncs before acknowledging.
    /// Returns the record's LSN.
    pub fn append(&mut self, record: &WalRecord, sync: bool) -> Result<u64> {
        self.check_poisoned()?;
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("wal::append")?;
        let payload = record.to_bytes();
        let framed = frame(&payload, record.class())?;

        #[cfg(feature = "fault-injection")]
        if let Err(e) = fgac_types::faults::hit("wal::append_torn") {
            // Power cut mid-record: half the frame lands, the writer dies.
            let half = framed.len() / 2;
            let _ = self.file.write_all(&framed[..half]);
            let _ = self.file.sync_data();
            self.poison("torn append");
            return Err(e);
        }

        let pre_len = self.len;
        if let Err(e) = self.file.write_all(&framed) {
            // How much of the frame landed is unknown.
            self.poison("partial append");
            return Err(io_err("append", e));
        }
        self.len += framed.len() as u64;

        // The immediate closure gives the cfg'd fault line a `?` scope;
        // without fault-injection it collapses to the `if`, which clippy
        // would otherwise flag.
        #[allow(clippy::redundant_closure_call)]
        let flushed: Result<()> = (|| {
            #[cfg(feature = "fault-injection")]
            fgac_types::faults::hit("wal::flush")?;
            if sync {
                self.file.sync_data().map_err(|e| io_err("sync", e))
            } else {
                Ok(())
            }
        })();
        if let Err(e) = flushed {
            // The record's durability is unknown; un-acknowledged-but-
            // durable would replay a change the caller saw fail, so roll
            // the append back entirely.
            match self.file.set_len(pre_len) {
                Ok(()) => self.len = pre_len,
                Err(_) => self.poison("flush-rollback truncate failed"),
            }
            return Err(e);
        }

        let lsn = self.next_lsn;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Fsyncs the log (clean-shutdown path).
    pub fn sync(&mut self) -> Result<()> {
        self.check_poisoned()?;
        self.file.sync_data().map_err(|e| io_err("sync", e))
    }

    /// Atomically installs a snapshot and rotates the log.
    ///
    /// `state.lsn` must equal [`WalStore::next_lsn`]. Both files go
    /// through write-temp + fsync + rename + directory fsync, in that
    /// order, so the snapshot rename is durable *before* the rotation
    /// rename is issued: after power loss the disk holds either the old
    /// pair, the new snapshot with the old log (replay skips records
    /// below the snapshot LSN), or the new pair — never a rotated log
    /// whose folded-away records have no durable snapshot (recovery
    /// cross-checks this and fails closed).
    ///
    /// Failures before the rotation rename leave the store on the old,
    /// intact log — the error is returned and the log still holds every
    /// record. Failures after it (`wal::rotate` fault site) poison the
    /// store: the old inode is unlinked, so acknowledging appends into
    /// it would lose them silently.
    pub fn install_snapshot(&mut self, state: &SnapshotState) -> Result<()> {
        self.check_poisoned()?;
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("wal::snapshot")?;
        if state.lsn != self.next_lsn {
            return Err(Error::Internal(format!(
                "snapshot lsn {} != next lsn {}",
                state.lsn, self.next_lsn
            )));
        }
        let payload = state.to_bytes();
        let mut doc = Vec::with_capacity(8 + FRAME_HEADER_LEN + payload.len());
        doc.extend_from_slice(SNAP_MAGIC);
        doc.extend_from_slice(&frame(&payload, CLASS_POLICY)?);

        let tmp = self.dir.join("snapshot.tmp");
        let final_path = snapshot_path(&self.dir);
        write_atomic(&tmp, &final_path, &doc)?;
        sync_dir(&self.dir)?;

        // Rotate: a fresh log whose base LSN is the snapshot LSN.
        let wal_tmp = self.dir.join("wal.tmp");
        let final_wal = wal_path(&self.dir);
        {
            let file = write_new_log(&wal_tmp, state.lsn)?;
            drop(file);
        }
        std::fs::rename(&wal_tmp, &final_wal).map_err(|e| io_err("log rotate", e))?;
        // From here on self.file still points at the OLD log, whose
        // inode the rename just unlinked. Until the store is reattached
        // to the new file, any exit path must poison — otherwise later
        // appends land in the orphaned inode, get acknowledged, and
        // vanish (recovery only sees the new, empty log).
        let reattached = (|| -> Result<File> {
            #[cfg(feature = "fault-injection")]
            fgac_types::faults::hit("wal::rotate")?;
            sync_dir(&self.dir)?;
            open_append(&final_wal)
        })();
        match reattached {
            Ok(file) => {
                self.file = file;
                self.len = WAL_HEADER_LEN;
                self.base_lsn = state.lsn;
                Ok(())
            }
            Err(e) => {
                self.poison("log rotation reattach failed");
                Err(e)
            }
        }
    }
}

fn write_atomic(tmp: &Path, final_path: &Path, bytes: &[u8]) -> Result<()> {
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(tmp)
            .map_err(|e| io_err("snapshot create", e))?;
        f.write_all(bytes).map_err(|e| io_err("snapshot write", e))?;
        f.sync_data().map_err(|e| io_err("snapshot sync", e))?;
    }
    std::fs::rename(tmp, final_path).map_err(|e| io_err("snapshot rename", e))
}

/// Loads and verifies the snapshot, if one exists. Any damage — bad
/// magic, bad checksum, truncation, undecodable payload — is
/// [`Error::Corrupt`]: the snapshot carries grant state and gets no
/// torn-tail leniency (it was renamed into place atomically, so a valid
/// installation is never partial).
fn load_snapshot(dir: &Path) -> Result<Option<SnapshotState>> {
    let path = snapshot_path(dir);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("snapshot read", e)),
    };
    let corrupt = |what: &str| Error::Corrupt(format!("snapshot {}: {what}", path.display()));
    let header_len = 8 + FRAME_HEADER_LEN;
    if bytes.len() < header_len || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad magic or truncated header"));
    }
    let header = &bytes[8..header_len];
    let plen = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let class = header[4];
    let stored_pcrc = u32::from_le_bytes([header[5], header[6], header[7], header[8]]);
    let stored_hcrc = u32::from_le_bytes([header[9], header[10], header[11], header[12]]);
    if crc32(&header[..9]) != stored_hcrc {
        return Err(corrupt("frame header checksum mismatch"));
    }
    if class != CLASS_POLICY {
        return Err(corrupt("frame class is not policy"));
    }
    if bytes.len().checked_sub(header_len) != Some(plen) {
        return Err(corrupt("length mismatch"));
    }
    let payload = &bytes[header_len..];
    if crc32(payload) != stored_pcrc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(payload);
    let state = SnapshotState::decode(&mut r).and_then(|s| r.expect_end().map(|()| s))?;
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "fgac-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::AddRole {
            user: format!("u{i}"),
            role: "student".into(),
        }
    }

    fn snap(lsn: u64) -> SnapshotState {
        SnapshotState {
            lsn,
            data_version: 0,
            policy_epoch: lsn,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut store = WalStore::create(&dir).unwrap();
        for i in 0..5 {
            assert_eq!(store.append(&rec(i), false).unwrap(), i);
        }
        store.sync().unwrap();
        drop(store);
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 5);
        assert_eq!(recovered.report.truncated_tail_bytes, 0);
        for (i, (lsn, r)) in recovered.records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64));
        }
        assert_eq!(recovered.store.next_lsn(), 5);
    }

    #[test]
    fn create_refuses_existing_log() {
        let dir = tmp_dir("exists");
        WalStore::create(&dir).unwrap();
        assert!(WalStore::create(&dir).is_err());
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = tmp_dir("torn");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        drop(store);
        // Simulate a torn final record: a partial frame header (fewer
        // than FRAME_HEADER_LEN bytes landed).
        let path = wal_path(&dir);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, 1, 2, 3, 4, 9, 9]).unwrap();
        drop(f);
        let before = std::fs::metadata(&path).unwrap().len();
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.report.truncated_tail_bytes, 10);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before - 10);
        // A second recovery is a no-op: same records, nothing truncated.
        let again = WalStore::recover(&dir).unwrap();
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.report.truncated_tail_bytes, 0);
    }

    #[test]
    fn torn_payload_with_complete_header_is_truncated() {
        // The other torn-write shape: the full header landed but the
        // payload was cut short. The header is self-consistent, so the
        // scan classifies this as a tear, not corruption.
        let dir = tmp_dir("torn-payload");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        drop(store);
        let path = wal_path(&dir);
        let framed = frame(&rec(1).to_bytes(), CLASS_POLICY).unwrap();
        let cut = FRAME_HEADER_LEN + 2; // header + 2 payload bytes
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&framed[..cut]).unwrap();
        drop(f);
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.report.truncated_tail_bytes, cut as u64);
    }

    #[test]
    fn corrupt_policy_record_fails_closed() {
        let dir = tmp_dir("corrupt-policy");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        drop(store);
        // Flip one payload bit of the (policy) record.
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn corrupt_final_data_record_is_torn_tail() {
        let dir = tmp_dir("corrupt-data");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), false).unwrap();
        store
            .append(&WalRecord::Dml { deltas: vec![] }, true)
            .unwrap();
        drop(store);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // damage the final (data) record's payload
        std::fs::write(&path, &bytes).unwrap();
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.records.len(), 1, "data tail dropped");
        assert!(recovered.report.truncated_tail_bytes > 0);
    }

    #[test]
    fn corrupt_non_final_data_record_fails_closed() {
        let dir = tmp_dir("corrupt-mid");
        let mut store = WalStore::create(&dir).unwrap();
        store
            .append(&WalRecord::Dml { deltas: vec![] }, false)
            .unwrap();
        store.append(&rec(1), true).unwrap();
        drop(store);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Damage the first record's last payload byte (it sits right
        // before the second frame's header).
        let dml_payload_len = WalRecord::Dml { deltas: vec![] }.to_bytes().len();
        let idx = WAL_HEADER_LEN as usize + FRAME_HEADER_LEN + dml_payload_len - 1;
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn snapshot_roundtrip_and_rotation() {
        let dir = tmp_dir("snap");
        let mut store = WalStore::create(&dir).unwrap();
        for i in 0..3 {
            store.append(&rec(i), false).unwrap();
        }
        let state = SnapshotState {
            lsn: 3,
            data_version: 0,
            policy_epoch: 3,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        };
        store.install_snapshot(&state).unwrap();
        assert_eq!(store.records_in_log(), 0);
        store.append(&rec(3), true).unwrap();
        drop(store);
        let recovered = WalStore::recover(&dir).unwrap();
        let snap = recovered.snapshot.unwrap();
        assert_eq!(snap.lsn, 3);
        assert_eq!(recovered.records, vec![(3, rec(3))]);
    }

    #[test]
    fn corrupt_snapshot_fails_closed() {
        let dir = tmp_dir("snap-corrupt");
        let mut store = WalStore::create(&dir).unwrap();
        let state = SnapshotState {
            lsn: 0,
            data_version: 0,
            policy_epoch: 0,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        };
        store.install_snapshot(&state).unwrap();
        drop(store);
        let path = snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn snapshot_newer_than_log_skips_already_folded_records() {
        // Simulates a crash between snapshot rename and log rotation:
        // the snapshot says lsn=2 but the old log still holds lsns 0..2.
        let dir = tmp_dir("snap-race");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), false).unwrap();
        store.append(&rec(1), true).unwrap();
        let state = SnapshotState {
            lsn: 2,
            data_version: 0,
            policy_epoch: 2,
            tables: vec![],
            foreign_keys: vec![],
            views_sql: vec![],
            inclusion_deps_sql: vec![],
            grants: Default::default(),
        };
        // Install the snapshot by hand WITHOUT rotating the log.
        let payload = state.to_bytes();
        let mut doc = Vec::new();
        doc.extend_from_slice(SNAP_MAGIC);
        doc.extend_from_slice(&frame(&payload, CLASS_POLICY).unwrap());
        std::fs::write(snapshot_path(&dir), &doc).unwrap();
        drop(store);
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap().lsn, 2);
        // Both records are still scanned; the *caller* filters lsn < 2.
        assert_eq!(recovered.records.len(), 2);
    }

    #[test]
    fn flipped_class_byte_fails_closed() {
        // Corruption must not be able to reclassify a final policy
        // record as data to win tail leniency: the class byte is
        // covered by the header checksum, so flipping it is detected
        // before the (also damaged) payload is ever consulted.
        let dir = tmp_dir("class-flip");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        drop(store);
        let path = wal_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        let class_idx = WAL_HEADER_LEN as usize + 4;
        assert_eq!(bytes[class_idx], CLASS_POLICY);
        bytes[class_idx] = CLASS_DATA;
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // and damage the payload, as a tear would
        std::fs::write(&path, &bytes).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn rotated_log_without_snapshot_fails_closed() {
        // A lost snapshot rename after a durable log rotation: the log
        // says base_lsn=1 but no snapshot covers [0, 1). Loading the
        // stale state and silently skipping the gap would drop
        // acknowledged commits — recovery must refuse.
        let dir = tmp_dir("lost-snap");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        store.install_snapshot(&snap(1)).unwrap();
        drop(store);
        std::fs::remove_file(snapshot_path(&dir)).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn snapshot_older_than_base_lsn_fails_closed() {
        // Same gap, with a snapshot present but too old (lsn 1 < base 2).
        let dir = tmp_dir("stale-snap");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), false).unwrap();
        store.append(&rec(1), true).unwrap();
        store.install_snapshot(&snap(2)).unwrap();
        drop(store);
        let mut doc = Vec::new();
        doc.extend_from_slice(SNAP_MAGIC);
        doc.extend_from_slice(&frame(&snap(1).to_bytes(), CLASS_POLICY).unwrap());
        std::fs::write(snapshot_path(&dir), &doc).unwrap();
        let err = WalStore::recover(&dir).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn failed_rotation_reattach_poisons_the_store() {
        use fgac_types::faults::{self, Fault};
        let dir = tmp_dir("rotate-poison");
        let mut store = WalStore::create(&dir).unwrap();
        store.append(&rec(0), true).unwrap();
        faults::arm("wal::rotate", Fault::ErrorOnNth(1));
        assert!(store.install_snapshot(&snap(1)).is_err());
        faults::disarm_all();
        // The old log's inode is unlinked; appending there would be
        // acknowledged into nowhere, so the store must refuse.
        assert!(store.is_poisoned());
        assert!(store.append(&rec(1), false).is_err());
        drop(store);
        // On disk both renames completed: new snapshot + empty rotated
        // log. A reopen recovers cleanly at the snapshot LSN.
        let recovered = WalStore::recover(&dir).unwrap();
        assert_eq!(recovered.snapshot.unwrap().lsn, 1);
        assert_eq!(recovered.records.len(), 0);
        assert_eq!(recovered.store.next_lsn(), 1);
    }
}
