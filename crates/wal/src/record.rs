//! WAL record types and their encoding.
//!
//! One record per committed state change. Two families:
//!
//! * **Policy records** (DDL, grants/revocations, role membership,
//!   constraint visibility) — logged as canonical SQL or structural
//!   fields. Recovery *fails closed* on a corrupt policy record: a lost
//!   REVOKE silently breaks the Non-Truman validity guarantee, so the
//!   engine refuses to serve rather than guess.
//! * **Data records** (`Dml`) — the physical [`TableDelta`]s of one
//!   committed statement. A corrupt data record at the very tail of the
//!   log is treated as a torn write and truncated.
//!
//! The frame header carries the record's class (policy vs data) under
//! its own checksum — see [`frame`] — so recovery can classify a frame
//! whose *payload* checksum failed without trusting any unprotected
//! byte of that payload.

use crate::crc::crc32;
use fgac_storage::TableDelta;
use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Error, Result};

const TAG_DDL: u8 = 0x01;
const TAG_GRANT_VIEW: u8 = 0x02;
const TAG_REVOKE_VIEW: u8 = 0x03;
const TAG_GRANT_CONSTRAINT: u8 = 0x04;
const TAG_GRANT_UPDATE: u8 = 0x05;
const TAG_ADD_ROLE: u8 = 0x06;
const TAG_DELEGATE_VIEW: u8 = 0x07;
/// Tags below this are policy records; `Dml` is the sole data record.
const TAG_DML: u8 = 0x40;

/// One committed state change.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// DDL as canonical printed SQL (`CREATE TABLE` / `CREATE
    /// [AUTHORIZATION] VIEW` / `CREATE INCLUSION DEPENDENCY`); replayed
    /// through the admin path.
    Ddl { sql: String },
    GrantView { principal: String, view: String },
    RevokeView { principal: String, view: String },
    GrantConstraint { principal: String, name: String },
    /// An `AUTHORIZE ...` update authorization, as SQL text.
    GrantUpdate { principal: String, sql: String },
    AddRole { user: String, role: String },
    DelegateView {
        from: String,
        to: String,
        view: String,
    },
    /// One committed DML statement's physical deltas. May be empty (a
    /// statement that matched zero rows still commits and bumps the data
    /// version).
    Dml { deltas: Vec<TableDelta> },
}

/// Frame-header class byte for policy records (fail closed on
/// corruption).
pub const CLASS_POLICY: u8 = 0x01;
/// Frame-header class byte for data records (tail leniency allowed).
pub const CLASS_DATA: u8 = 0x02;

/// Bytes of framing before the payload: `len ‖ class ‖ payload crc ‖
/// header crc`.
pub const FRAME_HEADER_LEN: usize = 13;

impl WalRecord {
    /// Policy records fail closed on corruption; data records at the log
    /// tail are treated as torn writes.
    pub fn is_policy(&self) -> bool {
        !matches!(self, WalRecord::Dml { .. })
    }

    /// The class byte written into this record's frame header.
    pub fn class(&self) -> u8 {
        if self.is_policy() {
            CLASS_POLICY
        } else {
            CLASS_DATA
        }
    }
}

impl WireEncode for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Ddl { sql } => {
                out.push(TAG_DDL);
                sql.encode(out);
            }
            WalRecord::GrantView { principal, view } => {
                out.push(TAG_GRANT_VIEW);
                principal.encode(out);
                view.encode(out);
            }
            WalRecord::RevokeView { principal, view } => {
                out.push(TAG_REVOKE_VIEW);
                principal.encode(out);
                view.encode(out);
            }
            WalRecord::GrantConstraint { principal, name } => {
                out.push(TAG_GRANT_CONSTRAINT);
                principal.encode(out);
                name.encode(out);
            }
            WalRecord::GrantUpdate { principal, sql } => {
                out.push(TAG_GRANT_UPDATE);
                principal.encode(out);
                sql.encode(out);
            }
            WalRecord::AddRole { user, role } => {
                out.push(TAG_ADD_ROLE);
                user.encode(out);
                role.encode(out);
            }
            WalRecord::DelegateView { from, to, view } => {
                out.push(TAG_DELEGATE_VIEW);
                from.encode(out);
                to.encode(out);
                view.encode(out);
            }
            WalRecord::Dml { deltas } => {
                out.push(TAG_DML);
                deltas.encode(out);
            }
        }
    }
}

impl WireDecode for WalRecord {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            TAG_DDL => Ok(WalRecord::Ddl {
                sql: String::decode(r)?,
            }),
            TAG_GRANT_VIEW => Ok(WalRecord::GrantView {
                principal: String::decode(r)?,
                view: String::decode(r)?,
            }),
            TAG_REVOKE_VIEW => Ok(WalRecord::RevokeView {
                principal: String::decode(r)?,
                view: String::decode(r)?,
            }),
            TAG_GRANT_CONSTRAINT => Ok(WalRecord::GrantConstraint {
                principal: String::decode(r)?,
                name: String::decode(r)?,
            }),
            TAG_GRANT_UPDATE => Ok(WalRecord::GrantUpdate {
                principal: String::decode(r)?,
                sql: String::decode(r)?,
            }),
            TAG_ADD_ROLE => Ok(WalRecord::AddRole {
                user: String::decode(r)?,
                role: String::decode(r)?,
            }),
            TAG_DELEGATE_VIEW => Ok(WalRecord::DelegateView {
                from: String::decode(r)?,
                to: String::decode(r)?,
                view: String::decode(r)?,
            }),
            TAG_DML => Ok(WalRecord::Dml {
                deltas: Vec::<TableDelta>::decode(r)?,
            }),
            b => Err(Error::Corrupt(format!("wal record: unknown tag {b:#x}"))),
        }
    }
}

/// Frames a payload for the log:
///
/// ```text
/// len(u32 LE) ‖ class(u8) ‖ pcrc(u32 LE) ‖ hcrc(u32 LE) ‖ payload
/// ```
///
/// `pcrc` is the CRC of the payload; `hcrc` is the CRC of the first 9
/// header bytes (`len ‖ class ‖ pcrc`). The class byte decides whether
/// a payload-checksum failure at the tail may be treated as a torn
/// write, so it must be trustworthy even when the payload is not —
/// `hcrc` gives it (and `len`) integrity independent of the payload.
///
/// Fails if the payload exceeds the u32 length field — a silently
/// truncated `len` would make the frame unrecoverable (the payload CRC
/// would cover bytes the header does not admit to).
pub fn frame(payload: &[u8], class: u8) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        Error::Execution(format!(
            "wal frame: payload of {} bytes exceeds the u32 length field",
            payload.len()
        ))
    })?;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(class);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let hcrc = crc32(&out[..9]);
    out.extend_from_slice(&hcrc.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Ident, Row};

    fn roundtrip(rec: WalRecord) {
        let bytes = rec.to_bytes();
        let mut r = Reader::new(&bytes);
        let back = WalRecord::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(rec, back);
        assert_eq!(
            rec.class(),
            if rec.is_policy() { CLASS_POLICY } else { CLASS_DATA }
        );
    }

    #[test]
    fn all_records_roundtrip() {
        roundtrip(WalRecord::Ddl {
            sql: "create table t (a int)".into(),
        });
        roundtrip(WalRecord::GrantView {
            principal: "11".into(),
            view: "mygrades".into(),
        });
        roundtrip(WalRecord::RevokeView {
            principal: "11".into(),
            view: "mygrades".into(),
        });
        roundtrip(WalRecord::GrantConstraint {
            principal: "student".into(),
            name: "ft_registered".into(),
        });
        roundtrip(WalRecord::GrantUpdate {
            principal: "11".into(),
            sql: "authorize insert on grades where student_id = $user_id".into(),
        });
        roundtrip(WalRecord::AddRole {
            user: "11".into(),
            role: "student".into(),
        });
        roundtrip(WalRecord::DelegateView {
            from: "a".into(),
            to: "b".into(),
            view: "v".into(),
        });
        roundtrip(WalRecord::Dml { deltas: vec![] });
        roundtrip(WalRecord::Dml {
            deltas: vec![TableDelta::Insert {
                table: Ident::new("grades"),
                row: Row(vec!["11".into()]),
            }],
        });
    }

    #[test]
    fn frame_carries_checksummed_header_and_payload() {
        let payload = WalRecord::Dml { deltas: vec![] }.to_bytes();
        let f = frame(&payload, CLASS_DATA).unwrap();
        assert_eq!(
            u32::from_le_bytes([f[0], f[1], f[2], f[3]]) as usize,
            payload.len()
        );
        assert_eq!(f[4], CLASS_DATA);
        assert_eq!(
            u32::from_le_bytes([f[5], f[6], f[7], f[8]]),
            crc32(&payload)
        );
        assert_eq!(u32::from_le_bytes([f[9], f[10], f[11], f[12]]), crc32(&f[..9]));
        assert_eq!(&f[FRAME_HEADER_LEN..], &payload[..]);
    }

    #[test]
    fn header_crc_pins_the_class_byte() {
        // Flipping the class byte (the torn-tail leniency decision)
        // must be detectable without the payload checksum.
        let payload = WalRecord::AddRole {
            user: "11".into(),
            role: "student".into(),
        }
        .to_bytes();
        let mut f = frame(&payload, CLASS_POLICY).unwrap();
        f[4] = CLASS_DATA;
        let hcrc = u32::from_le_bytes([f[9], f[10], f[11], f[12]]);
        assert_ne!(crc32(&f[..9]), hcrc);
    }
}
