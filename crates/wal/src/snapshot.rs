//! Full-state snapshots.
//!
//! A snapshot is a complete, self-contained image of the engine's durable
//! state: every base table (schema, primary key, rows), foreign keys,
//! view and inclusion-dependency definitions (as canonical SQL — their
//! bodies contain expressions the binary format does not model), the full
//! grant tables, and the version counters. `fgac-core` converts an
//! `Engine` to/from this; this crate only (de)serializes and stores it.
//!
//! The whole snapshot is policy-bearing, so *any* checksum or decode
//! failure is [`Error::Corrupt`] — there is no torn-tail leniency here.
//! Atomicity comes from write-to-temp + rename in [`crate::WalStore`].

use fgac_storage::ForeignKey;
use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Ident, Result, Row, Schema};

/// One base table's full state.
#[derive(Debug, Clone, PartialEq)]
pub struct TableState {
    pub name: Ident,
    pub schema: Schema,
    pub primary_key: Option<Vec<Ident>>,
    pub rows: Vec<Row>,
}

/// The grant tables, flattened to sorted association lists.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GrantsState {
    /// principal -> granted authorization views.
    pub views: Vec<(String, Vec<Ident>)>,
    /// principal -> visible integrity constraints.
    pub constraints: Vec<(String, Vec<Ident>)>,
    /// principal -> `AUTHORIZE ...` statements (canonical SQL).
    pub update_auths: Vec<(String, Vec<String>)>,
    /// user -> roles.
    pub roles: Vec<(String, Vec<String>)>,
}

/// A complete engine image at one log position.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotState {
    /// WAL records with `lsn < self.lsn` are already folded in and are
    /// skipped during replay.
    pub lsn: u64,
    pub data_version: u64,
    pub policy_epoch: u64,
    pub tables: Vec<TableState>,
    pub foreign_keys: Vec<ForeignKey>,
    /// `CREATE [AUTHORIZATION] VIEW ...` statements, in catalog order.
    pub views_sql: Vec<String>,
    /// `CREATE INCLUSION DEPENDENCY ...` statements, in catalog order.
    pub inclusion_deps_sql: Vec<String>,
    pub grants: GrantsState,
}

impl WireEncode for TableState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.schema.encode(out);
        self.primary_key.encode(out);
        self.rows.encode(out);
    }
}

impl WireDecode for TableState {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(TableState {
            name: Ident::decode(r)?,
            schema: Schema::decode(r)?,
            primary_key: Option::<Vec<Ident>>::decode(r)?,
            rows: Vec::<Row>::decode(r)?,
        })
    }
}

impl WireEncode for GrantsState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.views.encode(out);
        self.constraints.encode(out);
        self.update_auths.encode(out);
        self.roles.encode(out);
    }
}

impl WireDecode for GrantsState {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(GrantsState {
            views: Vec::decode(r)?,
            constraints: Vec::decode(r)?,
            update_auths: Vec::decode(r)?,
            roles: Vec::decode(r)?,
        })
    }
}

impl WireEncode for SnapshotState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.lsn.encode(out);
        self.data_version.encode(out);
        self.policy_epoch.encode(out);
        self.tables.encode(out);
        self.foreign_keys.encode(out);
        self.views_sql.encode(out);
        self.inclusion_deps_sql.encode(out);
        self.grants.encode(out);
    }
}

impl WireDecode for SnapshotState {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(SnapshotState {
            lsn: u64::decode(r)?,
            data_version: u64::decode(r)?,
            policy_epoch: u64::decode(r)?,
            tables: Vec::decode(r)?,
            foreign_keys: Vec::decode(r)?,
            views_sql: Vec::decode(r)?,
            inclusion_deps_sql: Vec::decode(r)?,
            grants: GrantsState::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType, Value};

    #[test]
    fn snapshot_roundtrips() {
        let snap = SnapshotState {
            lsn: 42,
            data_version: 7,
            policy_epoch: 3,
            tables: vec![TableState {
                name: Ident::new("grades"),
                schema: Schema::new(vec![
                    Column::new("student_id", DataType::Str),
                    Column::new("grade", DataType::Int).nullable(),
                ]),
                primary_key: Some(vec![Ident::new("student_id")]),
                rows: vec![Row(vec!["11".into(), Value::Int(90)])],
            }],
            foreign_keys: vec![ForeignKey {
                name: Ident::new("fk1"),
                child_table: Ident::new("grades"),
                child_columns: vec![Ident::new("student_id")],
                parent_table: Ident::new("students"),
                parent_columns: vec![Ident::new("student_id")],
            }],
            views_sql: vec!["create authorization view v as select * from grades".into()],
            inclusion_deps_sql: vec![],
            grants: GrantsState {
                views: vec![("11".into(), vec![Ident::new("v")])],
                constraints: vec![],
                update_auths: vec![("11".into(), vec!["authorize insert on grades where student_id = $user_id".into()])],
                roles: vec![("11".into(), vec!["student".into()])],
            },
        };
        let bytes = snap.to_bytes();
        let mut r = Reader::new(&bytes);
        let back = SnapshotState::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(snap, back);
    }
}
