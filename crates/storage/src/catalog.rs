//! The catalog: schemas, views, and integrity constraints.

use crate::constraint::{ForeignKey, InclusionDependency};
use fgac_sql::Query;
use fgac_types::{Error, Ident, Result, Schema};
use std::collections::BTreeMap;

/// Metadata for one base table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub name: Ident,
    pub schema: Schema,
    pub primary_key: Option<Vec<Ident>>,
}

/// A stored view definition. Authorization views (Section 2) are views
/// whose bodies may mention `$`/`$$` parameters; they become usable for a
/// session once instantiated with that session's parameter values.
#[derive(Debug, Clone)]
pub struct ViewDef {
    pub name: Ident,
    pub authorization: bool,
    pub query: Query,
}

/// The schema catalog. Data lives in [`crate::Database`]; this holds the
/// definitions the binder, optimizer, and inference engine consult.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<Ident, TableMeta>,
    views: BTreeMap<Ident, ViewDef>,
    foreign_keys: Vec<ForeignKey>,
    inclusion_deps: Vec<InclusionDependency>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_table(
        &mut self,
        name: impl Into<Ident>,
        schema: Schema,
        primary_key: Option<Vec<Ident>>,
    ) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(Error::Catalog(format!("table {name} already exists")));
        }
        if self.views.contains_key(&name) {
            return Err(Error::Catalog(format!("{name} is already a view")));
        }
        if let Some(pk) = &primary_key {
            for c in pk {
                if !schema.contains(c) {
                    return Err(Error::Catalog(format!(
                        "primary key column {c} not in table {name}"
                    )));
                }
            }
        }
        self.tables.insert(
            name.clone(),
            TableMeta {
                name,
                schema,
                primary_key,
            },
        );
        Ok(())
    }

    pub fn table(&self, name: &Ident) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    pub fn table_required(&self, name: &Ident) -> Result<&TableMeta> {
        self.table(name)
            .ok_or_else(|| Error::Bind(format!("unknown table {name}")))
    }

    pub fn tables(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.values()
    }

    pub fn add_view(&mut self, view: ViewDef) -> Result<()> {
        if self.tables.contains_key(&view.name) {
            return Err(Error::Catalog(format!("{} is already a table", view.name)));
        }
        if self.views.contains_key(&view.name) {
            return Err(Error::Catalog(format!("view {} already exists", view.name)));
        }
        self.views.insert(view.name.clone(), view);
        Ok(())
    }

    pub fn view(&self, name: &Ident) -> Option<&ViewDef> {
        self.views.get(name)
    }

    pub fn views(&self) -> impl Iterator<Item = &ViewDef> {
        self.views.values()
    }

    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        let child = self.table_required(&fk.child_table)?;
        for c in &fk.child_columns {
            if !child.schema.contains(c) {
                return Err(Error::Catalog(format!(
                    "foreign key column {c} not in {}",
                    fk.child_table
                )));
            }
        }
        let parent = self.table_required(&fk.parent_table)?;
        for c in &fk.parent_columns {
            if !parent.schema.contains(c) {
                return Err(Error::Catalog(format!(
                    "referenced column {c} not in {}",
                    fk.parent_table
                )));
            }
        }
        if fk.child_columns.len() != fk.parent_columns.len() {
            return Err(Error::Catalog(
                "foreign key column count mismatch".to_string(),
            ));
        }
        self.foreign_keys.push(fk);
        Ok(())
    }

    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Removes a table's metadata. Undo/recovery helper.
    pub fn remove_table(&mut self, name: &Ident) -> Option<TableMeta> {
        self.tables.remove(name)
    }

    /// Removes a view definition. Undo/recovery helper.
    pub fn remove_view(&mut self, name: &Ident) -> Option<ViewDef> {
        self.views.remove(name)
    }

    /// Drops foreign keys added after position `len` (they are stored in
    /// declaration order). Used to undo a partially-logged `CREATE TABLE`.
    pub fn truncate_foreign_keys(&mut self, len: usize) {
        self.foreign_keys.truncate(len);
    }

    /// Drops inclusion dependencies added after position `len`.
    pub fn truncate_inclusion_dependencies(&mut self, len: usize) {
        self.inclusion_deps.truncate(len);
    }

    pub fn add_inclusion_dependency(&mut self, dep: InclusionDependency) -> Result<()> {
        let src = self.table_required(&dep.src_table)?;
        for c in &dep.src_columns {
            if !src.schema.contains(c) {
                return Err(Error::Catalog(format!(
                    "inclusion dependency column {c} not in {}",
                    dep.src_table
                )));
            }
        }
        let dst = self.table_required(&dep.dst_table)?;
        for c in &dep.dst_columns {
            if !dst.schema.contains(c) {
                return Err(Error::Catalog(format!(
                    "inclusion dependency column {c} not in {}",
                    dep.dst_table
                )));
            }
        }
        if dep.src_columns.len() != dep.dst_columns.len() {
            return Err(Error::Catalog(
                "inclusion dependency column count mismatch".to_string(),
            ));
        }
        self.inclusion_deps.push(dep);
        Ok(())
    }

    /// All inclusion dependencies, including foreign keys lowered to
    /// their inclusion form. This is the set rules U3a–U3c search.
    pub fn all_inclusions(&self) -> Vec<InclusionDependency> {
        let mut out: Vec<InclusionDependency> =
            self.foreign_keys.iter().map(|fk| fk.as_inclusion()).collect();
        out.extend(self.inclusion_deps.iter().cloned());
        out
    }

    /// Declared (non-FK) inclusion dependencies.
    pub fn inclusion_dependencies(&self) -> &[InclusionDependency] {
        &self.inclusion_deps
    }

    /// True if `columns` is a superset of some key of `table` — i.e. the
    /// projection of the table onto `columns` is duplicate-free. Used by
    /// Example 5.5's "the distinct keyword can be dropped" reasoning.
    pub fn covers_key(&self, table: &Ident, columns: &[Ident]) -> bool {
        match self.tables.get(table).and_then(|t| t.primary_key.as_ref()) {
            Some(pk) => pk.iter().all(|k| columns.contains(k)),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("student_id", DataType::Str),
            Column::new("course_id", DataType::Str),
        ])
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        c.add_table("t", schema(), None).unwrap();
        assert!(c.add_table("t", schema(), None).is_err());
        assert!(c.add_table("T", schema(), None).is_err(), "case-insensitive");
    }

    #[test]
    fn pk_columns_validated() {
        let mut c = Catalog::new();
        let err = c.add_table("t", schema(), Some(vec![Ident::new("missing")]));
        assert!(err.is_err());
    }

    #[test]
    fn fk_validated_and_lowered() {
        let mut c = Catalog::new();
        c.add_table("students", schema(), Some(vec![Ident::new("student_id")]))
            .unwrap();
        c.add_table("registered", schema(), None).unwrap();
        c.add_foreign_key(ForeignKey {
            name: Ident::new("fk1"),
            child_table: Ident::new("registered"),
            child_columns: vec![Ident::new("student_id")],
            parent_table: Ident::new("students"),
            parent_columns: vec![Ident::new("student_id")],
        })
        .unwrap();
        assert_eq!(c.all_inclusions().len(), 1);

        let bad = c.add_foreign_key(ForeignKey {
            name: Ident::new("fk2"),
            child_table: Ident::new("registered"),
            child_columns: vec![Ident::new("nope")],
            parent_table: Ident::new("students"),
            parent_columns: vec![Ident::new("student_id")],
        });
        assert!(bad.is_err());
    }

    #[test]
    fn covers_key_requires_pk_subset() {
        let mut c = Catalog::new();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        let all = [
            Ident::new("student_id"),
            Ident::new("course_id"),
            Ident::new("grade"),
        ];
        assert!(c.covers_key(&Ident::new("grades"), &all));
        assert!(!c.covers_key(&Ident::new("grades"), &all[..1]));
        assert!(!c.covers_key(&Ident::new("missing"), &all));
    }

    #[test]
    fn view_name_collision_rejected() {
        let mut c = Catalog::new();
        c.add_table("t", schema(), None).unwrap();
        let v = ViewDef {
            name: Ident::new("t"),
            authorization: true,
            query: fgac_sql::parse_query("select * from t").unwrap(),
        };
        assert!(c.add_view(v).is_err());
    }
}
