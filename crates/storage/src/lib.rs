//! # fgac-storage
//!
//! In-memory relational storage engine: multiset tables, a catalog of
//! schemas/views/constraints, and the [`Database`] facade.
//!
//! The catalog records the two families of integrity constraints the
//! paper's inference rules consume:
//!
//! * **Primary keys** — used by Example 5.5 ("since the Grades table has
//!   a primary key, the distinct keyword can be dropped") and by U3c/C3b
//!   multiplicity reasoning.
//! * **Inclusion dependencies** (optionally predicated on both sides) —
//!   the "every tuple of the view-core has a matching tuple in the
//!   view-remainder" conditions of rules U3a–U3c (Section 5.3). Foreign
//!   keys are stored as unconditional inclusion dependencies plus key
//!   metadata.
//!
//! Constraint *visibility* ("the relevant integrity constraints are
//! visible to the user", rule U3a condition 2) is tracked by
//! `fgac-core`'s grant tables, not here.

mod catalog;
mod constraint;
mod database;
mod delta;
mod table;

pub use catalog::{Catalog, TableMeta, ViewDef};
pub use constraint::{ForeignKey, InclusionDependency};
pub use database::{Database, TableSnapshot};
pub use delta::TableDelta;
pub use table::Table;
