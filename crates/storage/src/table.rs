//! Multiset tables.

use fgac_types::{Error, Ident, Result, Row, Schema, Value};

/// An in-memory table holding a multiset of rows.
///
/// Rows are kept in insertion order; duplicates are allowed (SQL bag
/// semantics). Type checking against the schema happens on every insert.
#[derive(Debug, Clone)]
pub struct Table {
    name: Ident,
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    pub fn new(name: impl Into<Ident>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    pub fn name(&self) -> &Ident {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Type-checks a row against the schema without inserting it.
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::Type(format!(
                "table {} expects {} columns, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (value, col) in row.values().iter().zip(self.schema.columns()) {
            match value.data_type() {
                None => {
                    if !col.nullable {
                        return Err(Error::Constraint(format!(
                            "column {}.{} is NOT NULL",
                            self.name, col.name
                        )));
                    }
                }
                Some(ty) if ty == col.ty => {}
                // Allow lossless integer widening into double columns.
                Some(fgac_types::DataType::Int) if col.ty == fgac_types::DataType::Double => {}
                Some(ty) => {
                    return Err(Error::Type(format!(
                        "column {}.{} expects {}, got {} ({value})",
                        self.name, col.name, col.ty, ty
                    )));
                }
            }
        }
        Ok(())
    }

    /// Inserts a row after type checking. Integer values destined for
    /// double columns are widened.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        self.check_row(&row)?;
        self.rows.push(self.coerce(row));
        Ok(())
    }

    fn coerce(&self, row: Row) -> Row {
        Row(row
            .0
            .into_iter()
            .zip(self.schema.columns())
            .map(|(v, c)| match (&v, c.ty) {
                (Value::Int(i), fgac_types::DataType::Double) => Value::Double(*i as f64),
                _ => v,
            })
            .collect())
    }

    /// Removes rows matching the predicate; returns how many were
    /// removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        before - self.rows.len()
    }

    /// Applies an in-place transformation to rows matching the predicate;
    /// returns how many were updated. The new row is type-checked.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Row) -> bool,
        mut f: impl FnMut(&Row) -> Row,
    ) -> Result<usize> {
        // Two-phase so a type error midway leaves the table unchanged.
        let mut updates = Vec::new();
        for (i, row) in self.rows.iter().enumerate() {
            if pred(row) {
                let new = f(row);
                self.check_row(&new)?;
                updates.push((i, self.coerce(new)));
            }
        }
        let n = updates.len();
        for (i, new) in updates {
            self.rows[i] = new;
        }
        Ok(n)
    }

    /// Replaces row `i` for each `(i, row)` pair, after type-checking
    /// **all** replacements — either every update lands or none do.
    /// Indexes must be in bounds (callers derive them from `rows()`).
    pub fn apply_row_updates(&mut self, updates: Vec<(usize, Row)>) -> Result<usize> {
        let mut checked = Vec::with_capacity(updates.len());
        for (i, new) in updates {
            if i >= self.rows.len() {
                return Err(Error::Execution(format!(
                    "row index {i} out of bounds in {} ({} rows)",
                    self.name,
                    self.rows.len()
                )));
            }
            self.check_row(&new)?;
            checked.push((i, self.coerce(new)));
        }
        let n = checked.len();
        for (i, new) in checked {
            self.rows[i] = new;
        }
        Ok(n)
    }

    /// Removes the rows at the given positions (any order, duplicates
    /// ignored); returns how many were removed. Infallible by design:
    /// callers decide *what* to delete before any row is touched.
    pub fn delete_at(&mut self, indexes: &[usize]) -> usize {
        if indexes.is_empty() {
            return 0;
        }
        let victim: std::collections::BTreeSet<usize> = indexes
            .iter()
            .copied()
            .filter(|&i| i < self.rows.len())
            .collect();
        let before = self.rows.len();
        let mut i = 0;
        self.rows.retain(|_| {
            let keep = !victim.contains(&i);
            i += 1;
            keep
        });
        before - self.rows.len()
    }

    /// A copy of the stored rows, for undo (see `Database::snapshot_table`).
    pub(crate) fn snapshot_rows(&self) -> Vec<Row> {
        self.rows.clone()
    }

    /// Replaces the stored rows wholesale with a previously taken
    /// snapshot. Bypasses type checks: the snapshot was valid when taken.
    pub(crate) fn restore_rows(&mut self, rows: Vec<Row>) {
        self.rows = rows;
    }

    /// True if some row has the given values at the given column indexes.
    pub fn contains_key(&self, indexes: &[usize], key: &[Value]) -> bool {
        self.rows
            .iter()
            .any(|r| indexes.iter().zip(key).all(|(&i, v)| r.get(i) == v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType};

    fn table() -> Table {
        Table::new(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
        )
    }

    #[test]
    fn insert_type_checks() {
        let mut t = table();
        t.insert(Row(vec!["11".into(), Value::Int(90)])).unwrap();
        t.insert(Row(vec!["12".into(), Value::Null])).unwrap();
        assert_eq!(t.len(), 2);

        let err = t.insert(Row(vec![Value::Int(1), Value::Int(2)])).unwrap_err();
        assert!(matches!(err, Error::Type(_)));
        let err = t.insert(Row(vec![Value::Null, Value::Int(2)])).unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        let err = t.insert(Row(vec!["11".into()])).unwrap_err();
        assert!(matches!(err, Error::Type(_)));
    }

    #[test]
    fn duplicates_are_kept() {
        let mut t = table();
        let row = Row(vec!["11".into(), Value::Int(90)]);
        t.insert(row.clone()).unwrap();
        t.insert(row).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn int_widens_to_double() {
        let mut t = Table::new(
            "m",
            Schema::new(vec![Column::new("x", DataType::Double)]),
        );
        t.insert(Row(vec![Value::Int(3)])).unwrap();
        assert_eq!(t.rows()[0].get(0), &Value::Double(3.0));
    }

    #[test]
    fn delete_and_update() {
        let mut t = table();
        for (s, g) in [("11", 90), ("12", 80), ("13", 70)] {
            t.insert(Row(vec![s.into(), Value::Int(g)])).unwrap();
        }
        let n = t.delete_where(|r| r.get(1) == &Value::Int(80));
        assert_eq!(n, 1);
        assert_eq!(t.len(), 2);

        let n = t
            .update_where(
                |r| r.get(0) == &Value::Str("11".into()),
                |r| Row(vec![r.get(0).clone(), Value::Int(95)]),
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.rows()[0].get(1), &Value::Int(95));
    }

    #[test]
    fn update_type_error_is_atomic() {
        let mut t = table();
        t.insert(Row(vec!["11".into(), Value::Int(90)])).unwrap();
        t.insert(Row(vec!["12".into(), Value::Int(80)])).unwrap();
        let err = t.update_where(
            |_| true,
            |r| {
                if r.get(0) == &Value::Str("12".into()) {
                    Row(vec![Value::Int(0), Value::Int(0)]) // bad type
                } else {
                    Row(vec![r.get(0).clone(), Value::Int(1)])
                }
            },
        );
        assert!(err.is_err());
        // First row must not have been updated.
        assert_eq!(t.rows()[0].get(1), &Value::Int(90));
    }

    #[test]
    fn contains_key_checks_projection() {
        let mut t = table();
        t.insert(Row(vec!["11".into(), Value::Int(90)])).unwrap();
        assert!(t.contains_key(&[0], &["11".into()]));
        assert!(!t.contains_key(&[0], &["99".into()]));
    }
}
