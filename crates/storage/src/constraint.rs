//! Integrity constraint definitions.
//!
//! Rule U3a (Section 5.3) needs constraints of the shape "for every tuple
//! in the result of v_c there is a tuple in the result of v_r satisfying
//! the join condition". We model these as *conditional inclusion
//! dependencies*: every tuple of `σ_{src_filter}(src_table)` projected on
//! `src_columns` appears in `σ_{dst_filter}(dst_table)` projected on
//! `dst_columns`. Foreign keys are the unconditional special case.

use fgac_sql::Expr;
use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Ident, Result};

/// `FOREIGN KEY (columns) REFERENCES parent_table (parent_columns)`.
///
/// The paper's running schema relies on these: "integrity constraints
/// that require each student-id and course-id value in the tables
/// Registered and Grades to appear in the Students and Courses tables".
#[derive(Debug, Clone, PartialEq)]
pub struct ForeignKey {
    pub name: Ident,
    pub child_table: Ident,
    pub child_columns: Vec<Ident>,
    pub parent_table: Ident,
    pub parent_columns: Vec<Ident>,
}

impl ForeignKey {
    /// A foreign key is an unconditional inclusion dependency.
    pub fn as_inclusion(&self) -> InclusionDependency {
        InclusionDependency {
            name: self.name.clone(),
            src_table: self.child_table.clone(),
            src_columns: self.child_columns.clone(),
            src_filter: None,
            dst_table: self.parent_table.clone(),
            dst_columns: self.dst_cols(),
            dst_filter: None,
        }
    }

    fn dst_cols(&self) -> Vec<Ident> {
        self.parent_columns.clone()
    }
}

impl WireEncode for ForeignKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.child_table.encode(out);
        self.child_columns.encode(out);
        self.parent_table.encode(out);
        self.parent_columns.encode(out);
    }
}

impl WireDecode for ForeignKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ForeignKey {
            name: Ident::decode(r)?,
            child_table: Ident::decode(r)?,
            child_columns: Vec::<Ident>::decode(r)?,
            parent_table: Ident::decode(r)?,
            parent_columns: Vec::<Ident>::decode(r)?,
        })
    }
}

/// A conditional inclusion dependency (total participation constraint).
///
/// Examples from the paper:
/// * "each student has to register for at least one course"
///   (Example 5.1): `Students(student_id) ⊆ Registered(student_id)`.
/// * "all full-time students must have registered for a course"
///   (Example 5.3): `σ_{type='FullTime'}(Students)(student_id) ⊆
///   Registered(student_id)`.
/// * "anyone who has paid the fees must be registered" (Example 5.4):
///   `FeesPaid(student_id) ⊆ Registered(student_id)`.
///
/// Filters are stored as *unbound* SQL expressions over the respective
/// table's columns; the inference engine binds them when matching.
#[derive(Debug, Clone, PartialEq)]
pub struct InclusionDependency {
    pub name: Ident,
    pub src_table: Ident,
    pub src_columns: Vec<Ident>,
    pub src_filter: Option<Expr>,
    pub dst_table: Ident,
    pub dst_columns: Vec<Ident>,
    pub dst_filter: Option<Expr>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foreign_key_lowers_to_inclusion() {
        let fk = ForeignKey {
            name: Ident::new("fk_grades_students"),
            child_table: Ident::new("grades"),
            child_columns: vec![Ident::new("student_id")],
            parent_table: Ident::new("students"),
            parent_columns: vec![Ident::new("student_id")],
        };
        let inc = fk.as_inclusion();
        assert_eq!(inc.src_table, Ident::new("grades"));
        assert_eq!(inc.dst_table, Ident::new("students"));
        assert!(inc.src_filter.is_none() && inc.dst_filter.is_none());
    }
}
