//! Physical row deltas for write-ahead logging.
//!
//! The engine's DML paths funnel through three positional [`Database`]
//! primitives — append a row, replace rows at indexes, delete rows at
//! indexes. Recording those calls as [`TableDelta`]s gives the WAL an
//! *exact physical* description of a committed statement: replaying the
//! deltas against the same prior state reproduces the same rows in the
//! same order, without re-running authorization or predicate evaluation.
//!
//! [`Database`]: crate::Database

use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Error, Ident, Result, Row};

/// One committed physical mutation, in statement order.
#[derive(Debug, Clone, PartialEq)]
pub enum TableDelta {
    /// A row appended to `table` (insertion order is part of table state).
    Insert { table: Ident, row: Row },
    /// Rows replaced in place: `(index, new_row)` pairs.
    Update {
        table: Ident,
        updates: Vec<(usize, Row)>,
    },
    /// Rows removed at the given positions (pre-removal indexes).
    Delete { table: Ident, indexes: Vec<usize> },
}

impl TableDelta {
    /// The table this delta mutates.
    pub fn table(&self) -> &Ident {
        match self {
            TableDelta::Insert { table, .. }
            | TableDelta::Update { table, .. }
            | TableDelta::Delete { table, .. } => table,
        }
    }
}

impl WireEncode for TableDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TableDelta::Insert { table, row } => {
                out.push(0);
                table.encode(out);
                row.encode(out);
            }
            TableDelta::Update { table, updates } => {
                out.push(1);
                table.encode(out);
                updates.encode(out);
            }
            TableDelta::Delete { table, indexes } => {
                out.push(2);
                table.encode(out);
                indexes.encode(out);
            }
        }
    }
}

impl WireDecode for TableDelta {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match r.u8()? {
            0 => Ok(TableDelta::Insert {
                table: Ident::decode(r)?,
                row: Row::decode(r)?,
            }),
            1 => Ok(TableDelta::Update {
                table: Ident::decode(r)?,
                updates: Vec::<(usize, Row)>::decode(r)?,
            }),
            2 => Ok(TableDelta::Delete {
                table: Ident::decode(r)?,
                indexes: Vec::<usize>::decode(r)?,
            }),
            b => Err(Error::Corrupt(format!("wire decode: delta tag {b}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::Value;

    #[test]
    fn deltas_roundtrip() {
        let deltas = vec![
            TableDelta::Insert {
                table: Ident::new("grades"),
                row: Row(vec!["11".into(), Value::Int(90)]),
            },
            TableDelta::Update {
                table: Ident::new("grades"),
                updates: vec![(3, Row(vec![Value::Null])), (0, Row(vec![]))],
            },
            TableDelta::Delete {
                table: Ident::new("students"),
                indexes: vec![5, 1, 2],
            },
        ];
        let bytes = deltas.to_bytes();
        let mut r = Reader::new(&bytes);
        let back = Vec::<TableDelta>::decode(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(deltas, back);
    }

    #[test]
    fn bad_tag_is_corrupt() {
        let mut r = Reader::new(&[9u8]);
        assert!(matches!(
            TableDelta::decode(&mut r),
            Err(Error::Corrupt(_))
        ));
    }
}
