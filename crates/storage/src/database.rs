//! The database: catalog + table data, with key/foreign-key enforcement.

use crate::catalog::{Catalog, TableMeta, ViewDef};
use crate::constraint::{ForeignKey, InclusionDependency};
use crate::delta::TableDelta;
use crate::table::Table;
use fgac_types::{Error, Ident, Result, Row, Schema, Value};
use std::collections::BTreeMap;

/// An in-memory database: a [`Catalog`] plus the stored rows of every
/// base table. Primary-key uniqueness and foreign-key existence are
/// enforced on insert/update/delete; declared inclusion dependencies are
/// *assumed* (they describe the legal database states the inference rules
/// reason over) but can be audited with [`Database::unsatisfied_inclusions_on`].
///
/// When delta recording is on (durable engines only — see
/// [`Database::set_delta_recording`]), every successful row mutation also
/// appends a [`TableDelta`] describing it, which the WAL layer drains per
/// statement. Recording is off by default and costs nothing when off.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
    tables: BTreeMap<Ident, Table>,
    recording: bool,
    deltas: Vec<TableDelta>,
}

/// Undo record for one table: the rows as they were when the snapshot
/// was taken. See [`Database::snapshot_table`].
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    table: Ident,
    rows: Vec<Row>,
}

impl TableSnapshot {
    /// The table this snapshot belongs to.
    pub fn table(&self) -> &Ident {
        &self.table
    }

    /// Number of rows captured.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl Database {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Creates a base table.
    pub fn create_table(
        &mut self,
        name: impl Into<Ident>,
        schema: Schema,
        primary_key: Option<Vec<Ident>>,
    ) -> Result<()> {
        let name = name.into();
        self.catalog
            .add_table(name.clone(), schema.clone(), primary_key)?;
        self.tables.insert(name.clone(), Table::new(name, schema));
        Ok(())
    }

    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<()> {
        self.catalog.add_foreign_key(fk)
    }

    pub fn add_inclusion_dependency(&mut self, dep: InclusionDependency) -> Result<()> {
        self.catalog.add_inclusion_dependency(dep)
    }

    pub fn add_view(&mut self, view: ViewDef) -> Result<()> {
        self.catalog.add_view(view)
    }

    pub fn table(&self, name: &Ident) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn table_required(&self, name: &Ident) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::Bind(format!("unknown table {name}")))
    }

    pub fn table_meta(&self, name: &Ident) -> Option<&TableMeta> {
        self.catalog.table(name)
    }

    /// Inserts a row, enforcing primary-key uniqueness and foreign-key
    /// existence.
    pub fn insert(&mut self, table: &Ident, row: Row) -> Result<()> {
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("storage::insert")?;
        self.check_pk_free(table, &row)?;
        self.check_fk_parents(table, &row)?;
        let recorded = self.recording.then(|| row.clone());
        self.tables
            .get_mut(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))?
            .insert(row)?;
        if let Some(row) = recorded {
            self.deltas.push(TableDelta::Insert {
                table: table.clone(),
                row,
            });
        }
        Ok(())
    }

    /// Inserts without constraint checks — bulk loading only.
    pub fn insert_unchecked(&mut self, table: &Ident, row: Row) -> Result<()> {
        let recorded = self.recording.then(|| row.clone());
        self.tables
            .get_mut(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))?
            .insert(row)?;
        if let Some(row) = recorded {
            self.deltas.push(TableDelta::Insert {
                table: table.clone(),
                row,
            });
        }
        Ok(())
    }

    /// Convenience: insert many rows (checked).
    pub fn insert_all<I>(&mut self, table: &Ident, rows: I) -> Result<usize>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut n = 0;
        for row in rows {
            self.insert(table, row)?;
            n += 1;
        }
        Ok(n)
    }

    fn check_pk_free(&self, table: &Ident, row: &Row) -> Result<()> {
        let Some(meta) = self.catalog.table(table) else {
            return Err(Error::Bind(format!("unknown table {table}")));
        };
        let Some(pk) = &meta.primary_key else {
            return Ok(());
        };
        let idx: Vec<usize> = pk
            .iter()
            .map(|c| meta.schema.index_of(c).expect("validated pk column"))
            .collect();
        let key: Vec<Value> = idx.iter().map(|&i| row.get(i).clone()).collect();
        if self.tables[table].contains_key(&idx, &key) {
            return Err(Error::Constraint(format!(
                "duplicate primary key {key:?} in {table}"
            )));
        }
        Ok(())
    }

    fn check_fk_parents(&self, table: &Ident, row: &Row) -> Result<()> {
        let meta = self.catalog.table_required(table)?;
        for fk in self.catalog.foreign_keys() {
            if &fk.child_table != table {
                continue;
            }
            let child_idx: Vec<usize> = fk
                .child_columns
                .iter()
                .map(|c| meta.schema.index_of(c).expect("validated fk column"))
                .collect();
            let key: Vec<Value> = child_idx.iter().map(|&i| row.get(i).clone()).collect();
            // NULL foreign keys reference nothing (SQL semantics).
            if key.iter().any(|v| v.is_null()) {
                continue;
            }
            let parent_meta = self.catalog.table_required(&fk.parent_table)?;
            let parent_idx: Vec<usize> = fk
                .parent_columns
                .iter()
                .map(|c| parent_meta.schema.index_of(c).expect("validated fk column"))
                .collect();
            if !self.tables[&fk.parent_table].contains_key(&parent_idx, &key) {
                return Err(Error::Constraint(format!(
                    "foreign key {}: value {key:?} not present in {}",
                    fk.name, fk.parent_table
                )));
            }
        }
        Ok(())
    }

    /// Deletes rows matching `pred`; returns how many. Does not cascade —
    /// dangling references surface via [`Database::unsatisfied_inclusions_on`].
    pub fn delete_where(
        &mut self,
        table: &Ident,
        pred: impl FnMut(&Row) -> bool,
    ) -> Result<usize> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))
            .map(|t| t.delete_where(pred))
    }

    /// Replaces row `i` of `table` for each `(i, row)` pair; all
    /// replacements type-check before any is applied.
    pub fn apply_row_updates(
        &mut self,
        table: &Ident,
        updates: Vec<(usize, Row)>,
    ) -> Result<usize> {
        let recorded = self.recording.then(|| updates.clone());
        let n = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))?
            .apply_row_updates(updates)?;
        if let Some(updates) = recorded {
            self.deltas.push(TableDelta::Update {
                table: table.clone(),
                updates,
            });
        }
        Ok(n)
    }

    /// Removes the rows of `table` at the given positions; returns how
    /// many were removed.
    pub fn delete_at(&mut self, table: &Ident, indexes: &[usize]) -> Result<usize> {
        let n = self
            .tables
            .get_mut(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))
            .map(|t| t.delete_at(indexes))?;
        if self.recording {
            self.deltas.push(TableDelta::Delete {
                table: table.clone(),
                indexes: indexes.to_vec(),
            });
        }
        Ok(n)
    }

    /// Captures the current rows of `table` for undo. Pair with
    /// [`Database::restore_table`] to roll a failed multi-row mutation
    /// back to exactly this state.
    pub fn snapshot_table(&self, table: &Ident) -> Result<TableSnapshot> {
        Ok(TableSnapshot {
            table: table.clone(),
            rows: self.table_required(table)?.snapshot_rows(),
        })
    }

    /// Restores a table to a previously captured snapshot, discarding
    /// every mutation since. The schema cannot have changed in between:
    /// snapshots live within a single statement and DDL runs on the
    /// admin path only.
    pub fn restore_table(&mut self, snap: TableSnapshot) -> Result<()> {
        self.tables
            .get_mut(&snap.table)
            .ok_or_else(|| Error::Bind(format!("unknown table {}", snap.table)))?
            .restore_rows(snap.rows);
        Ok(())
    }

    /// Turns physical delta recording on or off. Off by default; durable
    /// engines enable it so the WAL can capture committed DML. Turning it
    /// on or off discards any pending deltas.
    pub fn set_delta_recording(&mut self, on: bool) {
        self.recording = on;
        self.deltas.clear();
    }

    pub fn delta_recording(&self) -> bool {
        self.recording
    }

    /// Drains the deltas recorded since the last call. The engine calls
    /// this once per statement: on success the deltas go to the WAL, on
    /// failure they are dropped along with the rolled-back mutation.
    pub fn take_deltas(&mut self) -> Vec<TableDelta> {
        std::mem::take(&mut self.deltas)
    }

    /// Re-applies a logged delta during recovery. Constraint checks are
    /// skipped (the delta already committed once); recording is
    /// suppressed so replay does not re-log.
    pub fn apply_delta(&mut self, delta: TableDelta) -> Result<()> {
        let was_recording = std::mem::replace(&mut self.recording, false);
        let out = match delta {
            TableDelta::Insert { table, row } => self.insert_unchecked(&table, row),
            TableDelta::Update { table, updates } => {
                self.apply_row_updates(&table, updates).map(|_| ())
            }
            TableDelta::Delete { table, indexes } => {
                self.delete_at(&table, &indexes).map(|_| ())
            }
        };
        self.recording = was_recording;
        out
    }

    /// Removes a base table (data and catalog entry). Used to undo a
    /// `CREATE TABLE` whose WAL append failed — not exposed as SQL.
    pub fn drop_table(&mut self, name: &Ident) -> Result<()> {
        if self.tables.remove(name).is_none() {
            return Err(Error::Bind(format!("unknown table {name}")));
        }
        self.catalog.remove_table(name);
        Ok(())
    }

    /// Removes a view definition. Undo-only, like [`Database::drop_table`].
    pub fn drop_view(&mut self, name: &Ident) -> Result<()> {
        if self.catalog.remove_view(name).is_none() {
            return Err(Error::Bind(format!("unknown view {name}")));
        }
        Ok(())
    }

    /// Updates rows matching `pred` via `f`; returns how many.
    pub fn update_where(
        &mut self,
        table: &Ident,
        pred: impl FnMut(&Row) -> bool,
        f: impl FnMut(&Row) -> Row,
    ) -> Result<usize> {
        self.tables
            .get_mut(table)
            .ok_or_else(|| Error::Bind(format!("unknown table {table}")))?
            .update_where(pred, f)
    }

    /// Audits one *unconditional* inclusion dependency against current
    /// data, returning the violating source keys (conditional filters are
    /// ignored here — full audits with filters run through the executor,
    /// which can evaluate arbitrary predicates).
    pub fn unsatisfied_inclusions_on(&self, dep: &InclusionDependency) -> Result<Vec<Vec<Value>>> {
        let src_meta = self.catalog.table_required(&dep.src_table)?;
        let dst_meta = self.catalog.table_required(&dep.dst_table)?;
        let src_idx: Vec<usize> = dep
            .src_columns
            .iter()
            .map(|c| {
                src_meta
                    .schema
                    .index_of(c)
                    .ok_or_else(|| Error::Catalog(format!("bad column {c}")))
            })
            .collect::<Result<_>>()?;
        let dst_idx: Vec<usize> = dep
            .dst_columns
            .iter()
            .map(|c| {
                dst_meta
                    .schema
                    .index_of(c)
                    .ok_or_else(|| Error::Catalog(format!("bad column {c}")))
            })
            .collect::<Result<_>>()?;
        let dst = &self.tables[&dep.dst_table];
        let mut missing = Vec::new();
        for row in self.tables[&dep.src_table].rows() {
            let key: Vec<Value> = src_idx.iter().map(|&i| row.get(i).clone()).collect();
            if !dst.contains_key(&dst_idx, &key) {
                missing.push(key);
            }
        }
        Ok(missing)
    }

    /// Total number of stored rows (all tables).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        db.create_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        db.add_foreign_key(ForeignKey {
            name: Ident::new("fk_reg_student"),
            child_table: Ident::new("registered"),
            child_columns: vec![Ident::new("student_id")],
            parent_table: Ident::new("students"),
            parent_columns: vec![Ident::new("student_id")],
        })
        .unwrap();
        db
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut d = db();
        let t = Ident::new("students");
        d.insert(&t, Row(vec!["11".into(), "ann".into()])).unwrap();
        let err = d.insert(&t, Row(vec!["11".into(), "bob".into()]));
        assert!(matches!(err, Err(Error::Constraint(_))));
    }

    #[test]
    fn fk_existence_enforced() {
        let mut d = db();
        let s = Ident::new("students");
        let r = Ident::new("registered");
        let err = d.insert(&r, Row(vec!["11".into(), "cs101".into()]));
        assert!(matches!(err, Err(Error::Constraint(_))));
        d.insert(&s, Row(vec!["11".into(), "ann".into()])).unwrap();
        d.insert(&r, Row(vec!["11".into(), "cs101".into()])).unwrap();
    }

    #[test]
    fn inclusion_audit_reports_missing_keys() {
        let mut d = db();
        let s = Ident::new("students");
        d.insert(&s, Row(vec!["11".into(), "ann".into()])).unwrap();
        d.insert(&s, Row(vec!["12".into(), "bob".into()])).unwrap();
        let dep = InclusionDependency {
            name: Ident::new("all_registered"),
            src_table: Ident::new("students"),
            src_columns: vec![Ident::new("student_id")],
            src_filter: None,
            dst_table: Ident::new("registered"),
            dst_columns: vec![Ident::new("student_id")],
            dst_filter: None,
        };
        let missing = d.unsatisfied_inclusions_on(&dep).unwrap();
        assert_eq!(missing.len(), 2);
        d.insert(&Ident::new("registered"), Row(vec!["11".into(), "cs101".into()]))
            .unwrap();
        let missing = d.unsatisfied_inclusions_on(&dep).unwrap();
        assert_eq!(missing, vec![vec![Value::Str("12".into())]]);
    }

    #[test]
    fn delete_and_update_route_through() {
        let mut d = db();
        let s = Ident::new("students");
        d.insert(&s, Row(vec!["11".into(), "ann".into()])).unwrap();
        let n = d
            .update_where(&s, |_| true, |r| Row(vec![r.get(0).clone(), "anne".into()]))
            .unwrap();
        assert_eq!(n, 1);
        let n = d.delete_where(&s, |_| true).unwrap();
        assert_eq!(n, 1);
        assert_eq!(d.total_rows(), 0);
    }

    #[test]
    fn unknown_table_errors() {
        let mut d = db();
        let bad = Ident::new("nope");
        assert!(d.insert(&bad, Row(vec![])).is_err());
        assert!(d.delete_where(&bad, |_| true).is_err());
    }
}
