//! Lint findings and the JSON report wire form.
//!
//! The wire shape follows `crates/analyze/src/diag.rs`: objects with
//! string values in a fixed key order, a strict hand-rolled parser for
//! *our own* output (so CI and tests can prove round-trips), and
//! forward compatibility at the code level — a pass code this build
//! does not know parses to [`PassCode::Unrecognized`] with
//! [`Severity::Unknown`] instead of rejecting the document, so an older
//! reader still loads a newer linter's report.

use std::fmt;

/// Stable pass codes. Append-only: a code, once published, never
/// changes meaning — allowlists and CI configurations key on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PassCode {
    /// `L001`: swept admission state (validity cache, plan cache,
    /// compiled capabilities, flow cache, the policy epoch itself)
    /// mutated outside `Engine::apply_change` — the writer-critical-
    /// section invalidation contract of DESIGN.md §4j.
    MutationOutsideWriter,
    /// `L002`: a `Relaxed` atomic operation feeding a branch — a
    /// verdict, a cache-serve decision, a lock-acquisition gate. Stats
    /// counters are fine under `Relaxed`; decisions are not. Also
    /// enforces the `[[relaxed]]` audit in `lint.toml`: every file with
    /// `Ordering::Relaxed` in non-test code must carry a justification
    /// with an accurate site count.
    RelaxedSyncDecision,
    /// `L003`: the static lock-acquisition graph has a cycle, or a
    /// function upgrades a `read()` to a `write()` on the same
    /// `RwLock` while the read guard may still be live.
    LockOrderInversion,
    /// `L004`: an error arm in an admission/validator/server decision
    /// path produces an accept-like outcome, caches a verdict, or
    /// swallows the error — fail-closed means every `Err` path must
    /// deny, uncached.
    ErrorPathMustDeny,
    /// `L005`: unchecked `+`/`*` or a narrowing `as` cast on
    /// length/offset values in wire-parsing code (WAL frames, server
    /// frames, the wire reader) — overflow there turns a corrupt length
    /// field into a mis-bounded read instead of `Error::Corrupt`.
    UncheckedWireArithmetic,
    /// `L006`: `.unwrap()` / `.expect()` / `panic!` / `unreachable!` /
    /// `todo!` in code whose panic-freedom is an invariant (the PR-4/5
    /// scanner, now a pass).
    PanicSite,
    /// A pass code this build does not know. Never emitted by the
    /// analyzer; produced only by the wire parser so a newer writer's
    /// report still loads. Always [`Severity::Unknown`].
    Unrecognized,
}

pub const ALL_CODES: &[PassCode] = &[
    PassCode::MutationOutsideWriter,
    PassCode::RelaxedSyncDecision,
    PassCode::LockOrderInversion,
    PassCode::ErrorPathMustDeny,
    PassCode::UncheckedWireArithmetic,
    PassCode::PanicSite,
];

impl PassCode {
    pub fn as_str(&self) -> &'static str {
        match self {
            PassCode::MutationOutsideWriter => "L001",
            PassCode::RelaxedSyncDecision => "L002",
            PassCode::LockOrderInversion => "L003",
            PassCode::ErrorPathMustDeny => "L004",
            PassCode::UncheckedWireArithmetic => "L005",
            PassCode::PanicSite => "L006",
            PassCode::Unrecognized => "L???",
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            PassCode::MutationOutsideWriter => "MutationOutsideWriter",
            PassCode::RelaxedSyncDecision => "RelaxedSyncDecision",
            PassCode::LockOrderInversion => "LockOrderInversion",
            PassCode::ErrorPathMustDeny => "ErrorPathMustDeny",
            PassCode::UncheckedWireArithmetic => "UncheckedWireArithmetic",
            PassCode::PanicSite => "PanicSite",
            PassCode::Unrecognized => "Unrecognized",
        }
    }

    pub fn from_str_code(s: &str) -> Option<PassCode> {
        Some(match s {
            "L001" => PassCode::MutationOutsideWriter,
            "L002" => PassCode::RelaxedSyncDecision,
            "L003" => PassCode::LockOrderInversion,
            "L004" => PassCode::ErrorPathMustDeny,
            "L005" => PassCode::UncheckedWireArithmetic,
            "L006" => PassCode::PanicSite,
            _ => return None,
        })
    }
}

impl fmt::Display for PassCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Finding severity. Every L-code defaults to `Error` — these passes
/// check invariants, not style. `Unknown` exists only for
/// forward-compat parsing, mirroring `fgac_analyze::Severity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    Error,
    Warning,
    Unknown,
}

impl Severity {
    pub fn as_str(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Unknown => "unknown",
        }
    }

    pub fn from_str_sev(s: &str) -> Option<Severity> {
        Some(match s {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "unknown" => Severity::Unknown,
            _ => return None,
        })
    }
}

/// One finding of one pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub code: PassCode,
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line in the original source.
    pub line: usize,
    pub message: String,
}

impl Finding {
    pub fn new(
        code: PassCode,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Finding {
        Finding {
            code,
            severity: Severity::Error,
            file: file.into(),
            line,
            message: message.into(),
        }
    }

    /// One JSON object, keys in fixed order, string values only (the
    /// line number is carried as a decimal string, like the epoch
    /// fields in `certjson.rs`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"code\":{},\"name\":{},\"severity\":{},\"file\":{},\"line\":{},\"message\":{}}}",
            json_str(self.code.as_str()),
            json_str(self.code.name()),
            json_str(self.severity.as_str()),
            json_str(&self.file),
            json_str(&self.line.to_string()),
            json_str(&self.message),
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}",
            self.file,
            self.line,
            self.severity.as_str(),
            self.code,
            self.message
        )
    }
}

/// Per-pass tallies for the report header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassSummary {
    pub code: String,
    pub name: String,
    pub findings: usize,
    pub ms: u128,
}

/// The whole lint run: header + findings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    pub elapsed_ms: u128,
    pub files_scanned: usize,
    pub passes: Vec<PassSummary>,
    /// Allowlist entries that matched nothing — drift in `lint.toml`.
    pub unused_allows: Vec<String>,
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The machine form CI consumes and archives (`lint-report.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\":\"fgac-lint\",\n  \"schema\":\"1\",\n");
        out.push_str(&format!(
            "  \"elapsed_ms\":{},\n  \"files_scanned\":{},\n",
            json_str(&self.elapsed_ms.to_string()),
            json_str(&self.files_scanned.to_string()),
        ));
        out.push_str("  \"passes\":[");
        let passes: Vec<String> = self
            .passes
            .iter()
            .map(|p| {
                format!(
                    "{{\"code\":{},\"name\":{},\"findings\":{},\"ms\":{}}}",
                    json_str(&p.code),
                    json_str(&p.name),
                    json_str(&p.findings.to_string()),
                    json_str(&p.ms.to_string()),
                )
            })
            .collect();
        out.push_str(&passes.join(","));
        out.push_str("],\n");
        out.push_str("  \"unused_allows\":[");
        let allows: Vec<String> = self.unused_allows.iter().map(|a| json_str(a)).collect();
        out.push_str(&allows.join(","));
        out.push_str("],\n");
        out.push_str("  \"findings\":[");
        if !self.findings.is_empty() {
            out.push('\n');
            let body: Vec<String> = self
                .findings
                .iter()
                .map(|d| format!("    {}", d.to_json()))
                .collect();
            out.push_str(&body.join(",\n"));
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }
}

/// Parses a report previously produced by [`Report::to_json`]. Strict
/// on structure, lenient on unknown keys (additive evolution) and
/// unknown pass codes (forward compatibility).
pub fn report_from_json(input: &str) -> Option<Report> {
    let mut p = JsonCursor::new(input);
    p.skip_ws();
    p.eat('{')?;
    let mut report = Report::default();
    let mut saw_findings = false;
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.eat(':')?;
        p.skip_ws();
        match key.as_str() {
            "elapsed_ms" => report.elapsed_ms = p.string()?.parse().ok()?,
            "files_scanned" => report.files_scanned = p.string()?.parse().ok()?,
            "passes" => {
                for obj in p.object_array()? {
                    report.passes.push(PassSummary {
                        code: obj.get("code")?.clone(),
                        name: obj.get("name")?.clone(),
                        findings: obj.get("findings")?.parse().ok()?,
                        ms: obj.get("ms")?.parse().ok()?,
                    });
                }
            }
            "unused_allows" => report.unused_allows = p.string_array()?,
            "findings" => {
                saw_findings = true;
                for obj in p.object_array()? {
                    report.findings.push(parse_finding(&obj)?);
                }
            }
            // "tool", "schema", "name" and future additive keys.
            _ => {
                p.skip_value()?;
            }
        }
        p.skip_ws();
        if p.eat(',').is_some() {
            continue;
        }
        p.eat('}')?;
        break;
    }
    if saw_findings {
        Some(report)
    } else {
        None
    }
}

/// Parses a single finding object's key/value map.
fn parse_finding(obj: &KvMap) -> Option<Finding> {
    let code_s = obj.get("code")?;
    let code = PassCode::from_str_code(code_s).unwrap_or(PassCode::Unrecognized);
    // An unrecognized finding is neither clean nor an error: whatever
    // severity the (newer) writer attached, this build cannot act on it.
    let severity = if code == PassCode::Unrecognized {
        Severity::Unknown
    } else {
        Severity::from_str_sev(obj.get("severity")?)?
    };
    Some(Finding {
        code,
        severity,
        file: obj.get("file")?.clone(),
        line: obj.get("line")?.parse().ok()?,
        message: obj.get("message")?.clone(),
    })
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Ordered string→string map for one parsed JSON object.
struct KvMap(Vec<(String, String)>);

impl KvMap {
    fn get(&self, key: &str) -> Option<&String> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

struct JsonCursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl<'a> JsonCursor<'a> {
    fn new(s: &'a str) -> Self {
        JsonCursor {
            chars: s.chars().peekable(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> Option<()> {
        if self.chars.peek() == Some(&want) {
            self.chars.next();
            Some(())
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next()? {
                '"' => return Some(out),
                '\\' => match self.chars.next()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let mut v = 0u32;
                        for _ in 0..4 {
                            v = v * 16 + self.chars.next()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c => out.push(c),
            }
        }
    }

    /// An array of flat string-valued objects.
    fn object_array(&mut self) -> Option<Vec<KvMap>> {
        self.eat('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(']').is_some() {
            return Some(out);
        }
        loop {
            self.skip_ws();
            self.eat('{')?;
            let mut kvs = Vec::new();
            loop {
                self.skip_ws();
                let k = self.string()?;
                self.skip_ws();
                self.eat(':')?;
                self.skip_ws();
                let v = self.string()?;
                kvs.push((k, v));
                self.skip_ws();
                if self.eat(',').is_some() {
                    continue;
                }
                self.eat('}')?;
                break;
            }
            out.push(KvMap(kvs));
            self.skip_ws();
            if self.eat(',').is_some() {
                continue;
            }
            self.eat(']')?;
            return Some(out);
        }
    }

    fn string_array(&mut self) -> Option<Vec<String>> {
        self.eat('[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(']').is_some() {
            return Some(out);
        }
        loop {
            self.skip_ws();
            out.push(self.string()?);
            self.skip_ws();
            if self.eat(',').is_some() {
                continue;
            }
            self.eat(']')?;
            return Some(out);
        }
    }

    /// Skips one value of any supported shape (string, array of strings
    /// or flat objects) — used for unknown additive keys.
    fn skip_value(&mut self) -> Option<()> {
        self.skip_ws();
        match self.chars.peek()? {
            '"' => self.string().map(|_| ()),
            '[' => {
                // Try objects first, then strings; an empty array parses
                // either way.
                let rest: String = self.chars.clone().collect();
                let mut probe = JsonCursor::new(&rest);
                if probe.object_array().is_some() {
                    self.object_array().map(|_| ())
                } else {
                    self.string_array().map(|_| ())
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            elapsed_ms: 42,
            files_scanned: 87,
            passes: vec![
                PassSummary {
                    code: "L001".into(),
                    name: "MutationOutsideWriter".into(),
                    findings: 1,
                    ms: 3,
                },
                PassSummary {
                    code: "L005".into(),
                    name: "UncheckedWireArithmetic".into(),
                    findings: 0,
                    ms: 1,
                },
            ],
            unused_allows: vec!["L002 crates/x.rs \"old reason\"".into()],
            findings: vec![Finding::new(
                PassCode::MutationOutsideWriter,
                "crates/core/src/engine.rs",
                171,
                "weird \"quotes\"\nand\tlines",
            )],
        }
    }

    #[test]
    fn codes_are_stable() {
        for (code, s) in [
            (PassCode::MutationOutsideWriter, "L001"),
            (PassCode::RelaxedSyncDecision, "L002"),
            (PassCode::LockOrderInversion, "L003"),
            (PassCode::ErrorPathMustDeny, "L004"),
            (PassCode::UncheckedWireArithmetic, "L005"),
            (PassCode::PanicSite, "L006"),
        ] {
            assert_eq!(code.as_str(), s);
            assert_eq!(PassCode::from_str_code(s), Some(code));
        }
        // The forward-compat sentinel is parser-only.
        assert_eq!(PassCode::from_str_code("L???"), None);
    }

    #[test]
    fn report_round_trips_including_escapes() {
        let r = sample();
        let back = report_from_json(&r.to_json()).expect("round-trip parses");
        assert_eq!(r, back);
        let empty = Report::default();
        assert_eq!(report_from_json(&empty.to_json()), Some(empty));
    }

    #[test]
    fn unknown_pass_codes_parse_to_unrecognized_unknown() {
        let json = r#"{
  "tool":"fgac-lint","schema":"1","elapsed_ms":"1","files_scanned":"2",
  "passes":[],"unused_allows":[],
  "findings":[
    {"code":"L099","name":"FuturePass","severity":"critical","file":"a.rs","line":"7","message":"from the future"},
    {"code":"L002","name":"RelaxedSyncDecision","severity":"error","file":"b.rs","line":"9","message":"known"}
  ]
}"#;
        let r = report_from_json(json).expect("forward-compat parse");
        assert_eq!(r.findings.len(), 2);
        assert_eq!(r.findings[0].code, PassCode::Unrecognized);
        assert_eq!(r.findings[0].severity, Severity::Unknown);
        assert_eq!(r.findings[1].code, PassCode::RelaxedSyncDecision);
        assert_eq!(r.findings[1].severity, Severity::Error);
        // Structural strictness is unchanged: a known code with an
        // unknown severity string is still rejected.
        let bad = json.replace("\"error\"", "\"critical\"");
        assert_eq!(report_from_json(&bad), None);
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        for bad in ["", "{", "nonsense", "{\"findings\":[{]}", "{\"elapsed_ms\":\"x\"}"] {
            assert!(report_from_json(bad).is_none(), "input {bad:?}");
        }
    }
}
