//! fgac-lint: multi-pass concurrency-correctness analysis over the
//! workspace's own Rust sources.
//!
//! The paper's guarantees are operational: fail-closed denial,
//! no-stale-verdict under churn, writer-only mutation of swept state.
//! The type system does not check those, and a single mis-ordered
//! atomic breaks them silently. This crate checks them statically —
//! six passes (L001–L006, see `report.rs`) over a shared token/
//! function-stack source model (`source.rs`), scoped and allowlisted by
//! the checked-in `lint.toml` (`config.rs`), emitting JSON diagnostics
//! in the same forward-compatible wire shape as
//! `crates/analyze/src/diag.rs` (`report.rs`). The dynamic counterpart
//! — ThreadSanitizer over the churn/server tests and Miri over the
//! wal/frame tests — runs in CI and covers the passes' blind spots.
//!
//! Discovery is opt-out: every `.rs` file under the configured roots is
//! scanned unless excluded, so a new crate is linted the day it lands.

pub mod config;
pub mod passes;
pub mod report;
pub mod source;

use config::Config;
use passes::{registry, SourceFile};
use report::{Finding, PassCode, PassSummary, Report};
use std::io;
use std::path::Path;
use std::time::Instant;

/// Workspace-relative paths (sorted, `/`-separated) of every `.rs`
/// file in scope.
pub fn discover(root: &Path, cfg: &Config) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in &cfg.scope.roots {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, cfg, &mut out)?;
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, cfg: &Config, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !cfg.scope.exclude_dirs.contains(&name) {
                walk(&path, root, cfg, out)?;
            }
            continue;
        }
        if !name.ends_with(".rs") {
            continue;
        }
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if cfg
            .scope
            .exclude_files
            .iter()
            .any(|x| rel.starts_with(x.as_str()))
        {
            continue;
        }
        out.push(rel);
    }
    Ok(())
}

/// Reads and lexes every discovered file.
pub fn load_files(root: &Path, cfg: &Config) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for rel in discover(root, cfg)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        files.push(SourceFile::from_source(rel, &src));
    }
    Ok(files)
}

/// Runs every registered pass.
pub fn run(root: &Path, cfg: &Config) -> io::Result<Report> {
    run_with_passes(root, cfg, report::ALL_CODES)
}

/// Runs only the listed passes — the seeded-violation tests use this to
/// prove each pass is individually load-bearing.
pub fn run_with_passes(root: &Path, cfg: &Config, enabled: &[PassCode]) -> io::Result<Report> {
    let started = Instant::now();
    let files = load_files(root, cfg)?;
    let mut findings: Vec<Finding> = Vec::new();
    let mut summaries: Vec<PassSummary> = Vec::new();
    let mut used_allows = vec![false; cfg.allows.len()];

    for pass in registry() {
        let code = pass.code();
        if !enabled.contains(&code) || cfg.pass(code.as_str()).disabled {
            continue;
        }
        let scoped: Vec<&SourceFile> = files
            .iter()
            .filter(|f| cfg.pass_in_scope(code.as_str(), &f.path))
            .collect();
        let pass_started = Instant::now();
        let raw = pass.run(&scoped, cfg);
        let mut kept = 0usize;
        for finding in raw {
            match cfg.allow_index(code.as_str(), &finding.file, &finding.message) {
                Some(idx) => used_allows[idx] = true,
                None => {
                    kept += 1;
                    findings.push(finding);
                }
            }
        }
        summaries.push(PassSummary {
            code: code.as_str().to_string(),
            name: code.name().to_string(),
            findings: kept,
            ms: pass_started.elapsed().as_millis(),
        });
    }

    let unused_allows = cfg
        .allows
        .iter()
        .zip(&used_allows)
        .filter(|(_, used)| !**used)
        .map(|(a, _)| format!("{} {} ({})", a.pass, a.file, a.reason))
        .collect();

    findings.sort_by(|a, b| {
        (&a.file, a.line, a.code, &a.message).cmp(&(&b.file, b.line, b.code, &b.message))
    });

    Ok(Report {
        elapsed_ms: started.elapsed().as_millis(),
        files_scanned: files.len(),
        passes: summaries,
        unused_allows,
        findings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Discovery walks a scratch tree opt-out: unlisted files are in,
    /// excluded dirs/files are out.
    #[test]
    fn discovery_is_opt_out() {
        let base = std::env::temp_dir().join(format!("fgac-lint-disc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        for d in ["crates/newcrate/src", "crates/newcrate/tests", "crates/old/src", "src/bin"] {
            std::fs::create_dir_all(base.join(d)).expect("mkdir");
        }
        for f in [
            "crates/newcrate/src/fresh.rs",
            "crates/newcrate/tests/it.rs",
            "crates/old/src/lib.rs",
            "crates/old/src/skipme.rs",
            "src/bin/tool.rs",
            "src/bin/notes.md",
        ] {
            std::fs::write(base.join(f), "fn x() {}\n").expect("write");
        }
        let mut cfg = Config::default();
        cfg.scope.exclude_files.push("crates/old/src/skipme.rs".into());
        let got = discover(&base, &cfg).expect("discover");
        let _ = std::fs::remove_dir_all(&base);
        assert_eq!(
            got,
            vec![
                "crates/newcrate/src/fresh.rs".to_string(),
                "crates/old/src/lib.rs".to_string(),
                "src/bin/tool.rs".to_string(),
            ],
            "unlisted .rs files are scanned by default; tests/, excluded files, \
             and non-Rust files are not"
        );
    }
}
