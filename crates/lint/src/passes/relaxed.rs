//! L002 RelaxedSyncDecision.
//!
//! `Ordering::Relaxed` is fine for a statistics counter and wrong for a
//! decision: a relaxed load carries no happens-before edge, so a branch
//! on it — return a verdict, serve a cache entry, gate a lock — can act
//! on state the writer has already swept. The pass flags `Relaxed`
//! tokens in *decision position*: inside an `if`/`while` condition or
//! `match` scrutinee, or a `load(..Relaxed)` whose result is
//! immediately compared. (Condition extent = tokens up to the first
//! `{` at delimiter depth 0 — sound because Rust forbids struct
//! literals in condition position.)
//!
//! The pass also enforces the workspace's Relaxed audit: every file
//! with `Ordering::Relaxed` in non-test code must have a `[[relaxed]]`
//! entry in `lint.toml` whose `sites` count matches and whose `reason`
//! says why relaxed ordering is correct there. A missing entry, a stale
//! count, and an entry pointing at nothing are each findings — the
//! ledger cannot drift silently in either direction.

use super::{Pass, SourceFile};
use crate::config::Config;
use crate::report::{Finding, PassCode};
use crate::source::{matching_close, Tok};
use std::collections::BTreeMap;

pub struct RelaxedSyncDecision;

const COMPARISONS: &[&str] = &["==", "!=", "<", ">", "<=", ">="];

/// Marks token indices lying in an `if`/`while` condition or `match`
/// scrutinee. The scan for the opening `{` stops at `;` or an
/// enclosing close brace as a safety bound (malformed or macro-heavy
/// code degrades to "no decision range", never to a runaway).
fn decision_positions(toks: &[Tok]) -> Vec<bool> {
    let mut marked = vec![false; toks.len()];
    for i in 0..toks.len() {
        if !(toks[i].is("if") || toks[i].is("while") || toks[i].is("match")) {
            continue;
        }
        let mut depth = 0i64;
        for j in i + 1..toks.len() {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" => break,
                "}" if depth <= 0 => break,
                _ => {}
            }
            marked[j] = true;
        }
    }
    marked
}

impl Pass for RelaxedSyncDecision {
    fn code(&self) -> PassCode {
        PassCode::RelaxedSyncDecision
    }

    fn run(&self, files: &[&SourceFile], cfg: &Config) -> Vec<Finding> {
        let mut out = Vec::new();
        // file path -> (site count, first site line)
        let mut sites: BTreeMap<&str, (usize, usize)> = BTreeMap::new();

        for file in files {
            let toks = &file.toks;
            let decision = decision_positions(toks);
            for i in 0..toks.len() {
                if !toks[i].is("Relaxed") {
                    continue;
                }
                let entry = sites.entry(file.path.as_str()).or_insert((0, toks[i].line));
                entry.0 += 1;

                let mut decides = decision.get(i).copied().unwrap_or(false);
                // `x.load(Ordering::Relaxed) == other` outside a
                // condition: the comparison result *is* a decision.
                if !decides {
                    if let Some(open) = (0..i).rev().find(|&k| {
                        toks[k].is("(") && matching_close(toks, k).is_some_and(|c| c > i)
                    }) {
                        let close = matching_close(toks, open).unwrap();
                        let is_load_call = open >= 1 && toks[open - 1].is("load");
                        let compared = toks
                            .get(close + 1)
                            .is_some_and(|t| COMPARISONS.contains(&t.text.as_str()));
                        decides = is_load_call && compared;
                    }
                }
                if decides {
                    out.push(Finding::new(
                        PassCode::RelaxedSyncDecision,
                        file.path.clone(),
                        toks[i].line,
                        "Ordering::Relaxed in decision position — a relaxed load carries no \
                         happens-before edge, so this branch can act on swept state; use \
                         Acquire (and Release on the store side)"
                            .to_string(),
                    ));
                }
            }
        }

        // Audit ledger enforcement, both directions.
        for (path, (count, first_line)) in &sites {
            match cfg.relaxed.iter().find(|r| r.file == *path) {
                None => out.push(Finding::new(
                    PassCode::RelaxedSyncDecision,
                    (*path).to_string(),
                    *first_line,
                    format!(
                        "{count} Ordering::Relaxed site(s) with no [[relaxed]] audit entry in \
                         lint.toml — add one with a justification, or fix the ordering"
                    ),
                )),
                Some(r) if r.sites != *count => out.push(Finding::new(
                    PassCode::RelaxedSyncDecision,
                    (*path).to_string(),
                    *first_line,
                    format!(
                        "[[relaxed]] audit entry records {} site(s) but the file has {count} — \
                         re-audit and update the ledger",
                        r.sites
                    ),
                )),
                Some(_) => {}
            }
        }
        for r in &cfg.relaxed {
            if !sites.contains_key(r.file.as_str()) {
                out.push(Finding::new(
                    PassCode::RelaxedSyncDecision,
                    r.file.clone(),
                    1,
                    "[[relaxed]] audit entry is stale: the file has no Ordering::Relaxed \
                     sites in scope — remove the entry"
                        .to_string(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RelaxedAudit;

    fn audited(path: &str, sites: usize) -> Config {
        let mut cfg = Config::default();
        cfg.relaxed.push(RelaxedAudit {
            file: path.into(),
            sites,
            reason: "test ledger".into(),
        });
        cfg
    }

    #[test]
    fn relaxed_in_condition_fires() {
        let src = r#"
fn pump(stop: &AtomicBool) {
    while !stop.load(Ordering::Relaxed) {
        step();
    }
    if flag.load(Ordering::Relaxed) { serve_cached(); }
}
"#;
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        let found = RelaxedSyncDecision.run(&[&f], &audited("crates/x/src/a.rs", 2));
        assert_eq!(found.len(), 2, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert_eq!(found[1].line, 6);
    }

    #[test]
    fn comparison_fed_load_fires_counter_bump_does_not() {
        let src = r#"
fn check(&self) -> bool {
    let fresh = self.epoch.load(Ordering::Relaxed) == self.snapshot;
    self.hits.fetch_add(1, Ordering::Relaxed);
    fresh
}
"#;
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        let found = RelaxedSyncDecision.run(&[&f], &audited("crates/x/src/a.rs", 2));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn match_scrutinee_counts_as_decision() {
        let src = "fn f() { match state.load(Ordering::Relaxed) { 0 => a(), _ => b(), } }";
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        let found = RelaxedSyncDecision.run(&[&f], &audited("crates/x/src/a.rs", 1));
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn audit_ledger_catches_missing_stale_and_dangling_entries() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }";
        let f = SourceFile::from_source("crates/x/src/a.rs", src);

        // No entry at all.
        let found = RelaxedSyncDecision.run(&[&f], &Config::default());
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("no [[relaxed]] audit entry"));

        // Entry with the wrong count.
        let found = RelaxedSyncDecision.run(&[&f], &audited("crates/x/src/a.rs", 7));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("records 7 site(s)"));

        // Entry pointing at a file with no sites.
        let clean = SourceFile::from_source("crates/x/src/b.rs", "fn g() {}");
        let found = RelaxedSyncDecision.run(&[&clean], &audited("crates/x/src/b.rs", 1));
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("stale"));

        // Correct ledger: quiet.
        let found = RelaxedSyncDecision.run(&[&f], &audited("crates/x/src/a.rs", 1));
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn relaxed_in_test_code_is_invisible() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.load(Ordering::Relaxed); } }\n";
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        assert!(RelaxedSyncDecision.run(&[&f], &Config::default()).is_empty());
    }
}
