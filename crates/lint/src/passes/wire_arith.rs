//! L005 UncheckedWireArithmetic.
//!
//! In frame/wire parsing code, a length or offset is attacker- (or
//! corruption-) controlled input. Unchecked `+`/`*` on such a value
//! can wrap and turn a corrupt length field into a mis-bounded slice
//! instead of `Error::Corrupt`; a narrowing `as` cast silently
//! truncates an oversized length into a plausible small one. The pass
//! is scoped (via `lint.toml`) to the wire-parsing files — WAL
//! framing, server framing, the wire reader — where this class of
//! arithmetic is load-bearing.
//!
//! What counts:
//! - binary `+` / `*` where an operand is a *len-ish* identifier
//!   (contains `len`, `pos`, `offset`, `size`, or `count`), outside
//!   `checked_*`/`saturating_*`/`wrapping_*` and capacity-hint calls
//!   (`with_capacity`, `reserve`) — those are already deliberate;
//! - `as u8` / `as u16` / `as u32` narrowing of a len-ish value;
//!   widening (`as usize`, `as u64`) cannot lose bits and is exempt,
//!   as are SCREAMING_CASE constants (compile-time known, not input).
//!
//! `+=` is out of scope: it tokenizes as its own operator and the
//! accumulate-in-place sites are loop cursors whose bounds are checked
//! by the loop condition.

use super::{Pass, SourceFile};
use crate::config::Config;
use crate::report::{Finding, PassCode};
use crate::source::{matching_close, Tok};

pub struct UncheckedWireArithmetic;

/// Calls whose argument lists are exempt: the arithmetic inside is
/// either already overflow-aware or a capacity hint.
const EXEMPT_CALLS: &[&str] = &[
    "checked_add",
    "checked_mul",
    "checked_sub",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "wrapping_add",
    "wrapping_mul",
    "with_capacity",
    "reserve",
    "min",
    "max",
];

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32"];

fn lenish(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    ["len", "pos", "offset", "size", "count"]
        .iter()
        .any(|k| lower.contains(k))
}

fn screaming_const(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase()) && !name.chars().any(|c| c.is_ascii_lowercase())
}

/// Token ranges inside exempt call argument lists.
fn exempt_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_ident
            && EXEMPT_CALLS.contains(&toks[i].text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is("("))
        {
            if let Some(close) = matching_close(toks, i + 1) {
                out.push((i + 1, close));
            }
        }
    }
    out
}

/// The identifier an operand expression ends with, looking left from
/// `i` (exclusive): walks back over one `(..)`/`[..]` group so
/// `payload.len()` and `bytes[pos]` resolve to `len` / `pos`.
fn operand_ident_left(toks: &[Tok], i: usize) -> Option<&str> {
    let mut j = i.checked_sub(1)?;
    for (open, close) in [("(", ")"), ("[", "]")] {
        if toks[j].is(close) {
            let mut depth = 1usize;
            while depth > 0 {
                j = j.checked_sub(1)?;
                if toks[j].is(close) {
                    depth += 1;
                } else if toks[j].is(open) {
                    depth -= 1;
                }
            }
            j = j.checked_sub(1)?;
            break;
        }
    }
    toks[j].is_ident.then(|| toks[j].text.as_str())
}

/// The identifier an operand expression starts with, looking right
/// from `i` (exclusive), skipping `self .` prefixes.
fn operand_ident_right(toks: &[Tok], i: usize) -> Option<&str> {
    let mut j = i + 1;
    while toks.get(j).is_some_and(|t| t.is("self")) && toks.get(j + 1).is_some_and(|t| t.is(".")) {
        j += 2;
    }
    let t = toks.get(j)?;
    t.is_ident.then_some(t.text.as_str())
}

impl Pass for UncheckedWireArithmetic {
    fn code(&self) -> PassCode {
        PassCode::UncheckedWireArithmetic
    }

    fn run(&self, files: &[&SourceFile], _cfg: &Config) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            let toks = &file.toks;
            let exempt = exempt_ranges(toks);
            let is_exempt = |i: usize| exempt.iter().any(|&(a, b)| a < i && i < b);

            for i in 0..toks.len() {
                // Narrowing cast of a len-ish value.
                if toks[i].is("as")
                    && toks
                        .get(i + 1)
                        .is_some_and(|t| NARROW_TARGETS.contains(&t.text.as_str()))
                    && !is_exempt(i)
                {
                    if let Some(name) = operand_ident_left(toks, i) {
                        if lenish(name) && !screaming_const(name) {
                            out.push(Finding::new(
                                PassCode::UncheckedWireArithmetic,
                                file.path.clone(),
                                toks[i].line,
                                format!(
                                    "`{name} as {}` silently truncates an oversized value — \
                                     use `{}::try_from` and surface the error",
                                    toks[i + 1].text,
                                    toks[i + 1].text
                                ),
                            ));
                        }
                    }
                    continue;
                }

                // Unchecked + / * with a len-ish operand.
                if !(toks[i].is("+") || toks[i].is("*")) || is_exempt(i) {
                    continue;
                }
                // `*` must be binary: the left neighbor ends an
                // expression (ident or close delimiter), not an
                // operator — otherwise it's a deref or a type.
                let left_closes = i > 0
                    && (toks[i - 1].is_ident || toks[i - 1].is(")") || toks[i - 1].is("]"));
                if !left_closes {
                    continue;
                }
                let left = operand_ident_left(toks, i);
                let right = operand_ident_right(toks, i);
                let culprit = [left, right]
                    .into_iter()
                    .flatten()
                    .find(|n| lenish(n) && !screaming_const(n))
                    // A SCREAMING const operand still taints the sum if
                    // the *other* side is len-ish; a pair of consts or
                    // non-len identifiers does not.
                    ;
                if let Some(name) = culprit {
                    let op = &toks[i].text;
                    out.push(Finding::new(
                        PassCode::UncheckedWireArithmetic,
                        file.path.clone(),
                        toks[i].line,
                        format!(
                            "unchecked `{op}` on length/offset value `{name}` — use \
                             checked_{} and map overflow to a corruption error",
                            if op == "+" { "add" } else { "mul" }
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/wal/src/log.rs", src);
        UncheckedWireArithmetic.run(&[&f], &Config::default())
    }

    #[test]
    fn unchecked_add_on_offsets_fires() {
        let src = r#"
fn recover(bytes: &[u8], pos: usize, plen: usize) {
    let end = pos + HEADER + plen;
    let frame = &bytes[pos + HEADER..end];
}
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found.iter().all(|f| f.message.contains("checked_add")));
    }

    #[test]
    fn checked_and_capacity_calls_are_exempt() {
        let src = r#"
fn recover(pos: usize, plen: usize) -> Option<usize> {
    let end = pos.checked_add(plen)?;
    let buf = Vec::with_capacity(plen * 2);
    sizes.reserve(count + 1);
    Some(end)
}
"#;
        let found = run_on(src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn narrowing_cast_fires_widening_does_not() {
        let src = r#"
fn frame(payload: &[u8]) {
    let len32 = payload.len() as u32;
    let wide = payload.len() as u64;
    let idx = pos as usize;
}
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("try_from"));
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn screaming_consts_and_non_len_math_are_quiet() {
        let src = r#"
fn f(x: usize, y: usize) {
    let a = MAX_PAYLOAD + HEADER_LEN;
    let b = x + y;
    let c = shards * 2;
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn deref_and_compound_assign_are_not_binary_mul() {
        let src = r#"
fn f(p: &usize, pos: &mut usize) {
    let v = *p;
    *pos += 1;
    let ty: *const u8 = q;
}
"#;
        assert!(run_on(src).is_empty());
    }
}
