//! L003 LockOrderInversion.
//!
//! Builds the static lock-acquisition graph: an acquisition is a
//! zero-argument `.lock()` / `.read()` / `.write()` call, its identity
//! is `file_stem::receiver` (so `cache.rs`'s shard mutexes and
//! `server.rs`'s connection table stay distinct even when the fields
//! share a name), and within one function every earlier acquisition is
//! assumed still held when a later one happens — unless an explicit
//! `drop(..)` intervenes, or the brace depth falls below the
//! acquisition's (the guard's block closed: the `{ let g = x.read();
//! ... }` scoping idiom releases it). Calls propagate one level: a
//! bare call to a function with known direct acquisitions splices that
//! function's acquisitions in at the call site, released again at the
//! call's end (the callee's guards die with its frame).
//!
//! Findings: a cycle in the graph (two code paths acquire the same two
//! locks in opposite orders — the classic ABBA deadlock), and a
//! read-then-write on the same `RwLock` identity in one function with
//! no intervening `drop` (a self-deadlock on any non-reentrant RwLock,
//! and a lost-update hazard on one that allows it).
//!
//! Over-approximations (each can be allowlisted with a reason): guard
//! lifetimes are not tracked beyond `drop`, and receiver identity is
//! textual. Under-approximation: acquisitions reached through more
//! than one call level are invisible — the dynamic TSan job covers
//! that blind spot.

use super::{Pass, SourceFile};
use crate::config::Config;
use crate::report::{Finding, PassCode};
use crate::source::receiver_before;
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrderInversion;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Lock,
    Read,
    Write,
}

#[derive(Debug, Clone)]
enum Event {
    /// `depth` is the brace depth at the acquisition site: when the
    /// depth later falls below it, the guard's block has closed and the
    /// lock is released.
    Acquire {
        id: String,
        kind: Kind,
        line: usize,
        depth: usize,
    },
    /// Explicit `drop(..)` — coarse: releases everything held.
    Drop,
    /// A close brace brought the depth down to the carried value.
    Scope(usize),
    Call {
        name: String,
        line: usize,
        depth: usize,
    },
}

/// Where an edge was observed: `file:line` inside `fn`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Evidence {
    file: String,
    line: usize,
    func: String,
}

fn harvest(files: &[&SourceFile]) -> Vec<(String, String, Vec<Event>)> {
    use crate::source::FnWalker;
    let mut fns: Vec<(String, String, Vec<Event>)> = Vec::new();
    for file in files {
        let toks = &file.toks;
        let stem = file.stem().to_string();
        let mut walker = FnWalker::new();
        let mut current: Option<(String, Vec<Event>)> = None;
        let mut depth = 0usize;
        for i in 0..toks.len() {
            let before = walker.outermost().map(String::from);
            walker.step(toks, i);
            let after = walker.outermost().map(String::from);
            match toks[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if let Some((_, events)) = current.as_mut() {
                        events.push(Event::Scope(depth));
                    }
                }
                _ => {}
            }
            if before != after {
                if let Some((name, events)) = current.take() {
                    fns.push((file.path.clone(), name, events));
                }
                if let Some(name) = after.clone() {
                    current = Some((name, Vec::new()));
                }
            }
            let Some((_, events)) = current.as_mut() else {
                continue;
            };
            let t = &toks[i];
            // `.lock()` / `.read()` / `.write()` with no arguments.
            if t.is(".")
                && toks.get(i + 2).is_some_and(|p| p.is("("))
                && toks.get(i + 3).is_some_and(|p| p.is(")"))
            {
                let kind = match toks[i + 1].text.as_str() {
                    "lock" => Some(Kind::Lock),
                    "read" => Some(Kind::Read),
                    "write" => Some(Kind::Write),
                    _ => None,
                };
                if let (Some(kind), Some(recv)) = (kind, receiver_before(toks, i)) {
                    events.push(Event::Acquire {
                        id: format!("{stem}::{recv}"),
                        kind,
                        line: toks[i + 1].line,
                        depth,
                    });
                    continue;
                }
            }
            // Explicit early release.
            if t.is("drop") && toks.get(i + 1).is_some_and(|p| p.is("(")) {
                events.push(Event::Drop);
                continue;
            }
            // Bare call (not a method, not a definition, not a macro).
            if t.is_ident
                && toks.get(i + 1).is_some_and(|p| p.is("("))
                && i > 0
                && !toks[i - 1].is(".")
                && !toks[i - 1].is("fn")
                && !toks[i - 1].is("::")
            {
                events.push(Event::Call {
                    name: t.text.clone(),
                    line: t.line,
                    depth,
                });
            }
        }
        if let Some((name, events)) = current.take() {
            fns.push((file.path.clone(), name, events));
        }
    }
    fns
}

impl Pass for LockOrderInversion {
    fn code(&self) -> PassCode {
        PassCode::LockOrderInversion
    }

    fn run(&self, files: &[&SourceFile], _cfg: &Config) -> Vec<Finding> {
        let fns = harvest(files);

        // Direct acquisition/drop sequences, for one-level propagation.
        let mut direct: BTreeMap<&str, Vec<&Event>> = BTreeMap::new();
        for (_, name, events) in &fns {
            let seq: Vec<&Event> = events
                .iter()
                .filter(|e| matches!(e, Event::Acquire { .. } | Event::Drop))
                .collect();
            if seq.iter().any(|e| matches!(e, Event::Acquire { .. })) {
                direct.entry(name).or_default().extend(seq);
            }
        }

        let mut out = Vec::new();
        // edge (a -> b) -> first evidence
        let mut edges: BTreeMap<(String, String), Evidence> = BTreeMap::new();

        // Spliced callee acquisitions are released when the callee
        // returns; give them a depth deeper than any real block so the
        // Scope marker emitted after the splice releases exactly them.
        const CALLEE_DEPTH: usize = usize::MAX / 2;

        for (file, name, events) in &fns {
            // Expand calls one level.
            let mut timeline: Vec<Event> = Vec::new();
            for e in events {
                match e {
                    Event::Call {
                        name: callee,
                        line,
                        depth,
                    } => {
                        if callee != name {
                            if let Some(callee_seq) = direct.get(callee.as_str()) {
                                for ce in callee_seq {
                                    if let Event::Acquire { id, kind, .. } = ce {
                                        timeline.push(Event::Acquire {
                                            id: id.clone(),
                                            kind: *kind,
                                            line: *line,
                                            depth: CALLEE_DEPTH,
                                        });
                                    }
                                }
                                timeline.push(Event::Scope(*depth));
                            }
                        }
                    }
                    other => timeline.push(other.clone()),
                }
            }
            let drops: Vec<usize> = timeline
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, Event::Drop))
                .map(|(p, _)| p)
                .collect();
            let scopes: Vec<(usize, usize)> = timeline
                .iter()
                .enumerate()
                .filter_map(|(p, e)| match e {
                    Event::Scope(d) => Some((p, *d)),
                    _ => None,
                })
                .collect();
            // Ordered pairs where the first guard is still held at the
            // second acquisition: no explicit drop between, and the
            // depth never fell below the first acquisition's depth
            // (which would mean its block closed).
            let acquire_positions: Vec<usize> = timeline
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, Event::Acquire { .. }))
                .map(|(p, _)| p)
                .collect();
            for (ai, &apos) in acquire_positions.iter().enumerate() {
                for &bpos in &acquire_positions[ai + 1..] {
                    if drops.iter().any(|&d| apos < d && d < bpos) {
                        continue;
                    }
                    let (
                        Event::Acquire {
                            id: a,
                            kind: ak,
                            depth: adepth,
                            ..
                        },
                        Event::Acquire { id: b, kind: bk, line: bline, .. },
                    ) = (&timeline[apos], &timeline[bpos])
                    else {
                        continue;
                    };
                    if scopes
                        .iter()
                        .any(|&(p, d)| apos < p && p < bpos && d < *adepth)
                    {
                        continue;
                    }
                    if a == b {
                        // Same identity re-acquired: a read-then-write
                        // upgrade is a finding; same-kind repeats are
                        // the shard-iteration idiom and stay quiet.
                        if *ak == Kind::Read && *bk == Kind::Write {
                            out.push(Finding::new(
                                PassCode::LockOrderInversion,
                                file.clone(),
                                *bline,
                                format!(
                                    "`{name}` upgrades `{a}` from read() to write() with no \
                                     intervening drop — self-deadlock on a non-reentrant \
                                     RwLock; drop the read guard first"
                                ),
                            ));
                        }
                        continue;
                    }
                    edges.entry((a.clone(), b.clone())).or_insert(Evidence {
                        file: file.clone(),
                        line: *bline,
                        func: name.clone(),
                    });
                }
            }
        }

        out.extend(find_cycles(&edges));
        out
    }
}

/// DFS cycle detection; each cycle reported once, keyed by its lock
/// set, with the evidence site of every edge in the cycle.
fn find_cycles(edges: &BTreeMap<(String, String), Evidence>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a).or_default().push(b);
    }
    let mut out = Vec::new();
    let mut reported: BTreeSet<BTreeSet<String>> = BTreeSet::new();
    // Depth-first walk carrying the explicit path; a revisit of a node
    // on the current path closes a cycle. Bounded by node count, and
    // the real graph is a handful of locks — exhaustive is fine.
    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        path: &mut Vec<&'a str>,
        edges: &BTreeMap<(String, String), Evidence>,
        reported: &mut BTreeSet<BTreeSet<String>>,
        out: &mut Vec<Finding>,
    ) {
        if let Some(pos) = path.iter().position(|&n| n == node) {
            let cycle: Vec<&str> = path[pos..].to_vec();
            let key: BTreeSet<String> = cycle.iter().map(|s| s.to_string()).collect();
            if reported.insert(key) {
                let mut hops = Vec::new();
                let mut first: Option<&Evidence> = None;
                for w in 0..cycle.len() {
                    let a = cycle[w];
                    let b = cycle[(w + 1) % cycle.len()];
                    if let Some(ev) = edges.get(&(a.to_string(), b.to_string())) {
                        hops.push(format!("{a} -> {b} ({}:{} in `{}`)", ev.file, ev.line, ev.func));
                        first.get_or_insert(ev);
                    }
                }
                if let Some(ev) = first {
                    out.push(Finding::new(
                        PassCode::LockOrderInversion,
                        ev.file.clone(),
                        ev.line,
                        format!("lock-order cycle: {}", hops.join("; ")),
                    ));
                }
            }
            return;
        }
        if path.len() > adj.len() {
            return;
        }
        path.push(node);
        if let Some(next) = adj.get(node) {
            for &n in next {
                dfs(n, adj, path, edges, reported, out);
            }
        }
        path.pop();
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for &start in &nodes {
        let mut path: Vec<&str> = Vec::new();
        dfs(start, &adj, &mut path, edges, &mut reported, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(sources: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(p, s)| SourceFile::from_source(*p, s))
            .collect();
        let refs: Vec<&SourceFile> = files.iter().collect();
        LockOrderInversion.run(&refs, &Config::default())
    }

    #[test]
    fn abba_cycle_across_functions_is_found() {
        let src = r#"
fn forward(&self) {
    let a = self.table.lock();
    let b = self.journal.lock();
}
fn backward(&self) {
    let b = self.journal.lock();
    let a = self.table.lock();
}
"#;
        let found = run_on(&[("crates/x/src/m.rs", src)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("lock-order cycle"), "{found:?}");
        assert!(found[0].message.contains("m::table"));
        assert!(found[0].message.contains("m::journal"));
    }

    #[test]
    fn consistent_order_and_drop_separated_orders_are_quiet() {
        let consistent = r#"
fn one(&self) { let a = self.table.lock(); let b = self.journal.lock(); }
fn two(&self) { let a = self.table.lock(); let b = self.journal.lock(); }
"#;
        assert!(run_on(&[("crates/x/src/m.rs", consistent)]).is_empty());
        let dropped = r#"
fn one(&self) { let a = self.table.lock(); let b = self.journal.lock(); }
fn two(&self) { let b = self.journal.lock(); drop(b); let a = self.table.lock(); }
"#;
        assert!(run_on(&[("crates/x/src/m.rs", dropped)]).is_empty());
    }

    #[test]
    fn read_then_write_upgrade_fires_unless_dropped() {
        let upgrade = "fn f(&self) { let g = self.inner.read(); let w = self.inner.write(); }";
        let found = run_on(&[("crates/x/src/m.rs", upgrade)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("read() to write()"));
        let ok = "fn f(&self) { let g = self.inner.read(); drop(g); let w = self.inner.write(); }";
        assert!(run_on(&[("crates/x/src/m.rs", ok)]).is_empty());
    }

    #[test]
    fn block_scoped_guard_is_released_at_close_brace() {
        // The SharedEngine::execute_at idiom: read in an inner block,
        // write after it closes.
        let src = r#"
fn execute(&self) {
    {
        let engine = self.inner.read();
        if engine.fast_path() { return; }
    }
    let mut engine = self.inner.write();
    engine.slow_path();
}
"#;
        assert!(run_on(&[("crates/x/src/m.rs", src)]).is_empty());
    }

    #[test]
    fn callee_guards_do_not_order_against_later_caller_locks() {
        // helper()'s guard dies when helper returns, so journal-then-
        // table here is NOT an ordering edge (no cycle with `other`).
        let src = r#"
fn outer(&self) {
    helper(self);
    let g = self.table.lock();
}
fn helper(&self) { let j = self.journal.lock(); }
fn other(&self) { let g = self.table.lock(); let j = self.journal.lock(); }
"#;
        assert!(run_on(&[("crates/x/src/m.rs", src)]).is_empty());
    }

    #[test]
    fn shard_loop_self_edges_are_quiet() {
        let src = "fn sweep(&self) { for s in &self.shards { let g = s.lock(); g.clear(); } }";
        assert!(run_on(&[("crates/x/src/m.rs", src)]).is_empty());
    }

    #[test]
    fn one_level_call_propagation_links_the_graph() {
        let a = r#"
fn outer(&self) {
    let g = self.table.lock();
    helper(self);
}
fn helper(&self) { let j = self.journal.lock(); }
fn other(&self) { let j = self.journal.lock(); let g = self.table.lock(); }
"#;
        let found = run_on(&[("crates/x/src/m.rs", a)]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("cycle"));
    }

    #[test]
    fn identities_are_file_qualified() {
        // Same field names in different files are different locks.
        let a = "fn f(&self) { let x = self.inner.lock(); let y = self.outer.lock(); }";
        let b = "fn g(&self) { let y = self.outer.lock(); let x = self.inner.lock(); }";
        let found = run_on(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        assert!(found.is_empty(), "{found:?}");
    }
}
