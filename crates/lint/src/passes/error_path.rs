//! L004 ErrorPathMustDeny.
//!
//! PR 1's fail-closed discipline, promoted from convention to checked
//! invariant: in the admission/validator/server decision paths, an
//! error is a denial. The pass scans `Err(..) =>` match arms in scoped
//! files for *accept evidence* — an `Accept` verdict, `Ok(true)`, a
//! bare `true` result, a verdict-cache insert, or an empty body that
//! swallows the error — and flags `unwrap_or(true)`-style accept
//! defaults anywhere in scope.
//!
//! The evidence is deliberately *positive* (what acceptance looks
//! like), not negative (absence of a deny token): an `Err` arm that
//! logs and re-raises should not need an allowlist entry, while an arm
//! that accepts should never escape because it also happened to
//! mention a deny identifier somewhere.

use super::{Pass, SourceFile};
use crate::config::Config;
use crate::report::{Finding, PassCode};
use crate::source::{matching_close, receiver_before, FnWalker, Tok};

pub struct ErrorPathMustDeny;

/// Structures whose `.insert(..)` in an error arm means "cache a
/// verdict on the error path".
const VERDICT_CACHES: &[&str] = &["cache", "plan_cache"];

/// `[start, end)` token range of the arm body following `=>` at `arrow`.
fn arm_body(toks: &[Tok], arrow: usize) -> (usize, usize) {
    let start = arrow + 1;
    if toks.get(start).is_some_and(|t| t.is("{")) {
        let end = matching_close(toks, start).unwrap_or(toks.len());
        return (start + 1, end);
    }
    let mut depth = 0i64;
    let mut j = start;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" if depth == 0 => break,
            "}" => depth -= 1,
            "," if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    (start, j)
}

/// Why an arm body reads as acceptance, if it does.
fn accept_evidence(toks: &[Tok], start: usize, end: usize) -> Option<(String, usize)> {
    let body = &toks[start..end];
    if body.is_empty() || body.iter().all(|t| t.is("(") || t.is(")")) {
        let line = toks.get(start.saturating_sub(1)).map_or(0, |t| t.line);
        return Some(("the error is silently swallowed".into(), line));
    }
    if body.len() == 1 && body[0].is("true") {
        return Some(("the arm evaluates to `true`".into(), body[0].line));
    }
    if body.len() >= 2 && body[0].is("return") && body[1].is("true") {
        return Some(("the arm returns `true`".into(), body[0].line));
    }
    for (off, t) in body.iter().enumerate() {
        let i = start + off;
        if t.is("Accept") {
            return Some(("the arm produces an `Accept` verdict".into(), t.line));
        }
        if t.is("Ok")
            && toks.get(i + 1).is_some_and(|p| p.is("("))
            && toks.get(i + 2).is_some_and(|p| p.is("true"))
        {
            return Some(("the arm produces `Ok(true)`".into(), t.line));
        }
        if t.is(".")
            && toks.get(i + 1).is_some_and(|p| p.is("insert"))
            && toks.get(i + 2).is_some_and(|p| p.is("("))
        {
            if let Some(recv) = receiver_before(toks, i) {
                if VERDICT_CACHES.contains(&recv) {
                    return Some((
                        format!("the arm caches a verdict (`{recv}.insert(..)`)"),
                        toks[i + 1].line,
                    ));
                }
            }
        }
    }
    None
}

impl Pass for ErrorPathMustDeny {
    fn code(&self) -> PassCode {
        PassCode::ErrorPathMustDeny
    }

    fn run(&self, files: &[&SourceFile], _cfg: &Config) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            let toks = &file.toks;
            let mut walker = FnWalker::new();
            for i in 0..toks.len() {
                walker.step(toks, i);
                let here = || walker.current().unwrap_or("<top level>").to_string();

                // `Err(..) => <body>` match arms.
                if toks[i].is("Err") && toks.get(i + 1).is_some_and(|t| t.is("(")) {
                    if let Some(close) = matching_close(toks, i + 1) {
                        if toks.get(close + 1).is_some_and(|t| t.is("=>")) {
                            let (start, end) = arm_body(toks, close + 1);
                            if let Some((why, line)) = accept_evidence(toks, start, end) {
                                out.push(Finding::new(
                                    PassCode::ErrorPathMustDeny,
                                    file.path.clone(),
                                    line,
                                    format!(
                                        "Err arm in `{}` does not deny: {why} — error paths \
                                         in decision code must produce a deny/uncached outcome",
                                        here()
                                    ),
                                ));
                            }
                        }
                    }
                }

                // Accept-by-default on a fallible decision.
                if toks[i].is("unwrap_or")
                    && toks.get(i + 1).is_some_and(|t| t.is("("))
                    && toks.get(i + 2).is_some_and(|t| t.is("true"))
                {
                    out.push(Finding::new(
                        PassCode::ErrorPathMustDeny,
                        file.path.clone(),
                        toks[i].line,
                        format!(
                            "`unwrap_or(true)` in `{}` accepts when the fallible decision \
                             fails — the default must deny",
                            here()
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        ErrorPathMustDeny.run(&[&f], &Config::default())
    }

    #[test]
    fn accepting_err_arms_fire() {
        let src = r#"
fn decide(&self, r: Result<V, E>) -> Verdict {
    match r {
        Ok(v) => v.verdict(),
        Err(_) => Verdict::Accept,
    }
}
fn decide2(&self, r: Result<bool, E>) -> bool {
    match r {
        Ok(v) => v,
        Err(_) => true,
    }
}
fn swallow(&self, r: Result<V, E>) {
    match r {
        Ok(v) => self.apply(v),
        Err(_) => {}
    }
}
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 3, "{found:?}");
        assert!(found[0].message.contains("Accept"));
        assert!(found[1].message.contains("`true`"));
        assert!(found[2].message.contains("swallowed"));
    }

    #[test]
    fn denying_and_propagating_arms_are_quiet() {
        let src = r#"
fn decide(&self, r: Result<V, E>) -> Verdict {
    match r {
        Ok(v) => v.verdict(),
        Err(e) => {
            self.metrics.record_error(&e);
            Verdict::Deny
        }
    }
}
fn propagate(&self, r: Result<V, E>) -> Result<V, E> {
    match r {
        Ok(v) => Ok(v),
        Err(e) => Err(Error::wrap(e)),
    }
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn verdict_cache_insert_on_error_path_fires() {
        let src = r#"
fn decide(&self, r: Result<V, E>) -> Verdict {
    match r {
        Ok(v) => v.verdict(),
        Err(_) => {
            self.cache.insert(key, Verdict::Deny);
            Verdict::Deny
        }
    }
}
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("caches a verdict"));
    }

    #[test]
    fn unwrap_or_true_fires_unwrap_or_false_does_not() {
        let src = r#"
fn a(&self) -> bool { self.check().unwrap_or(true) }
fn b(&self) -> bool { self.check().unwrap_or(false) }
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("unwrap_or(true)"));
    }

    #[test]
    fn if_let_err_bindings_are_not_arms() {
        // `if let Err(e) = r { log(e); }` has no `=>`; out of scope.
        let src = "fn f(r: Result<(), E>) { if let Err(e) = r { log(e); } }";
        assert!(run_on(src).is_empty());
    }
}
