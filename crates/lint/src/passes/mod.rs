//! The pass registry.
//!
//! A pass is a pure function from (scoped file set, config) to
//! findings. The engine, not the pass, applies scope restriction and
//! the `[[allow]]` list, so every pass stays honest: it reports what it
//! sees, and silencing is centralized, configuration-driven, and
//! audited for staleness.
//!
//! Adding a pass (see DESIGN.md §4l): pick the next `L###` code in
//! `report.rs`, implement [`Pass`] in a new module here, append it to
//! [`registry`], plant its violation class in
//! `tests/fixtures/seeded/`, and add the injection test proving the
//! pass fires there and stays quiet on the clean fixture tree.

pub mod error_path;
pub mod lock_order;
pub mod mutation;
pub mod panic_sites;
pub mod relaxed;
pub mod wire_arith;

use crate::config::Config;
use crate::report::{Finding, PassCode};
use crate::source::{lex, Tok};

/// One workspace source file: relative path + non-test token stream.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    pub toks: Vec<Tok>,
}

impl SourceFile {
    pub fn from_source(path: impl Into<String>, src: &str) -> SourceFile {
        SourceFile {
            path: path.into(),
            toks: lex(src),
        }
    }

    /// The file stem (`engine` for `crates/core/src/engine.rs`) — used
    /// by L003 to qualify lock identities.
    pub fn stem(&self) -> &str {
        let base = self.path.rsplit('/').next().unwrap_or(&self.path);
        base.strip_suffix(".rs").unwrap_or(base)
    }
}

pub trait Pass {
    fn code(&self) -> PassCode;
    /// Analyzes `files` (already restricted to this pass's scope).
    fn run(&self, files: &[&SourceFile], cfg: &Config) -> Vec<Finding>;
}

/// Every shipped pass, in code order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(mutation::MutationOutsideWriter),
        Box::new(relaxed::RelaxedSyncDecision),
        Box::new(lock_order::LockOrderInversion),
        Box::new(error_path::ErrorPathMustDeny),
        Box::new(wire_arith::UncheckedWireArithmetic),
        Box::new(panic_sites::PanicSite),
    ]
}
