//! L001 MutationOutsideWriter.
//!
//! DESIGN.md §4j's invalidation contract: the four epoch-swept
//! structures (validity cache, plan cache, compiled capabilities, flow
//! cache) and the policy epoch itself are mutated only inside
//! `Engine::apply_change`, under the writer half of the
//! `SharedEngine` RwLock. A sweep call anywhere else can race an
//! in-flight admission and serve a verdict from the policy that was
//! just revoked. PR 9 checked this for the epoch counter alone; this
//! pass covers every swept structure.
//!
//! Approximation: receivers are matched by field name (`cache`,
//! `plan_cache`, `compiled`, `flow`), not type — a local variable
//! shadowing one of those names over a non-swept value is a false
//! positive to be allowlisted, and a swept structure bound to a
//! differently-named local is a miss. Both have been absent from the
//! real tree so far; the names are load-bearing vocabulary.

use super::{Pass, SourceFile};
use crate::config::Config;
use crate::report::{Finding, PassCode};
use crate::source::{receiver_before, FnWalker};

/// Field names of the swept structures on `Engine`.
const SWEPT: &[&str] = &["cache", "plan_cache", "compiled", "flow"];

/// Methods that sweep/invalidate. Plain reads and verdict inserts are
/// the admission path's business, and `invalidate_deps` is a targeted
/// eviction (not the full sweep), so those stay unrestricted — same
/// line the PR-9 scanner drew.
const SWEEP_METHODS: &[&str] = &["clear", "invalidate", "apply_policy_change"];

/// The one function allowed to mutate swept state.
const WRITER: &str = "apply_change";

pub struct MutationOutsideWriter;

impl Pass for MutationOutsideWriter {
    fn code(&self) -> PassCode {
        PassCode::MutationOutsideWriter
    }

    fn run(&self, files: &[&SourceFile], _cfg: &Config) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            let toks = &file.toks;
            let mut walker = FnWalker::new();
            for i in 0..toks.len() {
                walker.step(toks, i);
                // Inside the writer (or a helper nested in it, by
                // outermost-fn attribution) everything is permitted.
                let in_writer = walker.outermost() == Some(WRITER);

                // Epoch mutation: `self.policy_epoch = / += / -= ...`.
                // The `self` receiver requirement exempts certificate
                // stamping (`cert.policy_epoch = ...`), which copies the
                // epoch rather than advancing it.
                if toks[i].is("policy_epoch")
                    && i >= 2
                    && toks[i - 1].is(".")
                    && toks[i - 2].is("self")
                    && toks
                        .get(i + 1)
                        .is_some_and(|t| t.is("=") || t.is("+=") || t.is("-="))
                    && !in_writer
                {
                    out.push(Finding::new(
                        PassCode::MutationOutsideWriter,
                        file.path.clone(),
                        toks[i].line,
                        format!(
                            "policy epoch mutated in `{}` — only `Engine::{WRITER}` may \
                             advance the epoch",
                            walker.outermost().unwrap_or("<top level>"),
                        ),
                    ));
                }

                // Sweep-method call on a swept structure.
                if toks[i].is(".")
                    && toks
                        .get(i + 1)
                        .is_some_and(|t| SWEEP_METHODS.contains(&t.text.as_str()))
                    && toks.get(i + 2).is_some_and(|t| t.is("("))
                    && !in_writer
                {
                    if let Some(recv) = receiver_before(toks, i) {
                        if SWEPT.contains(&recv) {
                            let method = &toks[i + 1].text;
                            out.push(Finding::new(
                                PassCode::MutationOutsideWriter,
                                file.path.clone(),
                                toks[i + 1].line,
                                format!(
                                    "`{recv}.{method}()` in `{}` mutates swept state outside \
                                     the writer critical section — move it into \
                                     `Engine::{WRITER}`",
                                    walker.outermost().unwrap_or("<top level>"),
                                ),
                            ));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        MutationOutsideWriter.run(&[&f], &Config::default())
    }

    #[test]
    fn writer_fn_is_exempt_others_are_not() {
        let src = r#"
impl Engine {
    pub fn apply_change(&mut self, delta: PolicyDelta) {
        self.policy_epoch += 1;
        self.cache.clear();
        self.compiled.apply_policy_change(&delta);
        self.flow.clear();
    }
    pub fn sneaky(&mut self) {
        self.cache.clear();
    }
    pub fn evict(&mut self, name: &str) {
        // Targeted eviction stays legal outside the writer.
        self.plan_cache.invalidate_deps(name);
    }
}
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("sneaky"));
        assert_eq!(found[0].line, 10);
    }

    #[test]
    fn epoch_mutation_outside_writer_fires_cert_stamping_does_not() {
        let src = r#"
fn admit(&mut self, cert: &mut Certificate) {
    cert.policy_epoch = self.policy_epoch;
}
fn rogue(&mut self) {
    self.policy_epoch += 1;
}
"#;
        let found = run_on(src);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("rogue"));
    }

    #[test]
    fn helpers_nested_inside_the_writer_are_attributed_to_it() {
        let src = r#"
fn apply_change(&mut self) {
    let sweep = || {
        self.flow.clear();
    };
    sweep();
}
"#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn reads_and_inserts_stay_unrestricted() {
        let src = r#"
fn admit(&self) {
    if let Some(v) = self.cache.get(&key) { return v; }
    self.cache.insert(key, verdict);
    let plan = self.plan_cache.lookup(name);
}
"#;
        assert!(run_on(src).is_empty());
    }
}
