//! L006 PanicSite.
//!
//! The PR-4/5 panic-freedom scan as a pass: `.unwrap()` / `.expect()`
//! calls and `panic!` / `unreachable!` / `todo!` invocations in code
//! whose no-panic discipline is an invariant — the WAL, the durability
//! layer, the DML commit path, the prover, the Non-Truman validator,
//! the certificate checker, the server loop (scope set in `lint.toml`).
//! Lookalikes (`unwrap_or_default`, `expect_err`, `my_panic!`) and
//! `assert!`/`debug_assert!` (whose failure is a caught programming
//! error, not a data-dependent path) stay allowed, exactly as before.

use super::{Pass, SourceFile};
use crate::config::Config;
use crate::report::{Finding, PassCode};

pub struct PanicSite;

impl Pass for PanicSite {
    fn code(&self) -> PassCode {
        PassCode::PanicSite
    }

    fn run(&self, files: &[&SourceFile], _cfg: &Config) -> Vec<Finding> {
        let mut out = Vec::new();
        for file in files {
            let toks = &file.toks;
            for i in 0..toks.len() {
                let t = &toks[i];
                // `.unwrap(` / `.expect(` — the tokenizer already keeps
                // `unwrap_or_default` etc. as single identifiers, so
                // exact match is exact.
                if t.is(".")
                    && toks
                        .get(i + 1)
                        .is_some_and(|m| m.is("unwrap") || m.is("expect"))
                    && toks.get(i + 2).is_some_and(|p| p.is("("))
                {
                    let method = &toks[i + 1].text;
                    out.push(Finding::new(
                        PassCode::PanicSite,
                        file.path.clone(),
                        toks[i + 1].line,
                        format!(".{method}() is forbidden here — bubble a Result instead"),
                    ));
                    continue;
                }
                // `panic!(` / `unreachable!(` / `todo!(` — whole
                // identifier, not a method position, any delimiter.
                if t.is_ident
                    && matches!(t.text.as_str(), "panic" | "unreachable" | "todo")
                    && (i == 0 || !toks[i - 1].is("."))
                    && toks.get(i + 1).is_some_and(|b| b.is("!"))
                    && toks
                        .get(i + 2)
                        .is_some_and(|d| d.is("(") || d.is("[") || d.is("{"))
                {
                    out.push(Finding::new(
                        PassCode::PanicSite,
                        file.path.clone(),
                        t.line,
                        format!("{}!(..) is forbidden here — bubble a Result instead", t.text),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<usize> {
        let f = SourceFile::from_source("crates/x/src/a.rs", src);
        PanicSite
            .run(&[&f], &Config::default())
            .into_iter()
            .map(|v| v.line)
            .collect()
    }

    #[test]
    fn plain_calls_are_found_with_correct_lines() {
        let src = "fn f() {\n    x.unwrap();\n    y.expect(\"msg\");\n}\n";
        assert_eq!(lines(src), vec![2, 3]);
    }

    #[test]
    fn lookalike_methods_do_not_match() {
        let src =
            "fn f() { a.unwrap_or_default(); b.unwrap_or(0); c.expect_err(\"e\"); d.expect_end(); }\n";
        assert!(lines(src).is_empty());
    }

    #[test]
    fn spaced_calls_still_match() {
        let src = "fn f() { a . unwrap (); b.\n    expect(\"m\"); }\n";
        assert_eq!(lines(src).len(), 2);
    }

    #[test]
    fn panic_macros_are_found() {
        let src = "fn f() {\n    panic!(\"boom\");\n    unreachable!();\n    todo!()\n}\n";
        // `todo!()` with no delimiter after `!`? It has `(` — all three.
        assert_eq!(lines(src), vec![2, 3, 4]);
    }

    #[test]
    fn panic_macro_lookalikes_do_not_match() {
        let src = "fn f() {\n\
            debug_assert!(x);\n\
            assert!(y);\n\
            my_panic!(1);\n\
            let panic = 3; panic + 1;\n\
            s.panic!();\n\
            // panic!(\"in a comment\")\n\
            let t = \"panic!(in a string)\";\n\
        }\n";
        assert!(lines(src).is_empty(), "got {:?}", lines(src));
    }

    #[test]
    fn cfg_test_exempts_everything() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { panic!(\"fine\"); x.unwrap(); }\n}\nfn prod() { unreachable!(); }\n";
        assert_eq!(lines(src).len(), 1);
    }

    #[test]
    fn panic_followed_by_not_equals_is_not_a_macro() {
        // `panic != x` merges `!=`; must not read as `panic!` + `= x`.
        let src = "fn f(panic: u8, x: u8) -> bool { panic != x }\n";
        assert!(lines(src).is_empty());
    }
}
