//! The shared source model every pass analyzes.
//!
//! The pipeline is deliberately *not* a Rust parser: the passes check
//! structural disciplines (who mutates what, in which function, holding
//! which lock), and a token stream with line numbers carries enough
//! structure for that while staying dependency-free and fast enough to
//! scan the whole workspace in milliseconds. The stages:
//!
//! 1. [`strip_noncode`] blanks comments and literal *contents* while
//!    preserving line structure (ported from the PR-4 scanner, whose
//!    edge cases — nested block comments, raw strings with hashes, byte
//!    strings, char-vs-lifetime ticks — are pinned by unit tests).
//! 2. [`tokenize`] produces identifier/punctuation tokens, merging the
//!    two-character operators the passes care about (`::`, `=>`, `==`,
//!    compound assignment, shifts).
//! 3. [`strip_test_tokens`] removes every `#[cfg(test)]`-gated item, so
//!    test code is exempt from every pass by construction.
//! 4. [`FnWalker`] tracks the enclosing named-function stack as a pass
//!    scans, generalizing the PR-9 epoch-discipline scanner.
//!
//! Known (documented) approximations: macro bodies are scanned as
//! ordinary tokens, closures do not open a named scope, and types are
//! unknown — each pass states what it over- or under-approximates.

/// One token of non-test code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub text: String,
    pub line: usize,
    pub is_ident: bool,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// The source text reduced to code: comments and literal *contents*
/// blanked out (replaced by spaces), line structure preserved so
/// reported line numbers match the original file.
pub fn strip_noncode(src: &str) -> Vec<(char, usize)> {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<(char, usize)> = Vec::with_capacity(chars.len());
    let mut line = 1usize;
    let mut i = 0usize;

    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(('\n', line));
            line += 1;
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '\n' {
                    out.push(('\n', line));
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"...", r#"..."#, br##"..."##. Only when
        // the r/b starts an identifier-like token of its own.
        let prev_ident = i > 0 && is_ident(chars[i - 1]);
        if !prev_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if c == 'b' && chars.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if c == 'r' || j > i {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while chars.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if chars.get(k) == Some(&'"') {
                    // Scan for the closing quote + same number of '#'.
                    out.push((' ', line));
                    i = k + 1;
                    'raw: while i < chars.len() {
                        if chars[i] == '\n' {
                            out.push(('\n', line));
                            line += 1;
                            i += 1;
                            continue;
                        }
                        if chars[i] == '"' {
                            let mut h = 0usize;
                            while chars.get(i + 1 + h) == Some(&'#') {
                                h += 1;
                            }
                            if h >= hashes {
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Plain (or byte) string literal with escapes.
        if c == '"' || (c == 'b' && !prev_ident && chars.get(i + 1) == Some(&'"')) {
            out.push((' ', line));
            i += if c == 'b' { 2 } else { 1 };
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '\n' => {
                        out.push(('\n', line));
                        line += 1;
                        i += 1;
                    }
                    '"' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals; 'a in a
        // generic position has no closing quote within two chars.
        if c == '\'' {
            if chars.get(i + 1) == Some(&'\\') {
                // Escaped char literal: skip to closing quote.
                out.push((' ', line));
                i += 2;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                out.push((' ', line));
                i += 3;
                continue;
            }
            // Lifetime: keep the tick so tokens don't fuse.
            out.push(('\'', line));
            i += 1;
            continue;
        }
        out.push((c, line));
        i += 1;
    }
    out
}

/// Two-character operators merged into one punctuation token. Order
/// matters only in that each pair is tried before its first character
/// alone.
const TWO_CHAR: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=", "%=", "&&", "||", "..",
    "<<", ">>", "&=", "|=", "^=",
];

/// Tokenizes stripped code into identifiers and punctuation.
pub fn tokenize(code: &[(char, usize)]) -> Vec<Tok> {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut out = Vec::with_capacity(code.len() / 4);
    let mut i = 0usize;
    while i < code.len() {
        let (c, line) = code[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if is_ident(c) {
            let start = i;
            while i < code.len() && is_ident(code[i].0) {
                i += 1;
            }
            out.push(Tok {
                text: code[start..i].iter().map(|&(ch, _)| ch).collect(),
                line,
                is_ident: true,
            });
            continue;
        }
        let pair: String = code[i..]
            .iter()
            .take(2)
            .map(|&(ch, _)| ch)
            .collect();
        if pair.len() == 2 && TWO_CHAR.contains(&pair.as_str()) {
            out.push(Tok {
                text: pair,
                line,
                is_ident: false,
            });
            i += 2;
            continue;
        }
        out.push(Tok {
            text: c.to_string(),
            line,
            is_ident: false,
        });
        i += 1;
    }
    out
}

/// Whether the token at `i` begins a `#[cfg(test)]` attribute; returns
/// the index just past the closing `]`.
fn cfg_test_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks[i].is("#") || !toks.get(i + 1)?.is("[") {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 2;
    let mut body = String::new();
    while j < toks.len() && depth > 0 {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => depth -= 1,
            t if depth >= 1 => body.push_str(t),
            _ => {}
        }
        j += 1;
    }
    if body == "cfg(test)" {
        Some(j)
    } else {
        None
    }
}

/// Skips the item a `#[cfg(test)]` attribute gates: stacked attributes,
/// then everything through the matching close brace of the item's body,
/// or through the first `;` for body-less items.
fn skip_gated_item(toks: &[Tok], mut i: usize) -> usize {
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" => {
                let mut depth = 1usize;
                i += 1;
                while i < toks.len() && depth > 0 {
                    match toks[i].text.as_str() {
                        "{" => depth += 1,
                        "}" => depth -= 1,
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            ";" => return i + 1,
            "#" => {
                // A stacked attribute — step over its bracket group.
                i += 1;
                if i < toks.len() && toks[i].is("[") {
                    let mut depth = 1usize;
                    i += 1;
                    while i < toks.len() && depth > 0 {
                        match toks[i].text.as_str() {
                            "[" => depth += 1,
                            "]" => depth -= 1,
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    i
}

/// Removes every `#[cfg(test)]`-gated item from the token stream.
pub fn strip_test_tokens(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is("#") {
            if let Some(after) = cfg_test_attr(&toks, i) {
                i = skip_gated_item(&toks, after);
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Full front end: source text → non-test token stream.
pub fn lex(src: &str) -> Vec<Tok> {
    strip_test_tokens(tokenize(&strip_noncode(src)))
}

/// Tracks the enclosing named-function stack while a pass scans tokens
/// left to right. Call [`FnWalker::step`] on every index *before*
/// inspecting the token there. Closures and unnamed blocks change brace
/// depth but not the stack; the stack therefore answers "which `fn`'s
/// body am I in", with the outermost entry being the item-level
/// function (what the epoch-discipline check keyed on).
#[derive(Debug, Default)]
pub struct FnWalker {
    stack: Vec<(String, usize)>,
    pending: Option<String>,
    depth: usize,
}

impl FnWalker {
    pub fn new() -> Self {
        Self::default()
    }

    /// The innermost enclosing named function.
    pub fn current(&self) -> Option<&str> {
        self.stack.last().map(|(n, _)| n.as_str())
    }

    /// The outermost (item-level) enclosing named function.
    pub fn outermost(&self) -> Option<&str> {
        self.stack.first().map(|(n, _)| n.as_str())
    }

    /// Advances the tracker over `toks[i]`.
    pub fn step(&mut self, toks: &[Tok], i: usize) {
        match toks[i].text.as_str() {
            "{" => {
                self.depth += 1;
                if let Some(name) = self.pending.take() {
                    self.stack.push((name, self.depth));
                }
            }
            "}" => {
                if self.stack.last().is_some_and(|(_, d)| *d == self.depth) {
                    self.stack.pop();
                }
                self.depth = self.depth.saturating_sub(1);
            }
            ";" => {
                // Body-less declaration cancels a pending fn.
                self.pending = None;
            }
            "fn" => {
                if let Some(next) = toks.get(i + 1) {
                    if next.is_ident {
                        self.pending = Some(next.text.clone());
                    }
                }
            }
            _ => {}
        }
    }
}

/// The identifier receiving a method call: for `a.b(..).c()` at the `.`
/// before `c`, walks back over one balanced `(..)` / `[..]` group (a
/// call or index) and returns the identifier in front — `b` here,
/// `inner` for `self.inner.lock()`, `shard` for `self.shard(k).lock()`.
pub fn receiver_before(toks: &[Tok], dot: usize) -> Option<&str> {
    let mut i = dot.checked_sub(1)?;
    for close in [")", "]"] {
        let open = if close == ")" { "(" } else { "[" };
        if toks[i].is(close) {
            let mut depth = 1usize;
            while depth > 0 {
                i = i.checked_sub(1)?;
                if toks[i].is(close) {
                    depth += 1;
                } else if toks[i].is(open) {
                    depth -= 1;
                }
            }
            i = i.checked_sub(1)?;
            break;
        }
    }
    if toks[i].is_ident {
        Some(&toks[i].text)
    } else {
        None
    }
}

/// Index of the matching close delimiter for the open delimiter at `i`.
pub fn matching_close(toks: &[Tok], i: usize) -> Option<usize> {
    let (open, close) = match toks[i].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 1usize;
    let mut j = i + 1;
    while j < toks.len() {
        if toks[j].is(open) {
            depth += 1;
        } else if toks[j].is(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn comments_strings_and_char_literals_are_blanked() {
        let src = r#"
fn f() {
    // x.unwrap() in a line comment
    /* block /* nested */ comment */
    let s = "call .unwrap() maybe";
    let raw = r"\.unwrap()";
    let c = '"';
    let lt: &'static str = s;
}
"#;
        let ts = texts(src);
        assert!(!ts.iter().any(|t| t == "unwrap"), "{ts:?}");
        assert!(ts.iter().any(|t| t == "static"), "{ts:?}");
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_strings_are_skipped() {
        let src = "fn f() { let a = r#\"x.unwrap()\"#; let b = b\"y.expect(\"; }\n";
        assert!(!texts(src).iter().any(|t| t == "unwrap" || t == "expect"));
    }

    #[test]
    fn two_char_operators_merge() {
        let ts = texts("fn f() { a += 1; b == c; d => e; x::y; }");
        for op in ["+=", "==", "=>", "::"] {
            assert!(ts.iter().any(|t| t == op), "{op} missing in {ts:?}");
        }
    }

    #[test]
    fn line_numbers_survive_stripping() {
        let toks = lex("fn f() {\n    x.unwrap();\n}\n");
        let unwrap = toks.iter().find(|t| t.is("unwrap")).expect("token");
        assert_eq!(unwrap.line, 2);
    }

    #[test]
    fn cfg_test_items_are_removed() {
        let src = r#"
fn prod() { x.ok(); }

#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}

#[cfg(test)]
#[derive(Debug)]
struct T { x: u8 }

#[cfg(test)]
use helpers::unwrap_all;

fn prod2() { z.frob(); }
"#;
        let ts = texts(src);
        assert!(!ts.iter().any(|t| t == "unwrap" || t == "unwrap_all"), "{ts:?}");
        assert!(ts.iter().any(|t| t == "prod2"));
        // cfg(not(test)) and cfg_attr are NOT exempt.
        let ts2 = texts("#[cfg(not(test))]\nfn f() { x.unwrap(); }\n");
        assert!(ts2.iter().any(|t| t == "unwrap"));
    }

    #[test]
    fn fn_walker_tracks_nesting() {
        let toks = lex("fn outer() { fn inner() { body(); } tail(); }");
        let mut w = FnWalker::new();
        let mut at_body = (None::<String>, None::<String>);
        let mut at_tail = (None::<String>, None::<String>);
        for i in 0..toks.len() {
            w.step(&toks, i);
            if toks[i].is("body") {
                at_body = (w.outermost().map(String::from), w.current().map(String::from));
            }
            if toks[i].is("tail") {
                at_tail = (w.outermost().map(String::from), w.current().map(String::from));
            }
        }
        assert_eq!(at_body, (Some("outer".into()), Some("inner".into())));
        assert_eq!(at_tail, (Some("outer".into()), Some("outer".into())));
    }

    #[test]
    fn receiver_walks_over_call_groups() {
        let toks = lex("self.shard(user, fp).lock()");
        let dot = toks
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.is("."))
            .map(|(i, _)| i)
            .expect("dot");
        assert_eq!(receiver_before(&toks, dot), Some("shard"));
        let toks2 = lex("self.inner.read()");
        let dot2 = toks2
            .iter()
            .enumerate()
            .rev()
            .find(|(_, t)| t.is("."))
            .map(|(i, _)| i)
            .expect("dot");
        assert_eq!(receiver_before(&toks2, dot2), Some("inner"));
    }
}
