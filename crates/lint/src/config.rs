//! `lint.toml`: scope, per-pass configuration, allowlists, and the
//! `Ordering::Relaxed` audit ledger.
//!
//! The parser is a hand-rolled TOML subset (the container has no toml
//! crate): `[section]` / `[[array-of-tables]]` headers and `key = value`
//! pairs where a value is a quoted string, an integer, a bool, or an
//! array of quoted strings. That covers the whole configuration
//! language on purpose — a config format nobody can parse by eye is how
//! allowlists rot.
//!
//! Policy, enforced here: **scoping is opt-out**. Discovery walks every
//! `.rs` file under the configured roots; exclusions are explicit, and
//! a per-pass `include` prefix overrides an `exclude` prefix, so
//! "exclude `crates/bench` but keep `crates/bench/src/lib.rs`" is
//! expressible. A new crate is linted the moment it exists. Every
//! `[[allow]]` and `[[relaxed]]` entry must carry a non-empty `reason`.

use std::collections::BTreeMap;

/// Workspace discovery scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// Workspace-relative directories to walk.
    pub roots: Vec<String>,
    /// Directory *names* skipped anywhere in the walk.
    pub exclude_dirs: Vec<String>,
    /// Workspace-relative file paths (or path prefixes) skipped.
    pub exclude_files: Vec<String>,
}

impl Default for Scope {
    fn default() -> Self {
        Scope {
            roots: vec!["crates".into(), "src".into()],
            exclude_dirs: vec![
                "target".into(),
                "fixtures".into(),
                "vendor".into(),
                "tests".into(),
                "benches".into(),
            ],
            exclude_files: Vec::new(),
        }
    }
}

/// Per-pass switches. A pass absent from `lint.toml` runs everywhere —
/// opting out is the thing that must be written down.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PassConfig {
    pub disabled: bool,
    /// Path prefixes this pass is restricted to (empty = everywhere).
    pub include: Vec<String>,
    /// Path prefixes this pass skips. `include` wins over `exclude`.
    pub exclude: Vec<String>,
}

/// One allowlisted finding: pass + file + message substring + why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub pass: String,
    pub file: String,
    /// Substring of the finding message; empty matches any finding of
    /// that pass in that file.
    pub contains: String,
    pub reason: String,
}

/// One audited file in the `Ordering::Relaxed` ledger. L002 enforces
/// the ledger both ways: an unaudited file with `Relaxed` sites is a
/// finding, and a stale `sites` count is a finding (so the ledger
/// cannot drift from the code it describes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelaxedAudit {
    pub file: String,
    pub sites: usize,
    pub reason: String,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Config {
    pub scope: Scope,
    pub passes: BTreeMap<String, PassConfig>,
    pub allows: Vec<Allow>,
    pub relaxed: Vec<RelaxedAudit>,
}

impl Config {
    /// Parses `lint.toml` text. Errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Config, String> {
        let doc = parse_toml_subset(text)?;
        let mut cfg = Config::default();
        for table in doc {
            match table.header.as_str() {
                "scope" => {
                    for (k, v, ln) in table.entries {
                        match k.as_str() {
                            "roots" => cfg.scope.roots = v.into_list(ln)?,
                            "exclude_dirs" => cfg.scope.exclude_dirs = v.into_list(ln)?,
                            "exclude_files" => cfg.scope.exclude_files = v.into_list(ln)?,
                            _ => return Err(format!("line {ln}: unknown scope key `{k}`")),
                        }
                    }
                }
                h if h.starts_with("pass.") => {
                    let code = h["pass.".len()..].to_string();
                    let pc = cfg.passes.entry(code).or_default();
                    for (k, v, ln) in table.entries {
                        match k.as_str() {
                            "disabled" => pc.disabled = v.into_bool(ln)?,
                            "include" => pc.include = v.into_list(ln)?,
                            "exclude" => pc.exclude = v.into_list(ln)?,
                            _ => return Err(format!("line {ln}: unknown pass key `{k}`")),
                        }
                    }
                }
                "allow" => {
                    let mut a = Allow {
                        pass: String::new(),
                        file: String::new(),
                        contains: String::new(),
                        reason: String::new(),
                    };
                    let mut line = 0;
                    for (k, v, ln) in table.entries {
                        line = ln;
                        match k.as_str() {
                            "pass" => a.pass = v.into_str(ln)?,
                            "file" => a.file = v.into_str(ln)?,
                            "contains" => a.contains = v.into_str(ln)?,
                            "reason" => a.reason = v.into_str(ln)?,
                            _ => return Err(format!("line {ln}: unknown allow key `{k}`")),
                        }
                    }
                    if a.pass.is_empty() || a.file.is_empty() {
                        return Err(format!("line {line}: [[allow]] needs pass and file"));
                    }
                    if a.reason.trim().is_empty() {
                        return Err(format!(
                            "line {line}: [[allow]] for {} in {} has no reason — every \
                             allowlist entry must be justified",
                            a.pass, a.file
                        ));
                    }
                    cfg.allows.push(a);
                }
                "relaxed" => {
                    let mut file = String::new();
                    let mut sites = 0usize;
                    let mut reason = String::new();
                    let mut line = 0;
                    for (k, v, ln) in table.entries {
                        line = ln;
                        match k.as_str() {
                            "file" => file = v.into_str(ln)?,
                            "sites" => sites = v.into_int(ln)? as usize,
                            "reason" => reason = v.into_str(ln)?,
                            _ => return Err(format!("line {ln}: unknown relaxed key `{k}`")),
                        }
                    }
                    if file.is_empty() || reason.trim().is_empty() {
                        return Err(format!(
                            "line {line}: [[relaxed]] needs file and a non-empty reason"
                        ));
                    }
                    cfg.relaxed.push(RelaxedAudit { file, sites, reason });
                }
                h => return Err(format!("unknown section `[{h}]`")),
            }
        }
        Ok(cfg)
    }

    /// The effective config for a pass (default when unconfigured).
    pub fn pass(&self, code: &str) -> PassConfig {
        self.passes.get(code).cloned().unwrap_or_default()
    }

    /// Whether `file` (workspace-relative, `/`-separated) is in scope
    /// for `code`. `include` overrides `exclude`.
    pub fn pass_in_scope(&self, code: &str, file: &str) -> bool {
        let pc = self.pass(code);
        if pc.include.iter().any(|p| file.starts_with(p.as_str())) {
            return true;
        }
        if !pc.include.is_empty() {
            return false;
        }
        !pc.exclude.iter().any(|p| file.starts_with(p.as_str()))
    }

    /// Index of the first `[[allow]]` entry matching a finding, if any.
    pub fn allow_index(&self, pass: &str, file: &str, message: &str) -> Option<usize> {
        self.allows.iter().position(|a| {
            a.pass == pass
                && a.file == file
                && (a.contains.is_empty() || message.contains(&a.contains))
        })
    }
}

enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

impl Value {
    fn into_str(self, ln: usize) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(format!("line {ln}: expected a string")),
        }
    }
    fn into_int(self, ln: usize) -> Result<i64, String> {
        match self {
            Value::Int(i) => Ok(i),
            _ => Err(format!("line {ln}: expected an integer")),
        }
    }
    fn into_bool(self, ln: usize) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(format!("line {ln}: expected true/false")),
        }
    }
    fn into_list(self, ln: usize) -> Result<Vec<String>, String> {
        match self {
            Value::List(v) => Ok(v),
            _ => Err(format!("line {ln}: expected an array of strings")),
        }
    }
}

struct Table {
    header: String,
    entries: Vec<(String, Value, usize)>,
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn parse_string(s: &str, ln: usize) -> Result<String, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("line {ln}: expected a quoted string, got `{s}`"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                other => return Err(format!("line {ln}: bad escape \\{other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_value(s: &str, ln: usize) -> Result<Value, String> {
    let s = s.trim();
    if s.starts_with('"') {
        return parse_string(s, ln).map(Value::Str);
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = s.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
        let mut items = Vec::new();
        // Split on commas outside quotes.
        let mut cur = String::new();
        let mut in_str = false;
        let mut escaped = false;
        for c in inner.chars() {
            if escaped {
                cur.push(c);
                escaped = false;
                continue;
            }
            match c {
                '\\' if in_str => {
                    cur.push(c);
                    escaped = true;
                }
                '"' => {
                    cur.push(c);
                    in_str = !in_str;
                }
                ',' if !in_str => {
                    items.push(std::mem::take(&mut cur));
                }
                _ => cur.push(c),
            }
        }
        if !cur.trim().is_empty() {
            items.push(cur);
        }
        let mut out = Vec::new();
        for item in items {
            out.push(parse_string(item.trim(), ln)?);
        }
        return Ok(Value::List(out));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("line {ln}: cannot parse value `{s}`"))
}

/// Net `[`/`]` balance outside quoted strings — used to join
/// multi-line arrays into one logical line.
fn bracket_balance(line: &str) -> i64 {
    let mut balance = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    for c in line.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '[' if !in_str => balance += 1,
            ']' if !in_str => balance -= 1,
            _ => {}
        }
    }
    balance
}

fn parse_toml_subset(text: &str) -> Result<Vec<Table>, String> {
    let mut tables: Vec<Table> = Vec::new();
    // Join lines while an array value is still open.
    let mut logical: Vec<(String, usize)> = Vec::new();
    let mut pending: Option<(String, usize, i64)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let ln = idx + 1;
        let stripped = strip_comment(raw).trim().to_string();
        match pending.take() {
            Some((mut buf, start, balance)) => {
                let next = balance + bracket_balance(&stripped);
                buf.push(' ');
                buf.push_str(&stripped);
                if next > 0 {
                    pending = Some((buf, start, next));
                } else {
                    logical.push((buf, start));
                }
            }
            None => {
                if stripped.is_empty() {
                    continue;
                }
                let balance = bracket_balance(&stripped);
                if stripped.contains('=') && balance > 0 {
                    pending = Some((stripped, ln, balance));
                } else {
                    logical.push((stripped, ln));
                }
            }
        }
    }
    if let Some((buf, start, _)) = pending {
        return Err(format!("line {start}: unterminated array `{buf}`"));
    }
    for (line, ln) in logical {
        let line = line.as_str();
        if let Some(h) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            tables.push(Table {
                header: h.trim().to_string(),
                entries: Vec::new(),
            });
            continue;
        }
        if let Some(h) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            tables.push(Table {
                header: h.trim().to_string(),
                entries: Vec::new(),
            });
            continue;
        }
        let eq = line
            .find('=')
            .ok_or_else(|| format!("line {ln}: expected `key = value`, got `{line}`"))?;
        let key = line[..eq].trim().to_string();
        let value = parse_value(&line[eq + 1..], ln)?;
        let table = tables
            .last_mut()
            .ok_or_else(|| format!("line {ln}: key `{key}` before any [section]"))?;
        table.entries.push((key, value, ln));
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# workspace lint configuration
[scope]
roots = ["crates", "src"]
exclude_dirs = ["target", "fixtures"]
exclude_files = ["crates/bench/src/bin/old.rs"]

[pass.L003]
include = ["crates/core", "crates/server"]

[pass.L004]
exclude = ["crates/bench"]

[[allow]]
pass = "L006"
file = "crates/core/src/lib.rs"
contains = "expect("
reason = "poisoned-lock expect is the documented crash-over-corrupt policy"

[[relaxed]]
file = "crates/core/src/metrics.rs"
sites = 4
reason = "monotonic stats counters, read only for reporting"
"#;

    #[test]
    fn parses_the_full_shape() {
        let cfg = Config::parse(SAMPLE).expect("parses");
        assert_eq!(cfg.scope.roots, vec!["crates", "src"]);
        assert_eq!(cfg.scope.exclude_files.len(), 1);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.relaxed[0].sites, 4);
        assert!(cfg.pass("L001") == PassConfig::default(), "absent pass = default");
    }

    #[test]
    fn include_overrides_exclude_and_restricts() {
        let cfg = Config::parse(SAMPLE).expect("parses");
        // L003 has an include list: only those prefixes are in scope.
        assert!(cfg.pass_in_scope("L003", "crates/core/src/engine.rs"));
        assert!(!cfg.pass_in_scope("L003", "crates/wal/src/log.rs"));
        // L004 has only an exclude list.
        assert!(cfg.pass_in_scope("L004", "crates/core/src/engine.rs"));
        assert!(!cfg.pass_in_scope("L004", "crates/bench/src/bin/b.rs"));
        // Unconfigured pass: everything in scope.
        assert!(cfg.pass_in_scope("L001", "crates/anything/src/new.rs"));
    }

    #[test]
    fn allow_matching_is_pass_file_and_substring() {
        let cfg = Config::parse(SAMPLE).expect("parses");
        assert_eq!(
            cfg.allow_index("L006", "crates/core/src/lib.rs", "call to .expect("),
            Some(0)
        );
        assert_eq!(cfg.allow_index("L006", "crates/core/src/lib.rs", "panic!"), None);
        assert_eq!(cfg.allow_index("L001", "crates/core/src/lib.rs", "call to .expect("), None);
    }

    #[test]
    fn reasons_are_mandatory() {
        let no_reason = "[[allow]]\npass = \"L006\"\nfile = \"a.rs\"\nreason = \"\"\n";
        assert!(Config::parse(no_reason).unwrap_err().contains("justified"));
        let no_relaxed_reason = "[[relaxed]]\nfile = \"a.rs\"\nsites = 2\n";
        assert!(Config::parse(no_relaxed_reason).is_err());
    }

    #[test]
    fn comments_and_errors() {
        let cfg = Config::parse("[scope]\nroots = [\"a#b\"] # trailing\n").expect("parses");
        assert_eq!(cfg.scope.roots, vec!["a#b"]);
        assert!(Config::parse("[bogus]\n").is_err());
        assert!(Config::parse("key = 1\n").unwrap_err().contains("before any"));
        assert!(Config::parse("[scope]\nroots = 3\n").is_err());
    }
}
