//! The seeded-violation corpus: every pass must fire on a fixture that
//! contains its bug, and go quiet when that one pass is disabled — so
//! each pass is individually load-bearing, not shadowed by another.
//! The clean fixture and the real tree prove the other direction: the
//! passes do not cry wolf.
//!
//! Each test stages its fixture into a scratch workspace (an unlisted
//! crate under `crates/`), which doubles as the opt-out discovery
//! check: nothing registers the scratch crate anywhere, yet it is
//! scanned.

use fgac_lint::config::Config;
use fgac_lint::report::{PassCode, ALL_CODES};
use fgac_lint::{run, run_with_passes};
use std::path::{Path, PathBuf};

/// Stages one fixture as `crates/seeded/src/lib.rs` of a scratch tree.
fn scratch(tag: &str, source: &str) -> PathBuf {
    let base = std::env::temp_dir().join(format!(
        "fgac-lint-seeded-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let src_dir = base.join("crates/seeded/src");
    std::fs::create_dir_all(&src_dir).expect("mkdir scratch tree");
    std::fs::write(src_dir.join("lib.rs"), source).expect("write fixture");
    base
}

/// The fixture must trip `code`, and must stop tripping it when that
/// pass alone is removed from the run — with every *other* pass still
/// enabled, so a sibling pass cannot be masking a dead one.
fn assert_pass_is_load_bearing(code: PassCode, tag: &str, source: &str, min_findings: usize) {
    let root = scratch(tag, source);
    let cfg = Config::default();

    let full = run(&root, &cfg).expect("lint scratch tree");
    let hits = full.findings.iter().filter(|f| f.code == code).count();
    assert!(
        hits >= min_findings,
        "{code:?} found {hits} of the >= {min_findings} seeded violations: {:?}",
        full.findings
    );

    let without: Vec<PassCode> = ALL_CODES.iter().copied().filter(|c| *c != code).collect();
    let disabled = run_with_passes(&root, &cfg, &without).expect("lint with pass disabled");
    assert!(
        disabled.findings.iter().all(|f| f.code != code),
        "{code:?} findings survived disabling the pass: {:?}",
        disabled.findings
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn l001_mutation_outside_writer_is_load_bearing() {
    assert_pass_is_load_bearing(
        PassCode::MutationOutsideWriter,
        "l001",
        include_str!("fixtures/seeded/l001.rs"),
        2, // epoch bump + cache sweep, both outside apply_change
    );
}

#[test]
fn l002_relaxed_sync_decision_is_load_bearing() {
    let root = scratch("l002", include_str!("fixtures/seeded/l002.rs"));
    let cfg = Config::default();
    let full = run(&root, &cfg).expect("lint scratch tree");
    // The loop-gate load is a decision finding; the two Relaxed sites
    // also lack a [[relaxed]] ledger entry in the default config.
    assert!(
        full.findings
            .iter()
            .any(|f| f.code == PassCode::RelaxedSyncDecision
                && f.message.contains("decision position")),
        "seeded Relaxed loop gate not flagged: {:?}",
        full.findings
    );
    assert!(
        full.findings
            .iter()
            .any(|f| f.code == PassCode::RelaxedSyncDecision
                && f.message.contains("no [[relaxed]] audit entry")),
        "unaudited Relaxed sites not flagged: {:?}",
        full.findings
    );
    let _ = std::fs::remove_dir_all(&root);
    assert_pass_is_load_bearing(
        PassCode::RelaxedSyncDecision,
        "l002b",
        include_str!("fixtures/seeded/l002.rs"),
        1,
    );
}

#[test]
fn l003_lock_order_inversion_is_load_bearing() {
    let root = scratch("l003", include_str!("fixtures/seeded/l003.rs"));
    let cfg = Config::default();
    let full = run(&root, &cfg).expect("lint scratch tree");
    let l003: Vec<_> = full
        .findings
        .iter()
        .filter(|f| f.code == PassCode::LockOrderInversion)
        .collect();
    // One cycle (alpha/beta) and one read→write upgrade.
    assert!(
        l003.iter().any(|f| f.message.contains("alpha")),
        "seeded alpha/beta cycle not flagged: {:?}",
        full.findings
    );
    assert!(
        l003.iter().any(|f| f.message.contains("read")),
        "seeded read→write upgrade not flagged: {:?}",
        full.findings
    );
    let _ = std::fs::remove_dir_all(&root);
    assert_pass_is_load_bearing(
        PassCode::LockOrderInversion,
        "l003b",
        include_str!("fixtures/seeded/l003.rs"),
        2,
    );
}

#[test]
fn l004_error_path_must_deny_is_load_bearing() {
    assert_pass_is_load_bearing(
        PassCode::ErrorPathMustDeny,
        "l004",
        include_str!("fixtures/seeded/l004.rs"),
        2, // accepting Err arm + unwrap_or(true)
    );
}

#[test]
fn l005_unchecked_wire_arithmetic_is_load_bearing() {
    assert_pass_is_load_bearing(
        PassCode::UncheckedWireArithmetic,
        "l005",
        include_str!("fixtures/seeded/l005.rs"),
        2, // narrowing cast + unchecked addition
    );
}

#[test]
fn l006_panic_site_is_load_bearing() {
    assert_pass_is_load_bearing(
        PassCode::PanicSite,
        "l006",
        include_str!("fixtures/seeded/l006.rs"),
        2, // unwrap + panic!
    );
}

#[test]
fn clean_fixture_stays_clean_under_every_pass() {
    let root = scratch("clean", include_str!("fixtures/clean/ok.rs"));
    let report = run(&root, &Config::default()).expect("lint clean tree");
    assert!(
        report.is_clean(),
        "clean fixture produced findings: {:?}",
        report.findings
    );
    assert_eq!(report.files_scanned, 1, "the unlisted scratch crate is scanned");
    let _ = std::fs::remove_dir_all(&root);
}

/// The checked-in configuration must hold against the checked-in tree:
/// zero findings, zero unused allowlist entries. This is the same
/// invariant CI enforces via the `fgac-lint` binary; keeping it in
/// `cargo test` means a violating change cannot land green locally.
#[test]
fn real_tree_is_clean_under_checked_in_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let toml = std::fs::read_to_string(root.join("lint.toml")).expect("read lint.toml");
    let cfg = Config::parse(&toml).expect("parse lint.toml");
    let report = run(&root, &cfg).expect("lint the workspace");
    assert!(
        report.is_clean(),
        "the workspace has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale allowlist entries: {:?}",
        report.unused_allows
    );
}
