//! Clean fixture: every pass runs over this file and none may fire.
//! Checked arithmetic, Acquire-ordered decisions, consistent lock
//! order, fail-closed error paths, no panic sites.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

pub static STOP: AtomicBool = AtomicBool::new(false);

pub struct Shards {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn payload_end(pos: usize, header_len: usize, cap: usize) -> Option<usize> {
    pos.checked_add(header_len).filter(|&e| e <= cap)
}

pub fn drain(shards: &Shards) -> u64 {
    let mut total = 0;
    while !STOP.load(Ordering::Acquire) {
        let a = shards.alpha.lock();
        let b = shards.beta.lock();
        total += a.map(|g| *g).unwrap_or_default() + b.map(|g| *g).unwrap_or_default();
    }
    total
}

pub fn admit(q: &str) -> bool {
    match q.parse::<u64>() {
        Ok(n) => n > 0,
        Err(_) => false,
    }
}
