//! Seeded violation corpus for L005 UncheckedWireArithmetic.
//!
//! A frame encoder that truncates the length field with `as u32` and a
//! scanner that computes the payload end with unchecked addition — the
//! two shapes that turn a hostile length into a mis-bounded read.

pub fn encode_len(payload_len: usize) -> [u8; 4] {
    // SEEDED: narrowing cast on a length.
    (payload_len as u32).to_le_bytes()
}

pub fn payload_end(pos: usize, header_len: usize) -> usize {
    // SEEDED: unchecked offset addition.
    pos + header_len
}
