//! Seeded violation corpus for L001 MutationOutsideWriter.
//!
//! `grant_view_fast` advances the policy epoch and sweeps the validity
//! cache outside `Engine::apply_change` — exactly the shortcut that
//! lets a reader observe new grants with stale verdicts.

pub struct ValidityCache;

impl ValidityCache {
    pub fn clear(&mut self) {}
}

pub struct Engine {
    cache: ValidityCache,
    policy_epoch: u64,
}

impl Engine {
    /// The one legal writer: sweeps run inside the critical section.
    pub fn apply_change(&mut self) {
        self.policy_epoch += 1;
        self.cache.clear();
    }

    /// SEEDED: a "fast" grant that bumps the epoch and sweeps the cache
    /// directly. Both lines must be findings.
    pub fn grant_view_fast(&mut self) {
        self.policy_epoch += 1;
        self.cache.clear();
    }
}
