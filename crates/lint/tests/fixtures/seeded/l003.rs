//! Seeded violation corpus for L003 LockOrderInversion.
//!
//! `forward` takes alpha then beta; `backward` takes beta then alpha —
//! a two-lock cycle, the classic AB/BA deadlock. `upgrade` re-enters
//! the same `RwLock` for a write while its read guard is live.

use std::sync::{Mutex, RwLock};

pub struct Shards {
    pub alpha: Mutex<u64>,
    pub beta: Mutex<u64>,
}

pub fn forward(s: &Shards) -> u64 {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    *a.unwrap_or_default() + *b.unwrap_or_default()
}

/// SEEDED: acquisition order inverted relative to `forward`.
pub fn backward(s: &Shards) -> u64 {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    *a.unwrap_or_default() + *b.unwrap_or_default()
}

/// SEEDED: read guard still live when the write is requested —
/// self-deadlock on a non-reentrant lock.
pub fn upgrade(state: &RwLock<u64>) -> u64 {
    let r = state.read();
    let w = state.write();
    *r.unwrap_or_default() + *w.unwrap_or_default()
}
