//! Seeded violation corpus for L004 ErrorPathMustDeny.
//!
//! Two fail-open error paths: an `Err` arm that returns an accept, and
//! an `unwrap_or(true)` that turns every validator failure into a
//! grant. Fail-closed means both must deny.

pub fn validate(q: &str) -> Result<bool, String> {
    if q.is_empty() {
        return Err("empty query".into());
    }
    Ok(true)
}

pub fn admit(q: &str) -> bool {
    match validate(q) {
        Ok(v) => v,
        // SEEDED: error path accepts.
        Err(_) => true,
    }
}

pub fn admit_lenient(q: &str) -> bool {
    // SEEDED: validator failure defaults to accept.
    validate(q).unwrap_or(true)
}
