//! Seeded violation corpus for L002 RelaxedSyncDecision.
//!
//! The drain loop exits on a `Relaxed` load: no happens-before edge
//! with the thread that stored the flag, so the loop can keep serving
//! after shutdown began. The counter bump below is the legal pattern.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub static STOP: AtomicBool = AtomicBool::new(false);
pub static SERVED: AtomicU64 = AtomicU64::new(0);

pub fn drain() {
    // SEEDED: Relaxed load gating the loop exit — a decision position.
    while !STOP.load(Ordering::Relaxed) {
        SERVED.fetch_add(1, Ordering::Relaxed);
    }
}
