//! Seeded violation corpus for L006 PanicSite.
//!
//! An unwrap and a panic in straight-line decode code — in the
//! no-panic set, both become availability bugs a hostile frame can
//! trigger at will.

pub fn first_byte(bytes: &[u8]) -> u8 {
    // SEEDED: unwrap in no-panic code.
    let first = *bytes.first().unwrap();
    if first == 0 {
        // SEEDED: reachable panic in no-panic code.
        panic!("zero class byte");
    }
    first
}
