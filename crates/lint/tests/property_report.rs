//! Property tests for the lint report wire format, mirroring
//! `tests/property_certificate.rs`: arbitrary reports — escaper-hostile
//! strings included — must survive `Report::to_json` →
//! `report_from_json` losslessly, and pass codes from a future build
//! must degrade to `Unrecognized`/`Unknown` instead of rejecting the
//! document.

use fgac_lint::report::{
    report_from_json, Finding, PassCode, PassSummary, Report, Severity, ALL_CODES,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// Escaper-hostile suffixes: quotes, backslashes, control characters,
/// JSON structure characters, multi-byte unicode, keyword lookalikes.
const SPECIALS: &[&str] = &[
    "",
    "\"quoted\"",
    "back\\slash",
    "new\nline",
    "tab\there",
    "car\rriage",
    "\u{1}\u{7f}",
    "π—𝄞",
    "{}[]:,",
    "null",
    "-3.5e2",
];

fn wire_string() -> impl Strategy<Value = String> {
    (0..SPECIALS.len(), "[a-z]{0,6}").prop_map(|(i, base)| format!("{base}{}", SPECIALS[i]))
}

fn pass_code() -> impl Strategy<Value = PassCode> {
    (0..ALL_CODES.len()).prop_map(|i| ALL_CODES[i])
}

fn severity() -> impl Strategy<Value = Severity> {
    prop_oneof![Just(Severity::Error), Just(Severity::Warning)]
}

fn finding() -> impl Strategy<Value = Finding> {
    (pass_code(), severity(), wire_string(), 0usize..100_000, wire_string()).prop_map(
        |(code, severity, file, line, message)| Finding {
            code,
            severity,
            file,
            line,
            message,
        },
    )
}

fn pass_summary() -> impl Strategy<Value = PassSummary> {
    (wire_string(), wire_string(), 0usize..1000, 0u64..100_000).prop_map(
        |(code, name, findings, ms)| PassSummary {
            code,
            name,
            findings,
            ms: u128::from(ms),
        },
    )
}

fn report() -> impl Strategy<Value = Report> {
    (
        0u64..1_000_000,
        0usize..10_000,
        vec(pass_summary(), 0..4),
        vec(wire_string(), 0..3),
        vec(finding(), 0..6),
    )
        .prop_map(|(elapsed_ms, files_scanned, passes, unused_allows, findings)| Report {
            elapsed_ms: u128::from(elapsed_ms),
            files_scanned,
            passes,
            unused_allows,
            findings,
        })
}

proptest! {
    #[test]
    fn report_json_round_trips(r in report()) {
        let back = report_from_json(&r.to_json());
        prop_assert_eq!(back, Some(r));
    }

    /// A report whose findings carry pass codes this build has never
    /// heard of still parses; the foreign findings come back as
    /// `Unrecognized` with `Unknown` severity and everything else is
    /// untouched.
    #[test]
    fn unknown_codes_from_the_future_degrade_gracefully(
        r in report(),
        tail in "[A-Z][0-9]{3}",
        file in wire_string(),
        message in wire_string(),
        line in 0usize..100_000,
    ) {
        prop_assume!(PassCode::from_str_code(&tail).is_none());
        let json = r.to_json();
        // Splice a future finding in by hand: the writer is a newer
        // build, so we cannot construct it through this build's API.
        let foreign = format!(
            "{{\"code\":\"{tail}\",\"name\":\"FuturePass\",\"severity\":\"critical\",\
             \"file\":{},\"line\":\"{line}\",\"message\":{}}}",
            json_escape(&file),
            json_escape(&message),
        );
        let spliced = if r.findings.is_empty() {
            json.replace("\"findings\":[]", &format!("\"findings\":[{foreign}]"))
        } else {
            json.replacen("\"findings\":[\n", &format!("\"findings\":[\n    {foreign},\n"), 1)
        };
        let back = report_from_json(&spliced).expect("forward-compat parse");
        let mut expected = r.findings.clone();
        expected.insert(
            0,
            Finding {
                code: PassCode::Unrecognized,
                severity: Severity::Unknown,
                file,
                line,
                message,
            },
        );
        prop_assert_eq!(back.findings, expected);
    }
}

/// Standalone escaper matching `report.rs`'s private `json_str`, for
/// splicing hand-built documents.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
