//! The introduction's bank scenario.
//!
//! "For a bank, a customer should be able to query her account balance,
//! and no one else's balance. At the same time, a teller should have
//! read access to balances of all accounts but not the addresses of
//! customers corresponding to these balances. A teller should be allowed
//! to see the balance of any account by providing the account-id but not
//! the balances of all accounts together."

use crate::datagen;
use fgac_core::Engine;
use fgac_types::{Result, Row, Value};
use rand::Rng;

/// Sizing knobs for the synthetic bank.
#[derive(Debug, Clone, Copy)]
pub struct BankConfig {
    pub customers: usize,
    pub accounts_per_customer: usize,
    pub seed: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            customers: 50,
            accounts_per_customer: 2,
            seed: 0xBA2C,
        }
    }
}

/// Schema + the three authorization policies from the introduction.
pub const BANK_DDL: &str = "
create table customers (
  customer_id varchar not null,
  name varchar not null,
  address varchar not null,
  primary key (customer_id));

create table accounts (
  account_id varchar not null,
  customer_id varchar not null,
  branch varchar not null,
  balance double not null,
  primary key (account_id),
  foreign key (customer_id) references customers (customer_id));

-- A customer sees her own accounts (parameterized view).
create authorization view MyAccounts as
  select accounts.* from accounts
  where accounts.customer_id = $user_id;

-- A customer sees her own customer record.
create authorization view MyCustomerRecord as
  select * from customers where customer_id = $user_id;

-- A teller sees every balance, but no addresses: the view projects
-- account columns only (cell-level security via projection).
create authorization view TellerBalances as
  select account_id, customer_id, branch, balance from accounts;

-- A teller can fetch one customer's record by id (access pattern), so
-- they can serve a customer at the counter without being able to dump
-- the customer list.
create authorization view CustomerLookup as
  select * from customers where customer_id = $$1;
";

/// Builds the bank engine with data and grants.
pub fn build(config: BankConfig) -> Result<Engine> {
    let mut engine = Engine::new();
    engine.admin_script(BANK_DDL)?;
    let mut rng = datagen::rng(config.seed);

    let mut customer_rows = Vec::new();
    let mut account_rows = Vec::new();
    let mut account_no = 0usize;
    for i in 0..config.customers {
        let cid = datagen::customer_id(i);
        customer_rows.push(Row(vec![
            cid.clone().into(),
            format!("customer-{i}").into(),
            format!("{i} Main Street").into(),
        ]));
        for _ in 0..config.accounts_per_customer {
            account_rows.push(Row(vec![
                datagen::account_id(account_no).into(),
                cid.clone().into(),
                format!("branch-{}", account_no % 5).into(),
                Value::Double((rng.gen_range(0..1_000_000) as f64) / 100.0),
            ]));
            account_no += 1;
        }
    }
    engine.admin_load(&"customers".into(), customer_rows)?;
    engine.admin_load(&"accounts".into(), account_rows)?;

    // Customers get the customer role; tellers the teller role.
    engine.grant_view("customer", "myaccounts").unwrap();
    engine.grant_view("customer", "mycustomerrecord").unwrap();
    engine.grant_view("teller", "tellerbalances").unwrap();
    engine.grant_view("teller", "customerlookup").unwrap();
    for i in 0..config.customers {
        engine.add_role(&datagen::customer_id(i), "customer").unwrap();
    }
    engine.add_role("teller-1", "teller").unwrap();

    // A customer may update her own address.
    engine.grant_update_sql(
        "customer",
        "authorize update on customers (address) where old(customer_id) = $user_id",
    )?;

    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_core::Session;

    #[test]
    fn customer_sees_only_own_balance() {
        let mut e = build(BankConfig::default()).unwrap();
        let me = datagen::customer_id(0);
        let session = Session::new(me.clone());
        let r = e
            .execute(
                &session,
                &format!("select balance from accounts where customer_id = '{me}'"),
            )
            .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 2);

        let other = datagen::customer_id(1);
        assert!(e
            .execute(
                &session,
                &format!("select balance from accounts where customer_id = '{other}'"),
            )
            .is_err());
    }

    #[test]
    fn teller_sees_all_balances_but_no_addresses() {
        let mut e = build(BankConfig::default()).unwrap();
        let session = Session::new("teller-1");
        let r = e
            .execute(&session, "select account_id, balance from accounts")
            .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 100);
        // Addresses are not derivable from the teller's views.
        assert!(e
            .execute(&session, "select address from customers")
            .is_err());
    }

    #[test]
    fn teller_lookup_by_id_is_access_pattern() {
        let mut e = build(BankConfig::default()).unwrap();
        let session = Session::new("teller-1");
        let cid = datagen::customer_id(7);
        // Point lookup: valid through CustomerLookup's $$ parameter.
        let r = e
            .execute(
                &session,
                &format!("select name from customers where customer_id = '{cid}'"),
            )
            .unwrap();
        assert_eq!(r.rows().unwrap().rows.len(), 1);
        // Full dump: invalid.
        assert!(e.execute(&session, "select name from customers").is_err());
    }

    #[test]
    fn customer_updates_own_address_only() {
        let mut e = build(BankConfig::default()).unwrap();
        let me = datagen::customer_id(0);
        let session = Session::new(me.clone());
        let n = e
            .execute(
                &session,
                &format!("update customers set address = 'new place' where customer_id = '{me}'"),
            )
            .unwrap();
        assert_eq!(n.affected(), Some(1));
        let other = datagen::customer_id(1);
        assert!(e
            .execute(
                &session,
                &format!("update customers set address = 'x' where customer_id = '{other}'"),
            )
            .is_err());
    }
}
