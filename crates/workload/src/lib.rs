//! # fgac-workload
//!
//! Scenario builders and synthetic data generators shared by the
//! examples, integration tests, and the benchmark harness:
//!
//! * [`university`] — the paper's running example (Students, Courses,
//!   Registered, Grades; MyGrades / Co-studentGrades / AvgGrades /
//!   LCAvgGrades / RegStudents / SingleGrade views; the integrity
//!   constraints of Section 5.3), with scalable synthetic data.
//! * [`bank`] — the introduction's bank scenario (customers see their
//!   own balances; tellers see all balances but no addresses, and can
//!   look up single accounts by id — an access-pattern authorization).
//! * [`querygen`] — parameterized query mixes with known expected
//!   verdicts, used by the overhead/scaling experiments (E2, E3).

pub mod bank;
pub mod datagen;
pub mod querygen;
pub mod university;

pub use university::{University, UniversityConfig};
