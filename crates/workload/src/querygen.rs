//! Query mixes with known expected verdicts, for the overhead and
//! scaling experiments (E2, E3) and the acceptance matrix (E8).

use crate::datagen;
use fgac_core::Verdict;

/// One workload query: SQL text (for a given student/course), the user
/// who issues it, and the verdict the Non-Truman checker must produce.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    pub label: &'static str,
    pub user: String,
    pub sql: String,
    pub expected: Verdict,
    /// Query class for reporting: "point", "spj", "aggregate", ...
    pub class: &'static str,
}

/// The standard university query mix. `student` must be registered for
/// `reg_course` and not registered for `unreg_course` for the
/// conditional cases to behave as labelled.
pub fn university_mix(
    student: &str,
    reg_course: &str,
    unreg_course: &str,
) -> Vec<WorkloadQuery> {
    let s = student.to_string();
    vec![
        WorkloadQuery {
            label: "own grades (U1)",
            user: s.clone(),
            sql: format!("select * from grades where student_id = '{student}'"),
            expected: Verdict::Unconditional,
            class: "point",
        },
        WorkloadQuery {
            label: "own grades projection (U2)",
            user: s.clone(),
            sql: format!("select grade from grades where student_id = '{student}'"),
            expected: Verdict::Unconditional,
            class: "point",
        },
        WorkloadQuery {
            label: "own good grades (subsumption)",
            user: s.clone(),
            sql: format!(
                "select course_id from grades where student_id = '{student}' and grade > 80"
            ),
            expected: Verdict::Unconditional,
            class: "spj",
        },
        WorkloadQuery {
            label: "own average (U2 aggregate)",
            user: s.clone(),
            sql: format!("select avg(grade) from grades where student_id = '{student}'"),
            expected: Verdict::Unconditional,
            class: "aggregate",
        },
        WorkloadQuery {
            label: "course average via AvgGrades (Example 4.1)",
            user: s.clone(),
            sql: format!("select avg(grade) from grades where course_id = '{reg_course}'"),
            expected: Verdict::Unconditional,
            class: "aggregate",
        },
        WorkloadQuery {
            label: "registered course grades (Example 4.4, C3)",
            user: s.clone(),
            sql: format!("select * from grades where course_id = '{reg_course}'"),
            expected: Verdict::Conditional,
            class: "conditional",
        },
        WorkloadQuery {
            label: "unregistered course grades (rejected)",
            user: s.clone(),
            sql: format!("select * from grades where course_id = '{unreg_course}'"),
            expected: Verdict::Invalid,
            class: "conditional",
        },
        WorkloadQuery {
            label: "all grades (rejected)",
            user: s.clone(),
            sql: "select * from grades".to_string(),
            expected: Verdict::Invalid,
            class: "scan",
        },
        WorkloadQuery {
            label: "someone else's grades (rejected)",
            user: s.clone(),
            sql: format!(
                "select grade from grades where student_id = '{}'",
                datagen::student_id(999_999)
            ),
            expected: Verdict::Invalid,
            class: "point",
        },
    ]
}

/// Synthetic view families for the E3 view-count scaling experiment:
/// `n` single-table selection views over `grades`, each matching a
/// different grade band. Returned as `CREATE AUTHORIZATION VIEW`
/// statements.
pub fn synthetic_view_family(n: usize) -> Vec<(String, String)> {
    (0..n)
        .map(|i| {
            let name = format!("band{i}");
            let lo = i % 100;
            let body = format!(
                "create authorization view {name} as \
                 select * from grades where student_id = $user_id and grade >= {lo}"
            );
            (name, body)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::{build, UniversityConfig};
    use fgac_core::{Session, Validator};

    #[test]
    fn mix_verdicts_match_expectations() {
        let uni = build(UniversityConfig::tiny()).unwrap();
        // Find a (student, registered, unregistered) triple.
        let student = uni.student(0);
        let reg = uni
            .registrations
            .iter()
            .find(|(s, _)| s == &student)
            .map(|(_, c)| c.clone())
            .unwrap();
        let unreg = (0..uni.config.courses)
            .map(|i| uni.course(i))
            .find(|c| !uni.is_registered(&student, c))
            .expect("student not registered everywhere");

        for q in university_mix(&student, &reg, &unreg) {
            let report = Validator::new(uni.engine.database(), uni.engine.grants())
                .check_sql(&Session::new(q.user.clone()), &q.sql)
                .unwrap();
            assert_eq!(
                report.verdict, q.expected,
                "query `{}` ({}): rules {:?}",
                q.sql, q.label, report.rules
            );
        }
    }

    #[test]
    fn view_family_parses() {
        for (_, body) in synthetic_view_family(8) {
            assert!(fgac_sql::parse_statement(&body).is_ok());
        }
    }
}
