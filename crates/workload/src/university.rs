//! The paper's running university scenario, scalable.

use crate::datagen;
use fgac_core::Engine;
use fgac_types::{Ident, Result, Row, Value};
use rand::Rng;

/// Sizing knobs for the synthetic university.
#[derive(Debug, Clone, Copy)]
pub struct UniversityConfig {
    pub students: usize,
    pub courses: usize,
    /// Courses each student registers for.
    pub registrations_per_student: usize,
    /// Fraction of registrations that already have a grade (0.0–1.0).
    pub graded_fraction: f64,
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            students: 100,
            courses: 10,
            registrations_per_student: 3,
            graded_fraction: 0.8,
            seed: 0xF6AC,
        }
    }
}

impl UniversityConfig {
    pub fn tiny() -> Self {
        UniversityConfig {
            students: 10,
            courses: 4,
            registrations_per_student: 2,
            ..Default::default()
        }
    }

    pub fn with_students(mut self, n: usize) -> Self {
        self.students = n;
        self
    }
}

/// A built university engine plus bookkeeping for assertions.
pub struct University {
    pub engine: Engine,
    pub config: UniversityConfig,
    /// (student, course) pairs with grades, for ground-truth checks.
    pub graded: Vec<(String, String, i64)>,
    /// (student, course) registrations.
    pub registrations: Vec<(String, String)>,
}

/// DDL + authorization views + integrity constraints, exactly the
/// paper's Sections 2–5 set.
pub const UNIVERSITY_DDL: &str = "
create table students (
  student_id varchar not null,
  name varchar not null,
  type varchar not null,
  primary key (student_id));

create table courses (
  course_id varchar not null,
  name varchar not null,
  primary key (course_id));

create table registered (
  student_id varchar not null,
  course_id varchar not null,
  primary key (student_id, course_id),
  foreign key (student_id) references students (student_id),
  foreign key (course_id) references courses (course_id));

create table grades (
  student_id varchar not null,
  course_id varchar not null,
  grade int,
  primary key (student_id, course_id),
  foreign key (student_id) references students (student_id),
  foreign key (course_id) references courses (course_id));

create table feespaid (
  student_id varchar not null,
  primary key (student_id),
  foreign key (student_id) references students (student_id));

-- Section 1: a student sees her own grades.
create authorization view MyGrades as
  select * from grades where student_id = $user_id;

-- Section 2: grades of every course the student registered for.
create authorization view CoStudentGrades as
  select grades.* from grades, registered
  where registered.student_id = $user_id
    and grades.course_id = registered.course_id;

-- Section 4.1: per-course averages.
create authorization view AvgGrades as
  select course_id, avg(grade) from grades group by course_id;

-- Example 4.2: averages only for popular courses.
create authorization view LCAvgGrades as
  select course_id, avg(grade) from grades
  group by course_id having count(*) >= 10;

-- Example 5.1: names/types of registered students.
create authorization view RegStudents as
  select registered.course_id, students.name, students.type
  from registered, students
  where students.student_id = registered.student_id;

-- Section 2: access-pattern lookup of one student's grades.
create authorization view SingleGrade as
  select * from grades where student_id = $$1;

-- A student's own registrations (used by Example 4.4's reasoning).
create authorization view MyRegistrations as
  select * from registered where student_id = $user_id;

-- Example 5.1's integrity constraint: every student registers for at
-- least one course.
create inclusion dependency all_registered
  on students (student_id) references registered (student_id);

-- Example 5.3: every full-time student registers for a course.
create inclusion dependency ft_registered
  on students (student_id) where type = 'FullTime'
  references registered (student_id);

-- Example 5.4: fee payers are registered.
create inclusion dependency fees_registered
  on feespaid (student_id) references registered (student_id);
";

/// Builds the engine: schema, views, constraints, synthetic data, and
/// the standard grants (each student gets the student-role views).
pub fn build(config: UniversityConfig) -> Result<University> {
    let mut engine = Engine::new();
    engine.admin_script(UNIVERSITY_DDL)?;

    let mut rng = datagen::rng(config.seed);
    let students_t = Ident::new("students");
    let courses_t = Ident::new("courses");
    let registered_t = Ident::new("registered");
    let grades_t = Ident::new("grades");
    let fees_t = Ident::new("feespaid");

    // Students: alternate FullTime/PartTime.
    let mut student_rows = Vec::with_capacity(config.students);
    for i in 0..config.students {
        let ty = if i % 2 == 0 { "FullTime" } else { "PartTime" };
        student_rows.push(Row(vec![
            datagen::student_id(i).into(),
            format!("student-{i}").into(),
            ty.into(),
        ]));
    }
    engine.admin_load(&students_t, student_rows)?;

    let mut course_rows = Vec::with_capacity(config.courses);
    for i in 0..config.courses {
        course_rows.push(Row(vec![
            datagen::course_id(i).into(),
            format!("course-{i}").into(),
        ]));
    }
    engine.admin_load(&courses_t, course_rows)?;

    let per = config.registrations_per_student.min(config.courses);
    let mut registrations = Vec::new();
    let mut graded = Vec::new();
    let mut reg_rows = Vec::new();
    let mut grade_rows = Vec::new();
    let mut fee_rows = Vec::new();
    for i in 0..config.students {
        let sid = datagen::student_id(i);
        for c in datagen::distinct_indexes(&mut rng, config.courses, per) {
            let cid = datagen::course_id(c);
            registrations.push((sid.clone(), cid.clone()));
            reg_rows.push(Row(vec![sid.clone().into(), cid.clone().into()]));
            if rng.gen_bool(config.graded_fraction) {
                let g = datagen::grade(&mut rng);
                graded.push((sid.clone(), cid.clone(), g));
                grade_rows.push(Row(vec![sid.clone().into(), cid.into(), Value::Int(g)]));
            }
        }
        if rng.gen_bool(0.7) {
            fee_rows.push(Row(vec![sid.into()]));
        }
    }
    engine.admin_load(&registered_t, reg_rows)?;
    engine.admin_load(&grades_t, grade_rows)?;
    engine.admin_load(&fees_t, fee_rows)?;

    // Standard grants: the "student" role sees her own slices + course
    // averages; constraints of Section 5.3 are public knowledge.
    engine.grant_view("student", "mygrades").unwrap();
    engine.grant_view("student", "costudentgrades").unwrap();
    engine.grant_view("student", "avggrades").unwrap();
    engine.grant_view("student", "myregistrations").unwrap();
    engine.grant_constraint("student", "all_registered").unwrap();
    engine.grant_constraint("student", "ft_registered").unwrap();
    engine.grant_constraint("student", "fees_registered").unwrap();
    for i in 0..config.students {
        engine.add_role(&datagen::student_id(i), "student").unwrap();
    }
    // The registrar sees RegStudents; the secretary gets the
    // access-pattern lookup.
    engine.grant_view("registrar", "regstudents").unwrap();
    engine.grant_constraint("registrar", "all_registered").unwrap();
    engine.grant_constraint("registrar", "ft_registered").unwrap();
    engine.grant_view("secretary", "singlegrade").unwrap();

    // Update authorizations of Section 4.4.
    engine.grant_update_sql(
        "student",
        "authorize insert on registered where student_id = $user_id",
    )?;
    engine.grant_update_sql(
        "student",
        "authorize update on students (name) where old(student_id) = $user_id",
    )?;

    Ok(University {
        engine,
        config,
        graded,
        registrations,
    })
}

impl University {
    /// A student user id present in the data.
    pub fn student(&self, i: usize) -> String {
        datagen::student_id(i % self.config.students)
    }

    /// A course id present in the data.
    pub fn course(&self, i: usize) -> String {
        datagen::course_id(i % self.config.courses)
    }

    /// True average grade of a course (ground truth).
    pub fn true_course_avg(&self, course: &str) -> Option<f64> {
        let grades: Vec<i64> = self
            .graded
            .iter()
            .filter(|(_, c, _)| c == course)
            .map(|&(_, _, g)| g)
            .collect();
        if grades.is_empty() {
            None
        } else {
            Some(grades.iter().sum::<i64>() as f64 / grades.len() as f64)
        }
    }

    /// Whether `student` registered for `course` (ground truth for the
    /// conditional-validity experiments).
    pub fn is_registered(&self, student: &str, course: &str) -> bool {
        self.registrations
            .iter()
            .any(|(s, c)| s == student && c == course)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_core::Session;

    #[test]
    fn builds_and_serves_student_queries() {
        let mut uni = build(UniversityConfig::tiny()).unwrap();
        let sid = uni.student(0);
        let session = Session::new(sid.clone());
        let r = uni
            .engine
            .execute(
                &session,
                &format!("select grade from grades where student_id = '{sid}'"),
            )
            .unwrap();
        assert!(r.rows().is_some());

        // Another student's grades are rejected.
        let other = uni.student(1);
        let err = uni.engine.execute(
            &session,
            &format!("select grade from grades where student_id = '{other}'"),
        );
        assert!(err.is_err());
    }

    #[test]
    fn ground_truth_helpers_match_database() {
        let uni = build(UniversityConfig::tiny()).unwrap();
        let total: usize = uni.graded.len();
        let stored = uni
            .engine
            .database()
            .table(&Ident::new("grades"))
            .unwrap()
            .len();
        assert_eq!(total, stored);
        assert!(uni.registrations.len() >= uni.config.students);
    }

    #[test]
    fn constraints_hold_on_generated_data() {
        let uni = build(UniversityConfig::tiny()).unwrap();
        let db = uni.engine.database();
        for dep in db.catalog().inclusion_dependencies() {
            let violations = fgac_exec::audit_inclusion(db, dep).unwrap();
            assert!(
                violations.is_empty(),
                "constraint {} violated: {violations:?}",
                dep.name
            );
        }
    }

    #[test]
    fn course_average_is_visible_via_avggrades() {
        let mut uni = build(UniversityConfig::tiny()).unwrap();
        let sid = uni.student(0);
        let course = uni.course(0);
        let session = Session::new(sid);
        let r = uni
            .engine
            .execute(
                &session,
                &format!("select avg(grade) from grades where course_id = '{course}'"),
            )
            .unwrap();
        let got = r.rows().unwrap().rows[0].get(0).clone();
        match uni.true_course_avg(&course) {
            Some(avg) => assert_eq!(got, Value::Double(avg)),
            None => assert_eq!(got, Value::Null),
        }
    }
}
