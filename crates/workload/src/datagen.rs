//! Deterministic synthetic-data helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG so every bench/test run sees identical data.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `student_id` strings: "s000001", ...
pub fn student_id(i: usize) -> String {
    format!("s{i:06}")
}

/// `course_id` strings: "c0001", ...
pub fn course_id(i: usize) -> String {
    format!("c{i:04}")
}

/// `account_id` strings: "a000001", ...
pub fn account_id(i: usize) -> String {
    format!("a{i:06}")
}

/// `customer_id` strings: "u000001", ...
pub fn customer_id(i: usize) -> String {
    format!("u{i:06}")
}

/// A grade in 0..=100, roughly bell-shaped.
pub fn grade(rng: &mut StdRng) -> i64 {
    let a: i64 = rng.gen_range(0..=50);
    let b: i64 = rng.gen_range(0..=50);
    a + b
}

/// Picks `k` distinct indexes out of `0..n` (k <= n).
pub fn distinct_indexes(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n);
    // Partial Fisher-Yates.
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = rng(7);
        let mut b = rng(7);
        assert_eq!(grade(&mut a), grade(&mut b));
    }

    #[test]
    fn distinct_indexes_are_distinct_and_in_range() {
        let mut r = rng(1);
        let idx = distinct_indexes(&mut r, 10, 5);
        assert_eq!(idx.len(), 5);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
        assert!(idx.iter().all(|&i| i < 10));
    }

    #[test]
    fn id_formats() {
        assert_eq!(student_id(42), "s000042");
        assert_eq!(course_id(3), "c0003");
    }
}
