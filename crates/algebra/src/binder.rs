//! Name resolution: `fgac-sql` AST → bound [`Plan`].
//!
//! * View references in `FROM` are expanded inline (recursively), so a
//!   bound plan mentions only base tables — which is what the DAG and the
//!   inference rules want.
//! * `$` session parameters are substituted with values from the
//!   [`ParamScope`] during binding; binding a parameterized authorization
//!   view with a session's parameters yields the paper's *instantiated
//!   authorization view* (Section 2).
//! * `$$` access-pattern parameters survive as
//!   [`ScalarExpr::AccessParam`] opaque constants (Section 6).

use crate::expr::{AggExpr, AggFunc, ArithOp, CmpOp, ScalarExpr};
use crate::plan::{OrderKey, Plan};
use fgac_sql::{self as sql, BinaryOp, SelectItem, UnaryOp};
use fgac_storage::Catalog;
use fgac_types::{Error, Ident, Result, Value};
use std::collections::BTreeMap;

/// Session parameter values (`$user_id`, `$time`, ...). Section 2: "Given
/// a particular access to the database (by a particular user), the
/// parameters would be fixed".
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ParamScope {
    values: BTreeMap<String, Value>,
}

impl ParamScope {
    pub fn new() -> Self {
        Self::default()
    }

    /// Scope with just `$user_id` set — the common case.
    pub fn with_user(user_id: impl Into<Value>) -> Self {
        let mut s = Self::new();
        s.set("user_id", user_id);
        s
    }

    pub fn set(&mut self, name: impl AsRef<str>, value: impl Into<Value>) -> &mut Self {
        self.values
            .insert(name.as_ref().to_ascii_lowercase(), value.into());
        self
    }

    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(&name.to_ascii_lowercase())
    }

    /// All bound parameters, in deterministic (sorted) order — recorded
    /// into validity certificates so a checker can re-instantiate the
    /// views exactly as the validator did.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// A fully bound query: plan + presentation (names, order, limit).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundQuery {
    pub plan: Plan,
    pub output_names: Vec<Ident>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

/// Binds `query` against `catalog`, substituting `$` parameters from
/// `params`.
pub fn bind_query(catalog: &Catalog, query: &sql::Query, params: &ParamScope) -> Result<BoundQuery> {
    bind_query_depth(catalog, query, params, 0)
}

const MAX_VIEW_DEPTH: usize = 32;

fn bind_query_depth(
    catalog: &Catalog,
    query: &sql::Query,
    params: &ParamScope,
    depth: usize,
) -> Result<BoundQuery> {
    if depth > MAX_VIEW_DEPTH {
        return Err(Error::Bind("view expansion too deep (cycle?)".into()));
    }
    let binder = Binder { catalog, params };
    binder.bind(query, depth)
}

/// Binds one expression over a single table's row (offsets into the
/// table schema). Used for DML filters/assignments, `AUTHORIZE`
/// conditions, and inclusion-dependency filters — all of which are
/// predicates over one relation (Section 4.4: update authorization "only
/// requires evaluation of a (fully instantiated) predicate").
pub fn bind_table_expr(
    catalog: &Catalog,
    table: &Ident,
    expr: &sql::Expr,
    params: &ParamScope,
) -> Result<ScalarExpr> {
    let meta = catalog.table_required(table)?;
    let item = FromItem {
        binding: table.clone(),
        columns: meta.schema.columns().iter().map(|c| c.name.clone()).collect(),
        offset: 0,
        plan: Plan::scan(meta.name.clone(), meta.schema.clone()),
    };
    let binder = Binder { catalog, params };
    binder.bind_scalar(expr, std::slice::from_ref(&item))
}

struct Binder<'a> {
    catalog: &'a Catalog,
    params: &'a ParamScope,
}

/// One entry of the FROM scope.
struct FromItem {
    binding: Ident,
    columns: Vec<Ident>,
    offset: usize,
    plan: Plan,
}

impl<'a> Binder<'a> {
    fn bind(&self, query: &sql::Query, depth: usize) -> Result<BoundQuery> {
        if query.from.is_empty() {
            return Err(Error::Unsupported(
                "queries without a FROM clause are not supported".into(),
            ));
        }

        // 1. FROM scope: flatten table refs + JOIN chains.
        let mut items: Vec<FromItem> = Vec::new();
        let mut join_conjuncts_ast: Vec<sql::Expr> = Vec::new();
        for tref in &query.from {
            self.push_from_item(&mut items, &tref.name, tref.alias.as_ref(), depth)?;
            for join in &tref.joins {
                self.push_from_item(&mut items, &join.table, join.alias.as_ref(), depth)?;
                join_conjuncts_ast.push(join.on.clone());
            }
        }

        // 2. Cross-join the items left-deep.
        let mut plan = items[0].plan.clone();
        for item in &items[1..] {
            plan = plan.join(item.plan.clone(), vec![]);
        }

        // 3. WHERE + ON conjuncts.
        let mut conjuncts = Vec::new();
        for on in &join_conjuncts_ast {
            conjuncts.push(self.bind_scalar(on, &items)?);
        }
        if let Some(w) = &query.selection {
            conjuncts.push(self.bind_scalar(w, &items)?);
        }
        if !conjuncts.is_empty() {
            plan = plan.select(conjuncts);
        }

        // 4. Projection (+ optional aggregation).
        let needs_agg = !query.group_by.is_empty()
            || query.having.is_some()
            || query
                .projection
                .iter()
                .any(|item| matches!(item, SelectItem::Expr { expr, .. } if contains_aggregate(expr)));

        let (plan, output_names) = if needs_agg {
            self.bind_aggregate_projection(plan, query, &items)?
        } else {
            self.bind_plain_projection(plan, query, &items)?
        };
        let mut plan = plan;

        // 5. DISTINCT.
        if query.distinct {
            plan = plan.distinct();
        }

        // 6. ORDER BY: resolve against output columns (by alias/name or
        //    by matching the bound expression against projection items).
        let mut order_by = Vec::new();
        for ob in &query.order_by {
            let col = self.resolve_order_key(&ob.expr, &output_names)?;
            order_by.push(OrderKey { col, asc: ob.asc });
        }

        Ok(BoundQuery {
            plan,
            output_names,
            order_by,
            limit: query.limit,
        })
    }

    fn push_from_item(
        &self,
        items: &mut Vec<FromItem>,
        name: &Ident,
        alias: Option<&Ident>,
        depth: usize,
    ) -> Result<()> {
        let binding = alias.cloned().unwrap_or_else(|| name.clone());
        if items.iter().any(|i| i.binding == binding) {
            return Err(Error::Bind(format!(
                "duplicate table binding `{binding}` in FROM (use aliases)"
            )));
        }
        let offset = items.iter().map(|i| i.columns.len()).sum();
        if let Some(meta) = self.catalog.table(name) {
            items.push(FromItem {
                binding,
                columns: meta.schema.columns().iter().map(|c| c.name.clone()).collect(),
                offset,
                plan: Plan::scan(meta.name.clone(), meta.schema.clone()),
            });
            return Ok(());
        }
        if let Some(view) = self.catalog.view(name) {
            let bound = bind_query_depth(self.catalog, &view.query.clone(), self.params, depth + 1)?;
            if bound.limit.is_some() {
                return Err(Error::Unsupported(format!(
                    "view {name} has a LIMIT clause and cannot be referenced in FROM"
                )));
            }
            items.push(FromItem {
                binding,
                columns: bound.output_names,
                offset,
                plan: bound.plan,
            });
            return Ok(());
        }
        Err(Error::Bind(format!("unknown table or view `{name}`")))
    }

    fn bind_plain_projection(
        &self,
        input: Plan,
        query: &sql::Query,
        items: &[FromItem],
    ) -> Result<(Plan, Vec<Ident>)> {
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for item in &query.projection {
            match item {
                SelectItem::Wildcard => {
                    for fi in items {
                        for (i, col) in fi.columns.iter().enumerate() {
                            exprs.push(ScalarExpr::Col(fi.offset + i));
                            names.push(col.clone());
                        }
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let fi = items
                        .iter()
                        .find(|i| &i.binding == q)
                        .ok_or_else(|| Error::Bind(format!("unknown table alias `{q}.*`")))?;
                    for (i, col) in fi.columns.iter().enumerate() {
                        exprs.push(ScalarExpr::Col(fi.offset + i));
                        names.push(col.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.bind_scalar(expr, items)?);
                    names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                }
            }
        }
        Ok((input.project(exprs), names))
    }

    fn bind_aggregate_projection(
        &self,
        input: Plan,
        query: &sql::Query,
        items: &[FromItem],
    ) -> Result<(Plan, Vec<Ident>)> {
        // Bind group-by expressions over the from-row.
        let group_by: Vec<ScalarExpr> = query
            .group_by
            .iter()
            .map(|e| self.bind_scalar(e, items))
            .collect::<Result<_>>()?;

        // Collect aggregates from projection + having, assigning output
        // slots after the group columns.
        let mut aggs: Vec<AggExpr> = Vec::new();

        let mut top_exprs = Vec::new();
        let mut names = Vec::new();
        for item in &query.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(Error::Bind(
                        "wildcards are not allowed with GROUP BY / aggregates".into(),
                    ));
                }
                SelectItem::Expr { expr, alias } => {
                    let rebased = self.rebase_over_groups(expr, items, &group_by, &mut aggs)?;
                    top_exprs.push(rebased);
                    names.push(alias.clone().unwrap_or_else(|| derive_name(expr)));
                }
            }
        }

        let having = query
            .having
            .as_ref()
            .map(|h| self.rebase_over_groups(h, items, &group_by, &mut aggs))
            .transpose()?;

        let mut plan = input.aggregate(group_by, aggs);
        if let Some(h) = having {
            plan = plan.select(vec![h]);
        }
        let plan = plan.project(top_exprs);
        Ok((plan, names))
    }

    /// Expresses `expr` over the aggregate output row: group expressions
    /// become `Col(i)`, aggregates become `Col(group_len + j)` (allocating
    /// new slots as needed), and anything else must decompose into those.
    fn rebase_over_groups(
        &self,
        expr: &sql::Expr,
        items: &[FromItem],
        group_by: &[ScalarExpr],
        aggs: &mut Vec<AggExpr>,
    ) -> Result<ScalarExpr> {
        // An aggregate function call?
        if let sql::Expr::Function {
            name,
            args,
            distinct,
            star,
        } = expr
        {
            let func = agg_func(name).ok_or_else(|| {
                Error::Bind(format!("unknown function `{name}` (expected an aggregate)"))
            })?;
            let agg = if *star {
                if func != AggFunc::Count {
                    return Err(Error::Bind(format!("{name}(*) is not valid")));
                }
                AggExpr {
                    func: AggFunc::CountStar,
                    arg: None,
                    distinct: false,
                }
            } else {
                if args.len() != 1 {
                    return Err(Error::Bind(format!("{name} expects exactly one argument")));
                }
                if contains_aggregate(&args[0]) {
                    return Err(Error::Bind("nested aggregates are not allowed".into()));
                }
                AggExpr {
                    func,
                    arg: Some(self.bind_scalar(&args[0], items)?),
                    distinct: *distinct,
                }
            };
            let idx = match aggs.iter().position(|a| a == &agg) {
                Some(i) => i,
                None => {
                    aggs.push(agg);
                    aggs.len() - 1
                }
            };
            return Ok(ScalarExpr::Col(group_by.len() + idx));
        }

        // Exactly a group-by expression?
        if let Ok(bound) = self.bind_scalar(expr, items) {
            if let Some(i) = group_by.iter().position(|g| g == &bound) {
                return Ok(ScalarExpr::Col(i));
            }
            if bound.is_constant() {
                return Ok(bound);
            }
        }

        // Recurse structurally.
        match expr {
            sql::Expr::Binary { left, op, right } => {
                let l = self.rebase_over_groups(left, items, group_by, aggs)?;
                let r = self.rebase_over_groups(right, items, group_by, aggs)?;
                combine_binary(*op, l, r)
            }
            sql::Expr::Unary { op, expr: inner } => {
                let e = self.rebase_over_groups(inner, items, group_by, aggs)?;
                Ok(match op {
                    UnaryOp::Not => ScalarExpr::Not(Box::new(e)),
                    UnaryOp::Neg => ScalarExpr::Neg(Box::new(e)),
                })
            }
            sql::Expr::IsNull { expr: inner, negated } => {
                let e = self.rebase_over_groups(inner, items, group_by, aggs)?;
                Ok(ScalarExpr::IsNull {
                    expr: Box::new(e),
                    negated: *negated,
                })
            }
            _ => Err(Error::Bind(format!(
                "expression `{}` must appear in GROUP BY or be an aggregate",
                fgac_sql::printer::print_expr(expr)
            ))),
        }
    }

    /// Binds a scalar AST expression over the from-row.
    fn bind_scalar(&self, expr: &sql::Expr, items: &[FromItem]) -> Result<ScalarExpr> {
        match expr {
            sql::Expr::Column { qualifier, name } => {
                let offset = self.resolve_column(qualifier.as_ref(), name, items)?;
                Ok(ScalarExpr::Col(offset))
            }
            sql::Expr::Literal(v) => Ok(ScalarExpr::Lit(v.clone())),
            sql::Expr::Param(p) => match self.params.get(p) {
                Some(v) => Ok(ScalarExpr::Lit(v.clone())),
                None => Err(Error::Bind(format!("unbound session parameter ${p}"))),
            },
            sql::Expr::AccessParam(p) => Ok(ScalarExpr::AccessParam(p.clone())),
            sql::Expr::Unary { op, expr: inner } => {
                let e = self.bind_scalar(inner, items)?;
                Ok(match op {
                    UnaryOp::Not => ScalarExpr::Not(Box::new(e)),
                    UnaryOp::Neg => ScalarExpr::Neg(Box::new(e)),
                })
            }
            sql::Expr::Binary { left, op, right } => {
                let l = self.bind_scalar(left, items)?;
                let r = self.bind_scalar(right, items)?;
                combine_binary(*op, l, r)
            }
            sql::Expr::IsNull { expr: inner, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.bind_scalar(inner, items)?),
                negated: *negated,
            }),
            sql::Expr::Function { name, .. } => Err(Error::Bind(format!(
                "aggregate/function `{name}` is not allowed here"
            ))),
        }
    }

    fn resolve_column(
        &self,
        qualifier: Option<&Ident>,
        name: &Ident,
        items: &[FromItem],
    ) -> Result<usize> {
        match qualifier {
            Some(q) => {
                let fi = items
                    .iter()
                    .find(|i| &i.binding == q)
                    .ok_or_else(|| Error::Bind(format!("unknown table alias `{q}`")))?;
                let idx = fi
                    .columns
                    .iter()
                    .position(|c| c == name)
                    .ok_or_else(|| Error::Bind(format!("no column `{name}` in `{q}`")))?;
                Ok(fi.offset + idx)
            }
            None => {
                let mut hit = None;
                for fi in items {
                    if let Some(idx) = fi.columns.iter().position(|c| c == name) {
                        if hit.is_some() {
                            return Err(Error::Bind(format!("ambiguous column `{name}`")));
                        }
                        hit = Some(fi.offset + idx);
                    }
                }
                hit.ok_or_else(|| Error::Bind(format!("unknown column `{name}`")))
            }
        }
    }

    fn resolve_order_key(&self, expr: &sql::Expr, output_names: &[Ident]) -> Result<usize> {
        if let sql::Expr::Column { qualifier: None, name } = expr {
            let matches: Vec<usize> = output_names
                .iter()
                .enumerate()
                .filter(|(_, n)| *n == name)
                .map(|(i, _)| i)
                .collect();
            match matches.as_slice() {
                [one] => return Ok(*one),
                [] => {}
                _ => return Err(Error::Bind(format!("ambiguous ORDER BY column `{name}`"))),
            }
        }
        if let sql::Expr::Literal(Value::Int(n)) = expr {
            let idx = *n as usize;
            if idx >= 1 && idx <= output_names.len() {
                return Ok(idx - 1);
            }
            return Err(Error::Bind(format!("ORDER BY position {n} out of range")));
        }
        Err(Error::Unsupported(
            "ORDER BY must name an output column or use a 1-based position".into(),
        ))
    }
}

fn combine_binary(op: BinaryOp, l: ScalarExpr, r: ScalarExpr) -> Result<ScalarExpr> {
    Ok(match op {
        BinaryOp::And => ScalarExpr::And(vec![l, r]),
        BinaryOp::Or => ScalarExpr::Or(vec![l, r]),
        BinaryOp::Eq => ScalarExpr::cmp(CmpOp::Eq, l, r),
        BinaryOp::NotEq => ScalarExpr::cmp(CmpOp::NotEq, l, r),
        BinaryOp::Lt => ScalarExpr::cmp(CmpOp::Lt, l, r),
        BinaryOp::LtEq => ScalarExpr::cmp(CmpOp::LtEq, l, r),
        BinaryOp::Gt => ScalarExpr::cmp(CmpOp::Gt, l, r),
        BinaryOp::GtEq => ScalarExpr::cmp(CmpOp::GtEq, l, r),
        BinaryOp::Add => arith(ArithOp::Add, l, r),
        BinaryOp::Sub => arith(ArithOp::Sub, l, r),
        BinaryOp::Mul => arith(ArithOp::Mul, l, r),
        BinaryOp::Div => arith(ArithOp::Div, l, r),
        BinaryOp::Mod => arith(ArithOp::Mod, l, r),
    })
}

fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Arith {
        op,
        left: Box::new(l),
        right: Box::new(r),
    }
}

fn agg_func(name: &Ident) -> Option<AggFunc> {
    Some(match name.as_str() {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        _ => return None,
    })
}

fn contains_aggregate(e: &sql::Expr) -> bool {
    let mut found = false;
    e.walk(&mut |x| {
        if let sql::Expr::Function { name, .. } = x {
            if agg_func(name).is_some() {
                found = true;
            }
        }
    });
    found
}

fn derive_name(e: &sql::Expr) -> Ident {
    match e {
        sql::Expr::Column { name, .. } => name.clone(),
        sql::Expr::Function { name, .. } => name.clone(),
        _ => Ident::new("expr"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_sql::parse_query;
    use fgac_types::{Column, DataType, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        c.add_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            Some(vec![Ident::new("student_id"), Ident::new("course_id")]),
        )
        .unwrap();
        c.add_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        c
    }

    fn bind(sql_text: &str) -> BoundQuery {
        let q = parse_query(sql_text).unwrap();
        bind_query(&catalog(), &q, &ParamScope::with_user("11")).unwrap()
    }

    fn bind_err(sql_text: &str) -> Error {
        let q = parse_query(sql_text).unwrap();
        bind_query(&catalog(), &q, &ParamScope::with_user("11")).unwrap_err()
    }

    #[test]
    fn binds_select_star() {
        let b = bind("select * from grades");
        assert_eq!(b.plan.arity(), 3);
        assert_eq!(
            b.output_names,
            vec![
                Ident::new("student_id"),
                Ident::new("course_id"),
                Ident::new("grade")
            ]
        );
    }

    #[test]
    fn binds_parameter() {
        let b = bind("select grade from grades where student_id = $user_id");
        // Parameter must be gone, replaced by the literal '11'.
        let mut saw_lit = false;
        b.plan.visit(&mut |p| {
            if let Plan::Select { conjuncts, .. } = p {
                for c in conjuncts {
                    c.walk(&mut |e| {
                        if e == &ScalarExpr::Lit(Value::Str("11".into())) {
                            saw_lit = true;
                        }
                    });
                }
            }
        });
        assert!(saw_lit);
    }

    #[test]
    fn unbound_parameter_errors() {
        let q = parse_query("select * from grades where student_id = $nope").unwrap();
        let err = bind_query(&catalog(), &q, &ParamScope::with_user("11")).unwrap_err();
        assert!(err.to_string().contains("$nope"));
    }

    #[test]
    fn binds_comma_join_with_qualifiers() {
        let b = bind(
            "select g.grade from grades g, registered r \
             where g.course_id = r.course_id and r.student_id = '11'",
        );
        assert_eq!(b.plan.arity(), 1);
        // Join of two scans underneath.
        let tables = b.plan.scanned_tables();
        assert_eq!(tables.len(), 2);
    }

    #[test]
    fn join_on_desugars_to_conjunct() {
        let a = bind(
            "select s.name from students s join registered r on s.student_id = r.student_id",
        );
        let b = bind(
            "select s.name from students s, registered r where s.student_id = r.student_id",
        );
        assert_eq!(crate::normalize(&a.plan), crate::normalize(&b.plan));
    }

    #[test]
    fn alias_invariance_after_normalize() {
        let a = bind("select g.grade from grades g where g.student_id = '11'");
        let b = bind("select grades.grade from grades where grades.student_id = '11'");
        assert_eq!(crate::normalize(&a.plan), crate::normalize(&b.plan));
    }

    #[test]
    fn duplicate_binding_rejected() {
        let err = bind_err("select * from grades, grades");
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn ambiguous_column_rejected() {
        let err = bind_err("select student_id from grades g, registered r");
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn binds_aggregate_query() {
        let b = bind("select course_id, avg(grade) from grades group by course_id");
        assert_eq!(b.plan.arity(), 2);
        assert!(b.plan.has_aggregate());
        assert_eq!(b.output_names[1], Ident::new("avg"));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let b = bind("select avg(grade) from grades");
        let Plan::Project { input, .. } = &b.plan else {
            panic!()
        };
        let Plan::Aggregate { group_by, aggs, .. } = &**input else {
            panic!("expected aggregate, got {input:?}")
        };
        assert!(group_by.is_empty());
        assert_eq!(aggs.len(), 1);
        assert_eq!(aggs[0].func, AggFunc::Avg);
    }

    #[test]
    fn having_binds_over_aggregates() {
        let b = bind(
            "select course_id from grades group by course_id having count(*) > 2",
        );
        // Project over Select over Aggregate.
        let Plan::Project { input, .. } = &b.plan else {
            panic!()
        };
        assert!(matches!(**input, Plan::Select { .. }));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let err = bind_err("select name from students group by type");
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn view_expansion_inlines_base_tables() {
        let mut c = catalog();
        c.add_view(fgac_storage::ViewDef {
            name: Ident::new("mygrades"),
            authorization: true,
            query: parse_query("select * from grades where student_id = $user_id").unwrap(),
        })
        .unwrap();
        let q = parse_query("select grade from mygrades").unwrap();
        let b = bind_query(&c, &q, &ParamScope::with_user("11")).unwrap();
        assert_eq!(b.plan.scanned_tables(), vec![Ident::new("grades")]);
    }

    #[test]
    fn order_by_name_and_position() {
        let b = bind("select name, type from students order by type desc, 1");
        assert_eq!(
            b.order_by,
            vec![OrderKey { col: 1, asc: false }, OrderKey { col: 0, asc: true }]
        );
    }

    #[test]
    fn distinct_adds_operator() {
        let b = bind("select distinct name from students");
        assert!(matches!(b.plan, Plan::Distinct { .. }));
    }

    #[test]
    fn access_param_survives_binding() {
        let q = parse_query("select * from grades where student_id = $$1").unwrap();
        let b = bind_query(&catalog(), &q, &ParamScope::new()).unwrap();
        assert!(b.plan.has_access_params());
    }

    #[test]
    fn count_distinct_binds() {
        let b = bind("select count(distinct grade) from grades");
        let Plan::Project { input, .. } = &b.plan else {
            panic!()
        };
        let Plan::Aggregate { aggs, .. } = &**input else {
            panic!()
        };
        assert!(aggs[0].distinct);
    }

    #[test]
    fn arithmetic_over_group_exprs() {
        let b = bind("select grade + 1 from grades group by grade");
        assert_eq!(b.plan.arity(), 1);
    }
}
