//! SPJ-block decomposition.
//!
//! Rules U3a–U3c and C3a/C3b (Sections 5.3–5.4) are stated over queries
//! of the form `SELECT [DISTINCT] A FROM R WHERE P`: a set of relations,
//! a conjunctive predicate, and a projection. [`SpjBlock`] is that view
//! of a [`Plan`]: scans in flat column order, all selection/join
//! conjuncts lifted to the flat row, the projection, and a distinct flag.

use crate::expr::ScalarExpr;
use crate::normalize::normalize_conjuncts;
use crate::plan::Plan;
use fgac_types::{Ident, Schema};

/// A select-project-join block.
#[derive(Debug, Clone, PartialEq)]
pub struct SpjBlock {
    /// Scan instances, in flat column order.
    pub scans: Vec<(Ident, Schema)>,
    /// All conjuncts (selections + join predicates) over the flat row.
    pub conjuncts: Vec<ScalarExpr>,
    /// Projection over the flat row.
    pub projection: Vec<ScalarExpr>,
    /// Whether the block ends in duplicate elimination.
    pub distinct: bool,
}

impl SpjBlock {
    /// Total width of the flat row.
    pub fn flat_arity(&self) -> usize {
        self.scans.iter().map(|(_, s)| s.len()).sum()
    }

    /// Flat-offset range `[start, end)` of scan instance `idx`.
    pub fn scan_range(&self, idx: usize) -> (usize, usize) {
        let start: usize = self.scans[..idx].iter().map(|(_, s)| s.len()).sum();
        (start, start + self.scans[idx].1.len())
    }

    /// Which scan instance owns flat offset `col`.
    pub fn owner(&self, col: usize) -> usize {
        let mut acc = 0;
        for (i, (_, s)) in self.scans.iter().enumerate() {
            acc += s.len();
            if col < acc {
                return i;
            }
        }
        panic!("offset {col} out of range");
    }

    /// Rebuilds the equivalent plan: `[Distinct](Project(Select(J)))` with
    /// a left-deep cross-join and all conjuncts in one selection.
    pub fn to_plan(&self) -> Plan {
        let mut it = self.scans.iter();
        let (t0, s0) = it.next().expect("at least one scan");
        let mut plan = Plan::scan(t0.clone(), s0.clone());
        for (t, s) in it {
            plan = plan.join(Plan::scan(t.clone(), s.clone()), vec![]);
        }
        if !self.conjuncts.is_empty() {
            plan = plan.select(normalize_conjuncts(&self.conjuncts));
        }
        plan = plan.project(self.projection.clone());
        if self.distinct {
            plan = plan.distinct();
        }
        crate::normalize(&plan)
    }

    /// Decomposes a plan into an SPJ block if it has the right shape:
    /// `[Distinct]([Project]([Select](join tree of scans/selects)))`.
    /// Aggregates and nested projections make it non-SPJ (`None`).
    pub fn decompose(plan: &Plan) -> Option<SpjBlock> {
        let mut distinct = false;
        let mut cursor = plan;
        if let Plan::Distinct { input } = cursor {
            distinct = true;
            cursor = input;
        }
        let (projection_opt, below_project) = match cursor {
            Plan::Project { input, exprs } => (Some(exprs.clone()), &**input),
            other => (None, other),
        };
        let (top_conjuncts, tree) = match below_project {
            Plan::Select { input, conjuncts } => (conjuncts.clone(), &**input),
            other => (Vec::new(), other),
        };
        let mut scans = Vec::new();
        let mut conjuncts = Vec::new();
        flatten(tree, 0, &mut scans, &mut conjuncts)?;
        conjuncts.extend(top_conjuncts);
        let flat: usize = scans.iter().map(|(_, s): &(Ident, Schema)| s.len()).sum();
        let projection =
            projection_opt.unwrap_or_else(|| (0..flat).map(ScalarExpr::Col).collect());
        Some(SpjBlock {
            scans,
            conjuncts: normalize_conjuncts(&conjuncts),
            projection,
            distinct,
        })
    }
}

/// Flattens a join tree of scans/selects, shifting conjunct offsets to
/// the global flat row. Returns `None` on non-SPJ operators.
fn flatten(
    plan: &Plan,
    base: usize,
    scans: &mut Vec<(Ident, Schema)>,
    conjuncts: &mut Vec<ScalarExpr>,
) -> Option<usize> {
    match plan {
        Plan::Scan { table, schema } => {
            scans.push((table.clone(), schema.clone()));
            Some(schema.len())
        }
        Plan::Select {
            input,
            conjuncts: cs,
        } => {
            let width = flatten(input, base, scans, conjuncts)?;
            for c in cs {
                conjuncts.push(c.map_cols(&|i| i + base));
            }
            Some(width)
        }
        Plan::Join {
            left,
            right,
            conjuncts: cs,
        } => {
            let lw = flatten(left, base, scans, conjuncts)?;
            let rw = flatten(right, base + lw, scans, conjuncts)?;
            for c in cs {
                conjuncts.push(c.map_cols(&|i| i + base));
            }
            Some(lw + rw)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use fgac_types::{Column, DataType};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Column::new(*n, DataType::Str)).collect())
    }

    fn grades() -> Plan {
        Plan::scan("grades", schema(&["sid", "cid", "grade"]))
    }

    fn registered() -> Plan {
        Plan::scan("registered", schema(&["sid", "cid"]))
    }

    #[test]
    fn decomposes_co_student_grades_shape() {
        // π_{0,1,2}(σ_{reg.sid='11' ∧ g.cid=reg.cid}(G × R))
        let p = grades()
            .join(registered(), vec![])
            .select(vec![
                ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::lit("11")),
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4)),
            ])
            .project(vec![
                ScalarExpr::col(0),
                ScalarExpr::col(1),
                ScalarExpr::col(2),
            ]);
        let block = SpjBlock::decompose(&p).unwrap();
        assert_eq!(block.scans.len(), 2);
        assert_eq!(block.conjuncts.len(), 2);
        assert_eq!(block.projection.len(), 3);
        assert!(!block.distinct);
        assert_eq!(block.flat_arity(), 5);
        assert_eq!(block.scan_range(1), (3, 5));
        assert_eq!(block.owner(4), 1);
    }

    #[test]
    fn lifts_nested_selects_with_offsets() {
        // σ inside the right side of a join must shift by the left width.
        let p = grades().join(
            registered().select(vec![ScalarExpr::eq(
                ScalarExpr::col(0),
                ScalarExpr::lit("11"),
            )]),
            vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(4))],
        );
        let block = SpjBlock::decompose(&p).unwrap();
        // reg.sid is flat offset 3.
        assert!(block
            .conjuncts
            .contains(&ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::lit("11"))));
        // Implicit projection is identity over 5 columns.
        assert_eq!(block.projection.len(), 5);
    }

    #[test]
    fn aggregate_is_not_spj() {
        let p = grades().aggregate(
            vec![ScalarExpr::col(1)],
            vec![crate::AggExpr {
                func: crate::AggFunc::Count,
                arg: Some(ScalarExpr::col(2)),
                distinct: false,
            }],
        );
        assert!(SpjBlock::decompose(&p).is_none());
    }

    #[test]
    fn roundtrip_through_to_plan() {
        let p = grades()
            .select(vec![ScalarExpr::cmp(
                CmpOp::Gt,
                ScalarExpr::col(2),
                ScalarExpr::lit("50"),
            )])
            .project(vec![ScalarExpr::col(0)])
            .distinct();
        let block = SpjBlock::decompose(&crate::normalize(&p)).unwrap();
        let rebuilt = block.to_plan();
        assert_eq!(rebuilt, crate::normalize(&p));
    }

    #[test]
    fn distinct_flag_detected() {
        let p = grades().project(vec![ScalarExpr::col(0)]).distinct();
        let block = SpjBlock::decompose(&p).unwrap();
        assert!(block.distinct);
    }
}
