//! Bound scalar expressions.

use fgac_types::Value;

/// Comparison operators over values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl CmpOp {
    /// The comparison with operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }

    /// The negated comparison (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::NotEq,
            CmpOp::NotEq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::GtEq,
            CmpOp::LtEq => CmpOp::Gt,
            CmpOp::Gt => CmpOp::LtEq,
            CmpOp::GtEq => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on an ordering.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::NotEq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::LtEq => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::GtEq => ord != Less,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A bound scalar expression. Columns are referenced by *offset* into the
/// operator's input row (for joins, the concatenation left ++ right).
///
/// `$` session parameters never appear here — the binder substitutes
/// their values (Section 2: validity is always tested against
/// *instantiated* authorization views). `$$` access-pattern parameters
/// survive binding as [`ScalarExpr::AccessParam`], treated as opaque
/// constants by inference (Section 6: "our inference procedures can be
/// used by simply treating $$ parameters as constants").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarExpr {
    /// Input column by offset.
    Col(usize),
    /// Literal constant.
    Lit(Value),
    /// Access-pattern parameter (`$$k`), an opaque constant.
    AccessParam(String),
    /// Comparison between two scalars (SQL three-valued logic).
    Cmp {
        op: CmpOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    /// Conjunction (n-ary, flattened and sorted by `normalize`).
    And(Vec<ScalarExpr>),
    /// Disjunction (n-ary, flattened and sorted by `normalize`).
    Or(Vec<ScalarExpr>),
    Not(Box<ScalarExpr>),
    IsNull {
        expr: Box<ScalarExpr>,
        negated: bool,
    },
    /// Arithmetic.
    Arith {
        op: ArithOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    Neg(Box<ScalarExpr>),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ScalarExpr {
    pub fn col(i: usize) -> ScalarExpr {
        ScalarExpr::Col(i)
    }

    pub fn lit(v: impl Into<Value>) -> ScalarExpr {
        ScalarExpr::Lit(v.into())
    }

    pub fn cmp(op: CmpOp, left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(CmpOp::Eq, left, right)
    }

    /// Visits all nodes pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            ScalarExpr::And(es) | ScalarExpr::Or(es) => {
                for e in es {
                    e.walk(f);
                }
            }
            ScalarExpr::Not(e) | ScalarExpr::IsNull { expr: e, .. } | ScalarExpr::Neg(e) => {
                e.walk(f)
            }
            _ => {}
        }
    }

    /// The set of input offsets this expression reads.
    pub fn referenced_cols(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.walk(&mut |e| {
            if let ScalarExpr::Col(i) = e {
                cols.push(*i);
            }
        });
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Rewrites every column offset through `f`.
    pub fn map_cols(&self, f: &impl Fn(usize) -> usize) -> ScalarExpr {
        self.transform(&|e| match e {
            ScalarExpr::Col(i) => Some(ScalarExpr::Col(f(*i))),
            _ => None,
        })
    }

    /// Structure-preserving rewrite: `f` returns `Some(replacement)` to
    /// substitute a node (children of replaced nodes are not revisited).
    pub fn transform(&self, f: &impl Fn(&ScalarExpr) -> Option<ScalarExpr>) -> ScalarExpr {
        if let Some(replaced) = f(self) {
            return replaced;
        }
        match self {
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            ScalarExpr::And(es) => ScalarExpr::And(es.iter().map(|e| e.transform(f)).collect()),
            ScalarExpr::Or(es) => ScalarExpr::Or(es.iter().map(|e| e.transform(f)).collect()),
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.transform(f))),
            ScalarExpr::Neg(e) => ScalarExpr::Neg(Box::new(e.transform(f))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
            other => other.clone(),
        }
    }

    /// True if this is a constant (no column references).
    pub fn is_constant(&self) -> bool {
        self.referenced_cols().is_empty() && !self.has_access_params()
    }

    /// True if any `$$` access-pattern parameter appears.
    pub fn has_access_params(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, ScalarExpr::AccessParam(_)) {
                found = true;
            }
        });
        found
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl std::fmt::Display for AggFunc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AggFunc::CountStar => "count(*)",
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// One aggregate in an `Aggregate` operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggExpr {
    pub func: AggFunc,
    /// Argument expression; `None` only for `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    pub distinct: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_algebra() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::GtEq);
        assert!(CmpOp::LtEq.test(std::cmp::Ordering::Equal));
        assert!(!CmpOp::Lt.test(std::cmp::Ordering::Equal));
    }

    #[test]
    fn referenced_cols_dedups() {
        let e = ScalarExpr::And(vec![
            ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(1)),
            ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(5)),
        ]);
        assert_eq!(e.referenced_cols(), vec![1, 3]);
    }

    #[test]
    fn map_cols_rewrites() {
        let e = ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::col(2));
        let shifted = e.map_cols(&|i| i + 10);
        assert_eq!(shifted.referenced_cols(), vec![10, 12]);
    }

    #[test]
    fn constant_detection() {
        assert!(ScalarExpr::lit(1).is_constant());
        assert!(!ScalarExpr::col(0).is_constant());
        assert!(!ScalarExpr::AccessParam("1".into()).is_constant());
    }
}
