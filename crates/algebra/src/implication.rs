//! A sound implication prover for conjunctive comparison predicates.
//!
//! `implies(P, Q)` returns `true` only if every row on which all of `P`'s
//! conjuncts evaluate to SQL-TRUE also makes all of `Q`'s conjuncts TRUE.
//! It is deliberately incomplete (implication is expensive in general);
//! "false" means *cannot prove*, which the callers (subsumption
//! derivations, U3/C3 constraint matching) treat as "do not fire" — this
//! mirrors the paper's sound-but-incomplete stance (Section 5.5).
//!
//! The fact language understood:
//! * `col = col` equivalences (union-find);
//! * `col op constant` interval bounds, including `$$` access-pattern
//!   parameters as opaque symbolic constants (Section 6);
//! * `col <> constant` exclusions;
//! * `col IS [NOT] NULL`;
//! * `col op col` inequalities derived through constant bounds;
//! * arbitrary conjuncts proved by syntactic identity after
//!   normalization (so e.g. a complex `OR` implies itself).
//!
//! Truth of a comparison implies both operands are non-NULL, which the
//! prover uses to derive `IS NOT NULL` facts.

use crate::expr::{CmpOp, ScalarExpr};
use crate::normalize::normalize_expr;
use fgac_types::{BudgetMeter, Result, Value};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};

/// Phase label the prover charges its budget under.
const PHASE: &str = "implication prover";

/// A constant: a literal value or an opaque access-pattern symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Const {
    Val(Value),
    Sym(String),
}

impl Const {
    fn cmp_vals(&self, other: &Const) -> Option<Ordering> {
        match (self, other) {
            (Const::Val(a), Const::Val(b)) => a.sql_cmp(b),
            (Const::Sym(a), Const::Sym(b)) if a == b => Some(Ordering::Equal),
            _ => None,
        }
    }
}

/// One end of an interval.
#[derive(Debug, Clone)]
struct Bound {
    value: Const,
    inclusive: bool,
}

/// Facts known about one column equivalence class.
#[derive(Debug, Clone, Default)]
struct ClassFacts {
    lower: Option<Bound>,
    upper: Option<Bound>,
    not_equal: BTreeSet<Const>,
    is_null: bool,
    not_null: bool,
}

/// Extracted knowledge from a conjunction.
struct Facts {
    parent: Vec<usize>,
    class: BTreeMap<usize, ClassFacts>,
    /// Conjuncts not understood structurally, kept for syntactic matching.
    opaque: BTreeSet<ScalarExpr>,
    /// The conjunction can never be TRUE (everything is implied).
    unsat: bool,
}

impl Facts {
    fn find(&mut self, mut c: usize) -> usize {
        while self.parent[c] != c {
            self.parent[c] = self.parent[self.parent[c]];
            c = self.parent[c];
        }
        c
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        // Merge facts of rb into ra.
        let fb = self.class.remove(&rb).unwrap_or_default();
        self.parent[rb] = ra;
        let fa = self.class.entry(ra).or_default();
        let mut merged = fa.clone();
        merge_lower(&mut merged, fb.lower);
        merge_upper(&mut merged, fb.upper);
        merged.not_equal.extend(fb.not_equal);
        merged.is_null |= fb.is_null;
        merged.not_null |= fb.not_null;
        *fa = merged;
    }

    fn facts_mut(&mut self, col: usize) -> &mut ClassFacts {
        let r = self.find(col);
        self.class.entry(r).or_default()
    }

    fn facts(&mut self, col: usize) -> ClassFacts {
        let r = self.find(col);
        self.class.get(&r).cloned().unwrap_or_default()
    }

    /// The single constant the class is pinned to, if its interval is a
    /// point.
    fn pinned(&mut self, col: usize) -> Option<Const> {
        let f = self.facts(col);
        let (l, u) = (f.lower?, f.upper?);
        if l.inclusive && u.inclusive && l.value.cmp_vals(&u.value) == Some(Ordering::Equal) {
            Some(l.value)
        } else {
            None
        }
    }
}

fn merge_lower(f: &mut ClassFacts, new: Option<Bound>) {
    if let Some(nb) = new {
        f.lower = match f.lower.take() {
            None => Some(nb),
            Some(old) => match nb.value.cmp_vals(&old.value) {
                Some(Ordering::Greater) => Some(nb),
                Some(Ordering::Equal) if !nb.inclusive => Some(nb),
                Some(_) => Some(old),
                // Incomparable (e.g. symbol vs value): keep the old bound;
                // dropping the new one is sound (we just know less).
                None => Some(old),
            },
        };
    }
}

fn merge_upper(f: &mut ClassFacts, new: Option<Bound>) {
    if let Some(nb) = new {
        f.upper = match f.upper.take() {
            None => Some(nb),
            Some(old) => match nb.value.cmp_vals(&old.value) {
                Some(Ordering::Less) => Some(nb),
                Some(Ordering::Equal) if !nb.inclusive => Some(nb),
                Some(_) => Some(old),
                None => Some(old),
            },
        };
    }
}

fn as_const(e: &ScalarExpr) -> Option<Const> {
    match e {
        ScalarExpr::Lit(v) if !v.is_null() => Some(Const::Val(v.clone())),
        ScalarExpr::AccessParam(p) => Some(Const::Sym(p.clone())),
        _ => None,
    }
}

/// Builds the fact base from a conjunction. `arity` bounds column
/// offsets. Charges the meter one step per conjunct absorbed.
fn extract(conjuncts: &[ScalarExpr], arity: usize, meter: &BudgetMeter) -> Result<Facts> {
    let mut facts = Facts {
        parent: (0..arity).collect(),
        class: BTreeMap::new(),
        opaque: BTreeSet::new(),
        unsat: false,
    };
    for c in conjuncts {
        meter.charge(PHASE, 1)?;
        let c = normalize_expr(c);
        if c == ScalarExpr::Lit(Value::Bool(false)) {
            facts.unsat = true;
        }
        absorb(&mut facts, &c);
    }
    // Detect contradictions.
    let classes: Vec<usize> = facts.class.keys().copied().collect();
    for r in classes {
        let f = facts.class[&r].clone();
        if f.is_null && (f.not_null || f.lower.is_some() || f.upper.is_some()) {
            facts.unsat = true;
        }
        if let (Some(l), Some(u)) = (&f.lower, &f.upper) {
            match l.value.cmp_vals(&u.value) {
                Some(Ordering::Greater) => facts.unsat = true,
                Some(Ordering::Equal) if !(l.inclusive && u.inclusive) => facts.unsat = true,
                _ => {}
            }
            // Point interval excluded by a disequality.
            if l.inclusive
                && u.inclusive
                && l.value.cmp_vals(&u.value) == Some(Ordering::Equal)
                && f.not_equal.contains(&l.value)
            {
                facts.unsat = true;
            }
        }
    }
    Ok(facts)
}

fn absorb(facts: &mut Facts, c: &ScalarExpr) {
    match c {
        ScalarExpr::Cmp { op, left, right } => {
            match (&**left, &**right) {
                (ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                    match op {
                        CmpOp::Eq => {
                            facts.union(*a, *b);
                            facts.facts_mut(*a).not_null = true;
                        }
                        _ => {
                            // Truth implies non-null on both sides.
                            facts.facts_mut(*a).not_null = true;
                            facts.facts_mut(*b).not_null = true;
                            facts.opaque.insert(c.clone());
                        }
                    }
                }
                (ScalarExpr::Col(a), rhs) => {
                    if let Some(k) = as_const(rhs) {
                        let f = facts.facts_mut(*a);
                        f.not_null = true;
                        match op {
                            CmpOp::Eq => {
                                merge_lower(
                                    f,
                                    Some(Bound {
                                        value: k.clone(),
                                        inclusive: true,
                                    }),
                                );
                                merge_upper(
                                    f,
                                    Some(Bound {
                                        value: k,
                                        inclusive: true,
                                    }),
                                );
                            }
                            CmpOp::NotEq => {
                                f.not_equal.insert(k);
                            }
                            CmpOp::Lt => merge_upper(
                                f,
                                Some(Bound {
                                    value: k,
                                    inclusive: false,
                                }),
                            ),
                            CmpOp::LtEq => merge_upper(
                                f,
                                Some(Bound {
                                    value: k,
                                    inclusive: true,
                                }),
                            ),
                            CmpOp::Gt => merge_lower(
                                f,
                                Some(Bound {
                                    value: k,
                                    inclusive: false,
                                }),
                            ),
                            CmpOp::GtEq => merge_lower(
                                f,
                                Some(Bound {
                                    value: k,
                                    inclusive: true,
                                }),
                            ),
                        }
                    } else {
                        facts.opaque.insert(c.clone());
                    }
                }
                _ => {
                    facts.opaque.insert(c.clone());
                }
            }
        }
        ScalarExpr::IsNull { expr, negated } => {
            if let ScalarExpr::Col(a) = &**expr {
                let f = facts.facts_mut(*a);
                if *negated {
                    f.not_null = true;
                } else {
                    f.is_null = true;
                }
            } else {
                facts.opaque.insert(c.clone());
            }
        }
        other => {
            facts.opaque.insert(other.clone());
        }
    }
}

/// Proves `∧p ⟹ ∧q` for predicates over the same input row (offsets in
/// `0..arity`). Sound; incomplete.
pub fn implies(p: &[ScalarExpr], q: &[ScalarExpr], arity: usize) -> bool {
    // An unlimited meter never trips, so "cannot prove" is the only
    // possible failure mode here.
    implies_metered(p, q, arity, &BudgetMeter::unlimited()).unwrap_or(false)
}

/// [`implies`] under a resource budget: charges the meter one step per
/// conjunct absorbed or proof attempted and propagates
/// [`fgac_types::Error::ResourceExhausted`] instead of finishing.
/// Callers must treat the error as *cannot prove* (fail closed), never
/// as an affirmative answer.
pub fn implies_metered(
    p: &[ScalarExpr],
    q: &[ScalarExpr],
    arity: usize,
    meter: &BudgetMeter,
) -> Result<bool> {
    let mut facts = extract(p, arity, meter)?;
    if facts.unsat {
        return Ok(true);
    }
    for c in q {
        if !proves(&mut facts, &normalize_expr(c), meter)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn proves(facts: &mut Facts, c: &ScalarExpr, meter: &BudgetMeter) -> Result<bool> {
    meter.charge(PHASE, 1)?;
    if c == &ScalarExpr::Lit(Value::Bool(true)) {
        return Ok(true);
    }
    if facts.opaque.contains(c) {
        return Ok(true);
    }
    let proved = match c {
        ScalarExpr::Or(disjuncts) => {
            let mut any = false;
            for d in disjuncts {
                if proves(facts, d, meter)? {
                    any = true;
                    break;
                }
            }
            any
        }
        ScalarExpr::And(cs) => {
            let mut all = true;
            for d in cs {
                if !proves(facts, d, meter)? {
                    all = false;
                    break;
                }
            }
            all
        }
        ScalarExpr::IsNull { expr, negated } => {
            if let ScalarExpr::Col(a) = &**expr {
                let f = facts.facts(*a);
                if *negated {
                    f.not_null || f.lower.is_some() || f.upper.is_some()
                } else {
                    f.is_null
                }
            } else {
                false
            }
        }
        ScalarExpr::Cmp { op, left, right } => match (&**left, &**right) {
            (ScalarExpr::Col(a), ScalarExpr::Col(b)) => {
                prove_col_col(facts, *op, *a, *b)
            }
            (ScalarExpr::Col(a), rhs) => match as_const(rhs) {
                Some(k) => prove_col_const(facts, *op, *a, &k),
                None => false,
            },
            _ => false,
        },
        _ => false,
    };
    Ok(proved)
}

fn prove_col_col(facts: &mut Facts, op: CmpOp, a: usize, b: usize) -> bool {
    if facts.find(a) == facts.find(b) {
        // Same equivalence class — but SQL's `c = c` is UNKNOWN (not
        // TRUE) on NULL, so we additionally need non-null evidence.
        let f = facts.facts(a);
        let known_not_null = f.not_null || f.lower.is_some() || f.upper.is_some();
        return known_not_null && matches!(op, CmpOp::Eq | CmpOp::LtEq | CmpOp::GtEq);
    }
    // Same syntactic inequality already known?
    let syntactic = ScalarExpr::Cmp {
        op,
        left: Box::new(ScalarExpr::Col(a)),
        right: Box::new(ScalarExpr::Col(b)),
    };
    if facts.opaque.contains(&normalize_expr(&syntactic)) {
        return true;
    }
    // Derive through constants: pinned equality, or disjoint intervals.
    if op == CmpOp::Eq {
        if let (Some(ka), Some(kb)) = (facts.pinned(a), facts.pinned(b)) {
            return ka.cmp_vals(&kb) == Some(Ordering::Equal);
        }
        return false;
    }
    let fa = facts.facts(a);
    let fb = facts.facts(b);
    match op {
        CmpOp::Lt | CmpOp::LtEq => interval_lt(&fa, &fb, op == CmpOp::Lt),
        CmpOp::Gt | CmpOp::GtEq => interval_lt(&fb, &fa, op == CmpOp::Gt),
        CmpOp::NotEq => {
            // Disjoint intervals prove disequality.
            interval_lt(&fa, &fb, true) || interval_lt(&fb, &fa, true) || {
                match (facts.pinned(a), facts.pinned(b)) {
                    (Some(ka), Some(kb)) => matches!(
                        ka.cmp_vals(&kb),
                        Some(Ordering::Less) | Some(Ordering::Greater)
                    ),
                    _ => false,
                }
            }
        }
        // Eq returned above; if control ever reaches here, "not proven"
        // is the sound (fail-closed) answer.
        CmpOp::Eq => false,
    }
}

/// Proves `a < b` (strict) or `a <= b` from interval facts: needs
/// `upper(a)` and `lower(b)` with `upper(a) (<|<=) lower(b)`.
fn interval_lt(fa: &ClassFacts, fb: &ClassFacts, strict: bool) -> bool {
    let (Some(ua), Some(lb)) = (&fa.upper, &fb.lower) else {
        return false;
    };
    match ua.value.cmp_vals(&lb.value) {
        Some(Ordering::Less) => true,
        Some(Ordering::Equal) => {
            if strict {
                // a <= k and b >= k proves a < b only if one side is
                // strict.
                !(ua.inclusive && lb.inclusive)
            } else {
                true
            }
        }
        _ => false,
    }
}

fn prove_col_const(facts: &mut Facts, op: CmpOp, a: usize, k: &Const) -> bool {
    let f = facts.facts(a);
    match op {
        CmpOp::Eq => {
            matches!(facts.pinned(a), Some(p) if p.cmp_vals(k) == Some(Ordering::Equal))
        }
        CmpOp::NotEq => {
            if f.not_equal.contains(k) {
                return true;
            }
            // Outside the interval?
            let above = f
                .lower
                .as_ref()
                .and_then(|l| l.value.cmp_vals(k).map(|o| (o, l.inclusive)))
                .is_some_and(|(o, inc)| o == Ordering::Greater || (o == Ordering::Equal && !inc));
            let below = f
                .upper
                .as_ref()
                .and_then(|u| u.value.cmp_vals(k).map(|o| (o, u.inclusive)))
                .is_some_and(|(o, inc)| o == Ordering::Less || (o == Ordering::Equal && !inc));
            above || below
        }
        CmpOp::Lt => f
            .upper
            .as_ref()
            .and_then(|u| u.value.cmp_vals(k).map(|o| (o, u.inclusive)))
            .is_some_and(|(o, inc)| o == Ordering::Less || (o == Ordering::Equal && !inc)),
        CmpOp::LtEq => f
            .upper
            .as_ref()
            .and_then(|u| u.value.cmp_vals(k))
            .is_some_and(|o| o != Ordering::Greater),
        CmpOp::Gt => f
            .lower
            .as_ref()
            .and_then(|l| l.value.cmp_vals(k).map(|o| (o, l.inclusive)))
            .is_some_and(|(o, inc)| o == Ordering::Greater || (o == Ordering::Equal && !inc)),
        CmpOp::GtEq => f
            .lower
            .as_ref()
            .and_then(|l| l.value.cmp_vals(k))
            .is_some_and(|o| o != Ordering::Less),
    }
}

/// Convenience: do the two conjunct lists denote *equivalent* predicates
/// (mutual implication)?
pub fn equivalent(p: &[ScalarExpr], q: &[ScalarExpr], arity: usize) -> bool {
    implies(p, q, arity) && implies(q, p, arity)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: usize) -> ScalarExpr {
        ScalarExpr::col(i)
    }
    fn l(v: i64) -> ScalarExpr {
        ScalarExpr::lit(v)
    }
    fn cmp(op: CmpOp, a: ScalarExpr, b: ScalarExpr) -> ScalarExpr {
        ScalarExpr::cmp(op, a, b)
    }

    #[test]
    fn reflexive() {
        let p = vec![cmp(CmpOp::Eq, c(0), l(5))];
        assert!(implies(&p, &p, 4));
    }

    #[test]
    fn eq_implies_range() {
        let p = vec![cmp(CmpOp::Eq, c(0), l(5))];
        assert!(implies(&p, &[cmp(CmpOp::LtEq, c(0), l(5))], 4));
        assert!(implies(&p, &[cmp(CmpOp::Lt, c(0), l(6))], 4));
        assert!(implies(&p, &[cmp(CmpOp::Gt, c(0), l(4))], 4));
        assert!(implies(&p, &[cmp(CmpOp::NotEq, c(0), l(7))], 4));
        assert!(!implies(&p, &[cmp(CmpOp::Lt, c(0), l(5))], 4));
        assert!(!implies(&p, &[cmp(CmpOp::Eq, c(0), l(6))], 4));
    }

    #[test]
    fn range_narrowing() {
        // 2 < x <= 8 implies 0 < x <= 10
        let p = vec![cmp(CmpOp::Gt, c(0), l(2)), cmp(CmpOp::LtEq, c(0), l(8))];
        let q = vec![cmp(CmpOp::Gt, c(0), l(0)), cmp(CmpOp::LtEq, c(0), l(10))];
        assert!(implies(&p, &q, 1));
        assert!(!implies(&q, &p, 1));
    }

    #[test]
    fn transitivity_through_equality() {
        // c0 = c1 and c1 = 5 implies c0 = 5.
        let p = vec![cmp(CmpOp::Eq, c(0), c(1)), cmp(CmpOp::Eq, c(1), l(5))];
        assert!(implies(&p, &[cmp(CmpOp::Eq, c(0), l(5))], 2));
        assert!(implies(&p, &[cmp(CmpOp::Eq, c(0), c(1))], 2));
        // and c0 <= c1 holds under equality.
        assert!(implies(&p, &[cmp(CmpOp::LtEq, c(0), c(1))], 2));
        assert!(!implies(&p, &[cmp(CmpOp::Lt, c(0), c(1))], 2));
    }

    #[test]
    fn col_col_through_disjoint_intervals() {
        // c0 <= 3 and c1 >= 7 implies c0 < c1 and c0 <> c1.
        let p = vec![cmp(CmpOp::LtEq, c(0), l(3)), cmp(CmpOp::GtEq, c(1), l(7))];
        assert!(implies(&p, &[cmp(CmpOp::Lt, c(0), c(1))], 2));
        assert!(implies(&p, &[cmp(CmpOp::NotEq, c(0), c(1))], 2));
        assert!(!implies(&p, &[cmp(CmpOp::Gt, c(0), c(1))], 2));
    }

    #[test]
    fn boundary_touching_intervals() {
        // c0 <= 5 and c1 >= 5: proves c0 <= c1 but NOT c0 < c1.
        let p = vec![cmp(CmpOp::LtEq, c(0), l(5)), cmp(CmpOp::GtEq, c(1), l(5))];
        assert!(implies(&p, &[cmp(CmpOp::LtEq, c(0), c(1))], 2));
        assert!(!implies(&p, &[cmp(CmpOp::Lt, c(0), c(1))], 2));
        // With one strict side it becomes provable.
        let p = vec![cmp(CmpOp::Lt, c(0), l(5)), cmp(CmpOp::GtEq, c(1), l(5))];
        assert!(implies(&p, &[cmp(CmpOp::Lt, c(0), c(1))], 2));
    }

    #[test]
    fn unsat_implies_everything() {
        let p = vec![cmp(CmpOp::Lt, c(0), l(1)), cmp(CmpOp::Gt, c(0), l(2))];
        assert!(implies(&p, &[cmp(CmpOp::Eq, c(1), l(42))], 2));
        let p = vec![cmp(CmpOp::Eq, c(0), l(5)), cmp(CmpOp::NotEq, c(0), l(5))];
        assert!(implies(&p, &[ScalarExpr::lit(false)], 1));
    }

    #[test]
    fn truth_implies_not_null() {
        let p = vec![cmp(CmpOp::Eq, c(0), l(5))];
        assert!(implies(
            &p,
            &[ScalarExpr::IsNull {
                expr: Box::new(c(0)),
                negated: true
            }],
            1
        ));
        // But nothing follows about another column.
        assert!(!implies(
            &p,
            &[ScalarExpr::IsNull {
                expr: Box::new(c(1)),
                negated: true
            }],
            2
        ));
    }

    #[test]
    fn is_null_contradicts_comparison() {
        let p = vec![
            ScalarExpr::IsNull {
                expr: Box::new(c(0)),
                negated: false,
            },
            cmp(CmpOp::Eq, c(0), l(5)),
        ];
        // Unsatisfiable: anything follows.
        assert!(implies(&p, &[cmp(CmpOp::Eq, c(1), l(9))], 2));
    }

    #[test]
    fn opaque_conjuncts_match_syntactically() {
        let weird = ScalarExpr::Or(vec![
            cmp(CmpOp::Eq, c(0), l(1)),
            cmp(CmpOp::Eq, c(1), l(2)),
        ]);
        assert!(implies(
            std::slice::from_ref(&weird),
            std::slice::from_ref(&weird),
            2
        ));
        // An OR is also proved if one disjunct is proved.
        let p = vec![cmp(CmpOp::Eq, c(0), l(1))];
        assert!(implies(&p, &[weird], 2));
    }

    #[test]
    fn access_params_are_opaque_constants() {
        let k = ScalarExpr::AccessParam("1".into());
        let p = vec![ScalarExpr::eq(c(0), k.clone())];
        assert!(implies(&p, &[ScalarExpr::eq(c(0), k.clone())], 1));
        // Different symbol: not provable.
        let q = vec![ScalarExpr::eq(c(0), ScalarExpr::AccessParam("2".into()))];
        assert!(!implies(&p, &q, 1));
        // Symbol vs literal: not provable.
        assert!(!implies(&p, &[cmp(CmpOp::Eq, c(0), l(5))], 1));
    }

    #[test]
    fn str_values_compare() {
        let p = vec![cmp(CmpOp::Eq, c(0), ScalarExpr::lit("cs101"))];
        assert!(implies(&p, &[cmp(CmpOp::NotEq, c(0), ScalarExpr::lit("cs102"))], 1));
        assert!(implies(&p, &[cmp(CmpOp::GtEq, c(0), ScalarExpr::lit("cs100"))], 1));
    }

    #[test]
    fn not_eq_exclusion() {
        let p = vec![cmp(CmpOp::NotEq, c(0), l(5))];
        assert!(implies(&p, &[cmp(CmpOp::NotEq, c(0), l(5))], 1));
        assert!(!implies(&p, &[cmp(CmpOp::NotEq, c(0), l(6))], 1));
        // Interval excludes value.
        let p = vec![cmp(CmpOp::Lt, c(0), l(5))];
        assert!(implies(&p, &[cmp(CmpOp::NotEq, c(0), l(9))], 1));
    }

    #[test]
    fn equivalence_check() {
        let p = vec![cmp(CmpOp::GtEq, c(0), l(5)), cmp(CmpOp::LtEq, c(0), l(5))];
        let q = vec![cmp(CmpOp::Eq, c(0), l(5))];
        assert!(equivalent(&p, &q, 1));
        assert!(!equivalent(&p, &[cmp(CmpOp::GtEq, c(0), l(5))], 1));
    }

    #[test]
    fn cross_type_numeric_bounds() {
        let p = vec![cmp(CmpOp::Eq, c(0), ScalarExpr::lit(2.5))];
        assert!(implies(&p, &[cmp(CmpOp::Gt, c(0), l(2))], 1));
        assert!(implies(&p, &[cmp(CmpOp::Lt, c(0), l(3))], 1));
    }
}
