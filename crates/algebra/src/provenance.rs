//! Column provenance: mapping plan output columns back to base-table
//! columns.
//!
//! Rules U3a–U3c and C3a/C3b (Sections 5.3–5.4) partition a query's
//! relations into *core* and *remainder* and reason about which output
//! attributes come from which side; that requires knowing, for every
//! output offset, which scan instance and base column produced it.

use crate::plan::Plan;
use fgac_types::Ident;

/// The origin of one output column: the `instance`-th scan (numbered in
/// left-to-right scan order) of `table`, column `column`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColOrigin {
    pub table: Ident,
    pub instance: usize,
    pub column: Ident,
}

/// Computes per-output-column provenance. `None` marks computed columns
/// (literals, arithmetic, aggregates) with no single base-column origin.
pub fn provenance(plan: &Plan) -> Vec<Option<ColOrigin>> {
    let mut next_instance = 0;
    walk(plan, &mut next_instance)
}

fn walk(plan: &Plan, next_instance: &mut usize) -> Vec<Option<ColOrigin>> {
    match plan {
        Plan::Scan { table, schema } => {
            let instance = *next_instance;
            *next_instance += 1;
            schema
                .columns()
                .iter()
                .map(|c| {
                    Some(ColOrigin {
                        table: table.clone(),
                        instance,
                        column: c.name.clone(),
                    })
                })
                .collect()
        }
        Plan::Select { input, .. } | Plan::Distinct { input } => walk(input, next_instance),
        Plan::Project { input, exprs } => {
            let inner = walk(input, next_instance);
            exprs
                .iter()
                .map(|e| match e {
                    crate::ScalarExpr::Col(i) => inner.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect()
        }
        Plan::Join { left, right, .. } => {
            let mut cols = walk(left, next_instance);
            cols.extend(walk(right, next_instance));
            cols
        }
        Plan::Aggregate {
            input, group_by, aggs, ..
        } => {
            let inner = walk(input, next_instance);
            let mut cols: Vec<Option<ColOrigin>> = group_by
                .iter()
                .map(|e| match e {
                    crate::ScalarExpr::Col(i) => inner.get(*i).cloned().flatten(),
                    _ => None,
                })
                .collect();
            cols.extend(std::iter::repeat_n(None, aggs.len()));
            cols
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggExpr, AggFunc, ScalarExpr};
    use fgac_types::{Column, DataType, Schema};

    fn schema(names: &[&str]) -> Schema {
        Schema::new(names.iter().map(|n| Column::new(*n, DataType::Str)).collect())
    }

    #[test]
    fn join_numbers_instances_left_to_right() {
        let a = Plan::scan("t", schema(&["x"]));
        let b = Plan::scan("t", schema(&["x"]));
        let j = a.join(b, vec![]);
        let p = provenance(&j);
        assert_eq!(p[0].as_ref().unwrap().instance, 0);
        assert_eq!(p[1].as_ref().unwrap().instance, 1);
        assert_eq!(p[0].as_ref().unwrap().table, Ident::new("t"));
    }

    #[test]
    fn project_traces_simple_cols_only() {
        let s = Plan::scan("g", schema(&["a", "b"]));
        let p = s.project(vec![
            ScalarExpr::col(1),
            ScalarExpr::lit(1),
        ]);
        let prov = provenance(&p);
        assert_eq!(prov[0].as_ref().unwrap().column, Ident::new("b"));
        assert!(prov[1].is_none());
    }

    #[test]
    fn aggregate_outputs() {
        let s = Plan::scan("g", schema(&["a", "b"]));
        let agg = s.aggregate(
            vec![ScalarExpr::col(0)],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::col(1)),
                distinct: false,
            }],
        );
        let prov = provenance(&agg);
        assert_eq!(prov[0].as_ref().unwrap().column, Ident::new("a"));
        assert!(prov[1].is_none());
    }
}
