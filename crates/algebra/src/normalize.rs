//! Canonicalization of expressions and plans.
//!
//! The AND-OR DAG unifies plans by structural identity (Section 5.6.1's
//! unification of common subexpressions), so syntactic variants must
//! normalize to the same shape first:
//!
//! * `AND`/`OR` are flattened, sorted, and deduplicated;
//! * comparisons are oriented canonically (lower column offset on the
//!   left; literals on the right);
//! * comparisons between literals are folded;
//! * stacked σ merge, empty σ disappear, identity π disappear, δ∘δ = δ.

use crate::expr::ScalarExpr;
use crate::plan::Plan;
use fgac_types::Value;

/// Normalizes a plan bottom-up.
pub fn normalize(plan: &Plan) -> Plan {
    match plan {
        Plan::Scan { .. } => plan.clone(),
        Plan::Select { input, conjuncts } => {
            let input = normalize(input);
            let conjuncts = normalize_conjuncts(conjuncts);
            if conjuncts.is_empty() {
                return input;
            }
            // Merge with a child Select.
            if let Plan::Select {
                input: inner,
                conjuncts: inner_conj,
            } = input
            {
                let mut all = inner_conj;
                all.extend(conjuncts);
                return Plan::Select {
                    input: inner,
                    conjuncts: normalize_conjuncts(&all),
                };
            }
            Plan::Select {
                input: Box::new(input),
                conjuncts,
            }
        }
        Plan::Project { input, exprs } => {
            let input = normalize(input);
            let exprs: Vec<ScalarExpr> = exprs.iter().map(normalize_expr).collect();
            if is_identity_projection(&exprs, input.arity()) {
                return input;
            }
            // Collapse Project over Project by inlining.
            if let Plan::Project {
                input: inner,
                exprs: inner_exprs,
            } = &input
            {
                let composed: Vec<ScalarExpr> = exprs
                    .iter()
                    .map(|e| substitute_cols(e, inner_exprs))
                    .collect();
                return normalize(&Plan::Project {
                    input: inner.clone(),
                    exprs: composed,
                });
            }
            Plan::Project {
                input: Box::new(input),
                exprs,
            }
        }
        Plan::Distinct { input } => {
            let input = normalize(input);
            if matches!(input, Plan::Distinct { .. }) {
                return input;
            }
            Plan::Distinct {
                input: Box::new(input),
            }
        }
        Plan::Join {
            left,
            right,
            conjuncts,
        } => Plan::Join {
            left: Box::new(normalize(left)),
            right: Box::new(normalize(right)),
            conjuncts: normalize_conjuncts(conjuncts),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(normalize(input)),
            group_by: group_by.iter().map(normalize_expr).collect(),
            aggs: aggs
                .iter()
                .map(|a| crate::AggExpr {
                    func: a.func,
                    arg: a.arg.as_ref().map(normalize_expr),
                    distinct: a.distinct,
                })
                .collect(),
        },
    }
}

/// True if `exprs` is exactly `Col(0), Col(1), ..., Col(arity-1)`.
pub fn is_identity_projection(exprs: &[ScalarExpr], arity: usize) -> bool {
    exprs.len() == arity
        && exprs
            .iter()
            .enumerate()
            .all(|(i, e)| matches!(e, ScalarExpr::Col(j) if *j == i))
}

/// Rewrites `e`'s column references through a projection list: `Col(i)`
/// becomes `projection[i]`.
pub fn substitute_cols(e: &ScalarExpr, projection: &[ScalarExpr]) -> ScalarExpr {
    e.transform(&|node| match node {
        ScalarExpr::Col(i) => Some(projection[*i].clone()),
        _ => None,
    })
}

/// Normalizes a conjunct list: normalize each member, flatten `AND`s,
/// drop `TRUE`, sort and deduplicate.
pub fn normalize_conjuncts(conjuncts: &[ScalarExpr]) -> Vec<ScalarExpr> {
    let mut flat = Vec::new();
    for c in conjuncts {
        flatten_and(&normalize_expr(c), &mut flat);
    }
    flat.retain(|c| c != &ScalarExpr::Lit(Value::Bool(true)));
    flat.sort();
    flat.dedup();
    flat
}

fn flatten_and(e: &ScalarExpr, out: &mut Vec<ScalarExpr>) {
    match e {
        ScalarExpr::And(es) => {
            for x in es {
                flatten_and(x, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Normalizes one expression.
pub fn normalize_expr(e: &ScalarExpr) -> ScalarExpr {
    match e {
        ScalarExpr::And(es) => {
            let mut flat = Vec::new();
            for x in es {
                flatten_and(&normalize_expr(x), &mut flat);
            }
            flat.retain(|c| c != &ScalarExpr::Lit(Value::Bool(true)));
            flat.sort();
            flat.dedup();
            if flat.iter().any(|c| c == &ScalarExpr::Lit(Value::Bool(false))) {
                return ScalarExpr::Lit(Value::Bool(false));
            }
            match flat.len() {
                0 => ScalarExpr::Lit(Value::Bool(true)),
                1 => flat.pop().expect("len checked"),
                _ => ScalarExpr::And(flat),
            }
        }
        ScalarExpr::Or(es) => {
            let mut flat = Vec::new();
            for x in es {
                let n = normalize_expr(x);
                if let ScalarExpr::Or(inner) = n {
                    flat.extend(inner);
                } else {
                    flat.push(n);
                }
            }
            flat.retain(|c| c != &ScalarExpr::Lit(Value::Bool(false)));
            flat.sort();
            flat.dedup();
            if flat.iter().any(|c| c == &ScalarExpr::Lit(Value::Bool(true))) {
                return ScalarExpr::Lit(Value::Bool(true));
            }
            match flat.len() {
                0 => ScalarExpr::Lit(Value::Bool(false)),
                1 => flat.pop().expect("len checked"),
                _ => ScalarExpr::Or(flat),
            }
        }
        ScalarExpr::Cmp { op, left, right } => {
            let l = normalize_expr(left);
            let r = normalize_expr(right);
            // Fold literal-vs-literal comparisons (NULL ⇒ leave alone:
            // three-valued logic is the evaluator's business).
            if let (ScalarExpr::Lit(a), ScalarExpr::Lit(b)) = (&l, &r) {
                if let Some(ord) = a.sql_cmp(b) {
                    return ScalarExpr::Lit(Value::Bool(op.test(ord)));
                }
            }
            // Orient: smaller operand (by the derived Ord) on the left.
            if operand_rank(&r) < operand_rank(&l) || (operand_rank(&r) == operand_rank(&l) && r < l)
            {
                ScalarExpr::Cmp {
                    op: op.flip(),
                    left: Box::new(r),
                    right: Box::new(l),
                }
            } else {
                ScalarExpr::Cmp {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
        ScalarExpr::Not(inner) => {
            let n = normalize_expr(inner);
            match n {
                // Push negation through comparisons.
                ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                    op: op.negate(),
                    left,
                    right,
                },
                ScalarExpr::Not(e) => *e,
                ScalarExpr::Lit(Value::Bool(b)) => ScalarExpr::Lit(Value::Bool(!b)),
                ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                    expr,
                    negated: !negated,
                },
                other => ScalarExpr::Not(Box::new(other)),
            }
        }
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(normalize_expr(expr)),
            negated: *negated,
        },
        ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
            op: *op,
            left: Box::new(normalize_expr(left)),
            right: Box::new(normalize_expr(right)),
        },
        ScalarExpr::Neg(inner) => ScalarExpr::Neg(Box::new(normalize_expr(inner))),
        other => other.clone(),
    }
}

/// Ranks operands for canonical comparison orientation: columns before
/// access-params before literals before compound expressions.
fn operand_rank(e: &ScalarExpr) -> u8 {
    match e {
        ScalarExpr::Col(_) => 0,
        ScalarExpr::AccessParam(_) => 1,
        ScalarExpr::Lit(_) => 2,
        _ => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use fgac_types::{Column, DataType, Schema};

    fn sch(n: usize) -> Schema {
        Schema::new(
            (0..n)
                .map(|i| Column::new(format!("c{i}"), DataType::Int))
                .collect(),
        )
    }

    #[test]
    fn conjunct_order_is_canonical() {
        let a = ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1));
        let b = ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(2));
        assert_eq!(
            normalize_conjuncts(&[a.clone(), b.clone()]),
            normalize_conjuncts(&[b, a.clone(), a])
        );
    }

    #[test]
    fn comparison_is_oriented() {
        // 5 > c0  normalizes to  c0 < 5.
        let e = ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::lit(5), ScalarExpr::col(0));
        assert_eq!(
            normalize_expr(&e),
            ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(5))
        );
        // c3 = c1 normalizes to c1 = c3.
        let e = ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(1));
        assert_eq!(
            normalize_expr(&e),
            ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(3))
        );
    }

    #[test]
    fn literal_comparisons_fold() {
        let e = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::lit(1), ScalarExpr::lit(2));
        assert_eq!(normalize_expr(&e), ScalarExpr::lit(true));
    }

    #[test]
    fn not_pushes_through_cmp() {
        let e = ScalarExpr::Not(Box::new(ScalarExpr::cmp(
            CmpOp::Lt,
            ScalarExpr::col(0),
            ScalarExpr::lit(5),
        )));
        assert_eq!(
            normalize_expr(&e),
            ScalarExpr::cmp(CmpOp::GtEq, ScalarExpr::col(0), ScalarExpr::lit(5))
        );
    }

    #[test]
    fn select_merging_and_identity_projection() {
        let scan = Plan::scan("t", sch(2));
        let p = scan
            .clone()
            .select(vec![ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1))])
            .select(vec![ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::lit(2))])
            .project(vec![ScalarExpr::col(0), ScalarExpr::col(1)]);
        let n = normalize(&p);
        // Project is identity → dropped; selects merged.
        let Plan::Select { input, conjuncts } = &n else {
            panic!("expected select, got {n:?}");
        };
        assert_eq!(conjuncts.len(), 2);
        assert!(matches!(**input, Plan::Scan { .. }));
    }

    #[test]
    fn project_over_project_composes() {
        let scan = Plan::scan("t", sch(3));
        let p = scan
            .project(vec![ScalarExpr::col(2), ScalarExpr::col(0)])
            .project(vec![ScalarExpr::col(1)]);
        let n = normalize(&p);
        let Plan::Project { exprs, .. } = &n else {
            panic!("expected project");
        };
        assert_eq!(exprs, &vec![ScalarExpr::col(0)]);
    }

    #[test]
    fn distinct_idempotent() {
        let p = Plan::scan("t", sch(1)).distinct().distinct();
        assert_eq!(normalize(&p), Plan::scan("t", sch(1)).distinct());
    }

    #[test]
    fn and_short_circuits_false() {
        let e = ScalarExpr::And(vec![
            ScalarExpr::lit(false),
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)),
        ]);
        assert_eq!(normalize_expr(&e), ScalarExpr::lit(false));
    }
}
