//! Logical plans with multiset semantics.

use crate::expr::{AggExpr, ScalarExpr};
use fgac_types::Ident;
use fgac_types::Schema;

/// A logical query plan.
///
/// Multiset semantics throughout: `Project` preserves duplicates;
/// duplicate elimination is the explicit [`Plan::Distinct`] operator.
/// `Join` is inner join with an (optionally empty ⇒ cross product)
/// conjunction of predicates over the concatenated input row.
///
/// `ORDER BY`/`LIMIT` are presentation-level and live on
/// [`crate::BoundQuery`], not in the plan: they are irrelevant to the
/// paper's (multiset-based) validity notions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Plan {
    /// Base-table scan. The schema is captured at bind time so plan
    /// arities are self-contained.
    Scan { table: Ident, schema: Schema },
    /// σ: keeps rows on which *all* conjuncts evaluate to TRUE.
    Select {
        input: Box<Plan>,
        conjuncts: Vec<ScalarExpr>,
    },
    /// π (duplicate-preserving): one output row per input row.
    Project {
        input: Box<Plan>,
        exprs: Vec<ScalarExpr>,
    },
    /// δ: duplicate elimination.
    Distinct { input: Box<Plan> },
    /// ⋈: inner join; `conjuncts` over the concatenated row
    /// (left columns first). Empty conjuncts = cross product.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        conjuncts: Vec<ScalarExpr>,
    },
    /// γ: grouping + aggregation. Output row = group-by values followed
    /// by aggregate values. With empty `group_by`, produces exactly one
    /// row (global aggregate).
    Aggregate {
        input: Box<Plan>,
        group_by: Vec<ScalarExpr>,
        aggs: Vec<AggExpr>,
    },
}

/// Sort key for `ORDER BY`: output column offset + direction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OrderKey {
    pub col: usize,
    pub asc: bool,
}

impl Plan {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        match self {
            Plan::Scan { schema, .. } => schema.len(),
            Plan::Select { input, .. } | Plan::Distinct { input } => input.arity(),
            Plan::Project { exprs, .. } => exprs.len(),
            Plan::Join { left, right, .. } => left.arity() + right.arity(),
            Plan::Aggregate { group_by, aggs, .. } => group_by.len() + aggs.len(),
        }
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => vec![],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Distinct { input }
            | Plan::Aggregate { input, .. } => vec![input],
            Plan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// All base tables scanned (with multiplicity, pre-order).
    pub fn scanned_tables(&self) -> Vec<Ident> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::Scan { table, .. } = p {
                out.push(table.clone());
            }
        });
        out
    }

    /// Pre-order traversal.
    pub fn visit(&self, f: &mut impl FnMut(&Plan)) {
        f(self);
        for c in self.children() {
            c.visit(f);
        }
    }

    /// Total number of plan nodes.
    pub fn node_count(&self) -> usize {
        1 + self.children().iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// True if an `Aggregate` appears anywhere.
    pub fn has_aggregate(&self) -> bool {
        let mut found = false;
        self.visit(&mut |p| {
            if matches!(p, Plan::Aggregate { .. }) {
                found = true;
            }
        });
        found
    }

    /// True if any `$$` access-pattern parameter appears in any
    /// predicate/projection of the plan.
    pub fn has_access_params(&self) -> bool {
        let mut found = false;
        self.visit(&mut |p| {
            let check = |es: &[ScalarExpr], found: &mut bool| {
                for e in es {
                    if e.has_access_params() {
                        *found = true;
                    }
                }
            };
            match p {
                Plan::Select { conjuncts, .. } | Plan::Join { conjuncts, .. } => {
                    check(conjuncts, &mut found)
                }
                Plan::Project { exprs, .. } => check(exprs, &mut found),
                Plan::Aggregate { group_by, aggs, .. } => {
                    check(group_by, &mut found);
                    for a in aggs {
                        if let Some(arg) = &a.arg {
                            if arg.has_access_params() {
                                found = true;
                            }
                        }
                    }
                }
                _ => {}
            }
        });
        found
    }

    // ---- builder helpers (used heavily in tests and benches) ----

    pub fn scan(table: impl Into<Ident>, schema: Schema) -> Plan {
        Plan::Scan {
            table: table.into(),
            schema,
        }
    }

    pub fn select(self, conjuncts: Vec<ScalarExpr>) -> Plan {
        Plan::Select {
            input: Box::new(self),
            conjuncts,
        }
    }

    pub fn project(self, exprs: Vec<ScalarExpr>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            exprs,
        }
    }

    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    pub fn join(self, right: Plan, conjuncts: Vec<ScalarExpr>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            conjuncts,
        }
    }

    pub fn aggregate(self, group_by: Vec<ScalarExpr>, aggs: Vec<AggExpr>) -> Plan {
        Plan::Aggregate {
            input: Box::new(self),
            group_by,
            aggs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CmpOp};
    use fgac_types::{Column, DataType};

    fn grades_schema() -> Schema {
        Schema::new(vec![
            Column::new("student_id", DataType::Str),
            Column::new("course_id", DataType::Str),
            Column::new("grade", DataType::Int),
        ])
    }

    #[test]
    fn arity_propagates() {
        let scan = Plan::scan("grades", grades_schema());
        assert_eq!(scan.arity(), 3);
        let sel = scan.clone().select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::lit("11"),
        )]);
        assert_eq!(sel.arity(), 3);
        let proj = sel.project(vec![ScalarExpr::col(2)]);
        assert_eq!(proj.arity(), 1);
        let join = scan.clone().join(
            scan,
            vec![ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::col(1),
                ScalarExpr::col(4),
            )],
        );
        assert_eq!(join.arity(), 6);
        let agg = join.aggregate(
            vec![ScalarExpr::col(1)],
            vec![AggExpr {
                func: AggFunc::Avg,
                arg: Some(ScalarExpr::col(2)),
                distinct: false,
            }],
        );
        assert_eq!(agg.arity(), 2);
    }

    #[test]
    fn node_count_and_scans() {
        let s = Plan::scan("grades", grades_schema());
        let p = s.clone().join(s, vec![]).distinct();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.scanned_tables().len(), 2);
        assert!(!p.has_aggregate());
    }

    #[test]
    fn access_param_detection() {
        let p = Plan::scan("grades", grades_schema()).select(vec![ScalarExpr::eq(
            ScalarExpr::col(0),
            ScalarExpr::AccessParam("1".into()),
        )]);
        assert!(p.has_access_params());
    }
}
