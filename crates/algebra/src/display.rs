//! Human-readable plan and expression rendering (for EXPLAIN-style
//! output, error messages, and the bench report).

use crate::expr::{ArithOp, ScalarExpr};
use crate::plan::Plan;
use std::fmt;

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                ScalarExpr::Col(i) => write!(f, "#{i}"),
                ScalarExpr::Lit(v) => write!(f, "{v}"),
                ScalarExpr::AccessParam(p) => write!(f, "$${p}"),
                ScalarExpr::Cmp { op, left, right } => write!(f, "({left} {op} {right})"),
                ScalarExpr::And(es) => {
                    write!(f, "(")?;
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " AND ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")
                }
                ScalarExpr::Or(es) => {
                    write!(f, "(")?;
                    for (i, e) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " OR ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")
                }
                ScalarExpr::Not(e) => write!(f, "NOT ({e})"),
                ScalarExpr::Neg(e) => write!(f, "-({e})"),
                ScalarExpr::IsNull { expr, negated } => {
                    write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
                }
                ScalarExpr::Arith { op, left, right } => {
                    let s = match op {
                        ArithOp::Add => "+",
                        ArithOp::Sub => "-",
                        ArithOp::Mul => "*",
                        ArithOp::Div => "/",
                        ArithOp::Mod => "%",
                    };
                    write!(f, "({left} {s} {right})")
                }
            }
        }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn indent(plan: &Plan, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match plan {
                Plan::Scan { table, .. } => writeln!(f, "{pad}Scan {table}"),
                Plan::Select { input, conjuncts } => {
                    write!(f, "{pad}Select ")?;
                    for (i, c) in conjuncts.iter().enumerate() {
                        if i > 0 {
                            write!(f, " AND ")?;
                        }
                        write!(f, "{c}")?;
                    }
                    writeln!(f)?;
                    indent(input, f, depth + 1)
                }
                Plan::Project { input, exprs } => {
                    write!(f, "{pad}Project ")?;
                    for (i, e) in exprs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    writeln!(f)?;
                    indent(input, f, depth + 1)
                }
                Plan::Distinct { input } => {
                    writeln!(f, "{pad}Distinct")?;
                    indent(input, f, depth + 1)
                }
                Plan::Join {
                    left,
                    right,
                    conjuncts,
                } => {
                    write!(f, "{pad}Join")?;
                    if !conjuncts.is_empty() {
                        write!(f, " ON ")?;
                        for (i, c) in conjuncts.iter().enumerate() {
                            if i > 0 {
                                write!(f, " AND ")?;
                            }
                            write!(f, "{c}")?;
                        }
                    }
                    writeln!(f)?;
                    indent(left, f, depth + 1)?;
                    indent(right, f, depth + 1)
                }
                Plan::Aggregate {
                    input,
                    group_by,
                    aggs,
                } => {
                    write!(f, "{pad}Aggregate group=[")?;
                    for (i, g) in group_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{g}")?;
                    }
                    write!(f, "] aggs=[")?;
                    for (i, a) in aggs.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        match (&a.func, &a.arg) {
                            (func, Some(arg)) => write!(
                                f,
                                "{func}({}{arg})",
                                if a.distinct { "DISTINCT " } else { "" }
                            )?,
                            (func, None) => write!(f, "{func}")?,
                        }
                    }
                    writeln!(f, "]")?;
                    indent(input, f, depth + 1)
                }
            }
        }
        indent(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;
    use fgac_types::{Column, DataType, Schema};

    #[test]
    fn renders_plan_tree() {
        let schema = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ]);
        let p = Plan::scan("t", schema)
            .select(vec![ScalarExpr::cmp(
                CmpOp::Eq,
                ScalarExpr::col(0),
                ScalarExpr::lit(1),
            )])
            .project(vec![ScalarExpr::col(1)]);
        let s = p.to_string();
        assert!(s.contains("Project #1"));
        assert!(s.contains("Select (#0 = 1)"));
        assert!(s.contains("Scan t"));
    }
}
