//! # fgac-algebra
//!
//! The relational algebra IR shared by the executor, the Volcano
//! optimizer, and the validity-inference engine:
//!
//! * [`ScalarExpr`] — *bound* scalar/predicate expressions referencing
//!   input columns by offset (no names, no aliases), so structurally
//!   identical queries written with different aliases produce identical
//!   IR — a prerequisite for AND-OR-DAG unification (Section 5.6.1).
//! * [`Plan`] — logical plans with SQL **multiset semantics**:
//!   duplicate-preserving `Project` is distinct from `Distinct`
//!   (Definition 4.1 is multiset equivalence; Example 5.1 turns on this
//!   difference).
//! * [`bind_query`] — name resolution from `fgac-sql` ASTs against a
//!   catalog, including inline expansion of view references and
//!   instantiation of `$` parameters (Section 2's *instantiated
//!   authorization views*).
//! * [`normalize`] — canonicalization (conjunct flattening/sorting,
//!   comparison orientation, constant folding) so that syntactic
//!   variants of the same query unify in the DAG.
//! * [`implication`] — a sound prover for conjunctive comparison
//!   predicates, used by subsumption derivations (σ from weaker σ,
//!   Section 5.6.1) and the constraint-matching side conditions of rules
//!   U3a–U3c.
//! * [`provenance`] — per-output-column lineage to base-table columns,
//!   used by the core/remainder splits of rules U3 and C3.

mod binder;
mod display;
mod expr;
pub mod implication;
mod normalize;
mod plan;
mod provenance;
mod spj;

pub use binder::{bind_query, bind_table_expr, BoundQuery, ParamScope};
pub use expr::{AggExpr, AggFunc, ArithOp, CmpOp, ScalarExpr};
pub use normalize::{
    is_identity_projection, normalize, normalize_conjuncts, normalize_expr, substitute_cols,
};
pub use plan::{OrderKey, Plan};
pub use provenance::{provenance, ColOrigin};
pub use spj::SpjBlock;
