//! Selection pushdown pre-pass for execution.
//!
//! The binder (deliberately) emits a canonical shape — one selection
//! over a cross-join chain — which is ideal for DAG matching but
//! catastrophic to interpret directly (the executor would materialize
//! the cross product). This pass pushes conjuncts to their lowest
//! position so the hash-join path sees its equi-join keys. It is a
//! deterministic, semantics-preserving rewrite (the same partition rule
//! the optimizer's `select_push_into_join` uses), applied before every
//! execution; full cost-based optimization remains the optimizer's job.

use fgac_algebra::{normalize, normalize_conjuncts, Plan};

/// Pushes selections down through joins, recursively.
pub fn push_selections(plan: &Plan) -> Plan {
    let plan = normalize(plan);
    push(&plan)
}

fn push(plan: &Plan) -> Plan {
    match plan {
        Plan::Select { input, conjuncts } => {
            let inner = push(input);
            if let Plan::Join {
                left,
                right,
                conjuncts: jc,
            } = inner
            {
                let la = left.arity();
                let mut a_only = Vec::new();
                let mut b_only = Vec::new();
                let mut mixed = jc;
                for c in conjuncts {
                    let cols = c.referenced_cols();
                    if !cols.is_empty() && cols.iter().all(|&i| i < la) {
                        a_only.push(c.clone());
                    } else if !cols.is_empty() && cols.iter().all(|&i| i >= la) {
                        b_only.push(c.map_cols(&|i| i - la));
                    } else {
                        mixed.push(c.clone());
                    }
                }
                let new_left = if a_only.is_empty() {
                    *left
                } else {
                    push(&Plan::Select {
                        input: left,
                        conjuncts: normalize_conjuncts(&a_only),
                    })
                };
                let new_right = if b_only.is_empty() {
                    *right
                } else {
                    push(&Plan::Select {
                        input: right,
                        conjuncts: normalize_conjuncts(&b_only),
                    })
                };
                return Plan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    conjuncts: normalize_conjuncts(&mixed),
                };
            }
            Plan::Select {
                input: Box::new(inner),
                conjuncts: conjuncts.clone(),
            }
        }
        Plan::Project { input, exprs } => Plan::Project {
            input: Box::new(push(input)),
            exprs: exprs.clone(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(push(input)),
        },
        Plan::Join {
            left,
            right,
            conjuncts,
        } => Plan::Join {
            left: Box::new(push(left)),
            right: Box::new(push(right)),
            conjuncts: conjuncts.clone(),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(push(input)),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        Plan::Scan { .. } => plan.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::{CmpOp, ScalarExpr};
    use fgac_types::{Column, DataType, Schema};

    fn scan(t: &str) -> Plan {
        Plan::scan(
            t,
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("y", DataType::Int),
            ]),
        )
    }

    #[test]
    fn pushes_through_cross_join() {
        // σ_{a.x=1 ∧ a.y=b.x ∧ b.y>2}(A × B)
        let p = scan("a").join(scan("b"), vec![]).select(vec![
            ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(1)),
            ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2)),
            ScalarExpr::cmp(CmpOp::Gt, ScalarExpr::col(3), ScalarExpr::lit(2)),
        ]);
        let pushed = push_selections(&p);
        let Plan::Join {
            left,
            right,
            conjuncts,
        } = &pushed
        else {
            panic!("expected join at top, got {pushed}");
        };
        assert!(matches!(**left, Plan::Select { .. }));
        assert!(matches!(**right, Plan::Select { .. }));
        assert_eq!(conjuncts.len(), 1, "equi-join conjunct stays on the join");
    }

    #[test]
    fn deep_chains_push_fully() {
        // σ over ((A × B) × C): conjuncts land at each level.
        let p = scan("a")
            .join(scan("b"), vec![])
            .join(scan("c"), vec![])
            .select(vec![
                ScalarExpr::eq(ScalarExpr::col(0), ScalarExpr::lit(7)),
                ScalarExpr::eq(ScalarExpr::col(1), ScalarExpr::col(2)),
                ScalarExpr::eq(ScalarExpr::col(3), ScalarExpr::col(4)),
            ]);
        let pushed = push_selections(&p);
        // No Select-over-Join remains anywhere.
        let mut ok = true;
        pushed.visit(&mut |n| {
            if let Plan::Select { input, .. } = n {
                if matches!(**input, Plan::Join { .. }) {
                    ok = false;
                }
            }
        });
        assert!(ok, "selection left above a join:\n{pushed}");
    }
}
