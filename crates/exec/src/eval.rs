//! Scalar expression evaluation with SQL three-valued logic.

use fgac_algebra::{ArithOp, ScalarExpr};
use fgac_types::{Error, Result, Row, Value};

/// Evaluates `expr` on `row`. NULL propagates per SQL 3VL; comparisons
/// between non-NULL values of incompatible types are type errors.
pub fn eval(expr: &ScalarExpr, row: &Row) -> Result<Value> {
    #[cfg(feature = "fault-injection")]
    fgac_types::faults::hit("exec::eval")?;
    match expr {
        ScalarExpr::Col(i) => row
            .values()
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("column offset {i} out of range"))),
        ScalarExpr::Lit(v) => Ok(v.clone()),
        ScalarExpr::AccessParam(p) => Err(Error::Execution(format!(
            "access-pattern parameter $${p} was not bound to a value"
        ))),
        ScalarExpr::Cmp { op, left, right } => {
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match l.sql_cmp(&r) {
                Some(ord) => Ok(Value::Bool(op.test(ord))),
                None => Err(Error::Type(format!(
                    "cannot compare {l} with {r}"
                ))),
            }
        }
        ScalarExpr::And(es) => {
            let mut saw_null = false;
            for e in es {
                match eval(e, row)? {
                    Value::Bool(false) => return Ok(Value::Bool(false)),
                    Value::Bool(true) => {}
                    Value::Null => saw_null = true,
                    other => {
                        return Err(Error::Type(format!("AND expects booleans, got {other}")))
                    }
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Bool(true)
            })
        }
        ScalarExpr::Or(es) => {
            let mut saw_null = false;
            for e in es {
                match eval(e, row)? {
                    Value::Bool(true) => return Ok(Value::Bool(true)),
                    Value::Bool(false) => {}
                    Value::Null => saw_null = true,
                    other => {
                        return Err(Error::Type(format!("OR expects booleans, got {other}")))
                    }
                }
            }
            Ok(if saw_null {
                Value::Null
            } else {
                Value::Bool(false)
            })
        }
        ScalarExpr::Not(e) => match eval(e, row)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Null => Ok(Value::Null),
            other => Err(Error::Type(format!("NOT expects a boolean, got {other}"))),
        },
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        ScalarExpr::Arith { op, left, right } => {
            let l = eval(left, row)?;
            let r = eval(right, row)?;
            arith(*op, &l, &r)
        }
        ScalarExpr::Neg(e) => match eval(e, row)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Double(d) => Ok(Value::Double(-d)),
            Value::Null => Ok(Value::Null),
            other => Err(Error::Type(format!("cannot negate {other}"))),
        },
    }
}

/// SQL predicate truth: TRUE keeps the row; FALSE and NULL drop it.
pub fn eval_predicate(expr: &ScalarExpr, row: &Row) -> Result<bool> {
    match eval(expr, row)? {
        Value::Bool(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(Error::Type(format!(
            "predicate must be boolean, got {other}"
        ))),
    }
}

fn arith(op: ArithOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let out = match op {
                ArithOp::Add => a.checked_add(b),
                ArithOp::Sub => a.checked_sub(b),
                ArithOp::Mul => a.checked_mul(b),
                ArithOp::Div => {
                    if b == 0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    a.checked_div(b)
                }
                ArithOp::Mod => {
                    if b == 0 {
                        return Err(Error::Execution("modulo by zero".into()));
                    }
                    a.checked_rem(b)
                }
            };
            out.map(Value::Int)
                .ok_or_else(|| Error::Execution("integer overflow".into()))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(Error::Type(format!("cannot apply arithmetic to {l}, {r}")));
            };
            let out = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(Error::Execution("division by zero".into()));
                    }
                    a / b
                }
                ArithOp::Mod => a % b,
            };
            Ok(Value::Double(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_algebra::CmpOp;

    fn row(vals: Vec<Value>) -> Row {
        Row(vals)
    }

    #[test]
    fn three_valued_and_or() {
        let t = ScalarExpr::lit(true);
        let f = ScalarExpr::lit(false);
        let n = ScalarExpr::Lit(Value::Null);
        let r = row(vec![]);
        assert_eq!(
            eval(&ScalarExpr::And(vec![t.clone(), n.clone()]), &r).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval(&ScalarExpr::And(vec![f.clone(), n.clone()]), &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval(&ScalarExpr::Or(vec![t.clone(), n.clone()]), &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&ScalarExpr::Or(vec![f, n]), &r).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn null_comparison_is_unknown_and_filtered() {
        let e = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(5));
        let r = row(vec![Value::Null]);
        assert_eq!(eval(&e, &r).unwrap(), Value::Null);
        assert!(!eval_predicate(&e, &r).unwrap());
    }

    #[test]
    fn cross_type_numeric_comparison() {
        let e = ScalarExpr::cmp(CmpOp::Lt, ScalarExpr::col(0), ScalarExpr::lit(2.5));
        assert_eq!(
            eval(&e, &row(vec![Value::Int(2)])).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn type_mismatch_errors() {
        let e = ScalarExpr::cmp(CmpOp::Eq, ScalarExpr::col(0), ScalarExpr::lit(5));
        let r = row(vec![Value::Str("x".into())]);
        assert!(matches!(eval(&e, &r), Err(Error::Type(_))));
    }

    #[test]
    fn integer_and_double_arithmetic() {
        let r = row(vec![Value::Int(7), Value::Int(2)]);
        let div = ScalarExpr::Arith {
            op: ArithOp::Div,
            left: Box::new(ScalarExpr::col(0)),
            right: Box::new(ScalarExpr::col(1)),
        };
        assert_eq!(eval(&div, &r).unwrap(), Value::Int(3));
        let r2 = row(vec![Value::Double(7.0), Value::Int(2)]);
        assert_eq!(eval(&div, &r2).unwrap(), Value::Double(3.5));
    }

    #[test]
    fn division_by_zero_errors() {
        let div = ScalarExpr::Arith {
            op: ArithOp::Div,
            left: Box::new(ScalarExpr::lit(1)),
            right: Box::new(ScalarExpr::lit(0)),
        };
        assert!(eval(&div, &row(vec![])).is_err());
    }

    #[test]
    fn null_propagates_through_arith() {
        let add = ScalarExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(ScalarExpr::Lit(Value::Null)),
            right: Box::new(ScalarExpr::lit(1)),
        };
        assert_eq!(eval(&add, &row(vec![])).unwrap(), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        let e = ScalarExpr::IsNull {
            expr: Box::new(ScalarExpr::col(0)),
            negated: false,
        };
        assert_eq!(
            eval(&e, &row(vec![Value::Null])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&e, &row(vec![Value::Int(1)])).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn unbound_access_param_errors() {
        let e = ScalarExpr::AccessParam("1".into());
        assert!(matches!(eval(&e, &row(vec![])), Err(Error::Execution(_))));
    }
}
