//! DML execution (INSERT / UPDATE / DELETE) and constraint audits.
//!
//! These are the *unchecked* engine primitives; per-tuple authorization
//! of updates (Section 4.4) wraps them in `fgac-core`.
// DML mutates table state in place; a panic mid-statement leaves a
// torn table (see clippy.toml). Bubble a Result instead. Tests exempt.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]

use crate::eval::{eval, eval_predicate};
use fgac_algebra::{bind_table_expr, ParamScope, ScalarExpr};
use fgac_sql::{self as sql};
use fgac_storage::{Database, InclusionDependency};
use fgac_types::{Error, Ident, Result, Row, Value};

/// Result of a DML statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmlOutcome {
    /// Rows inserted / updated / deleted.
    pub affected: usize,
}

/// Executes an `INSERT` (constraint-checked). Multi-row inserts are
/// atomic: if any row fails its constraint check, rows inserted earlier
/// in the same statement are rolled back.
pub fn execute_insert(db: &mut Database, stmt: &sql::Insert, params: &ParamScope) -> Result<DmlOutcome> {
    let rows = insert_rows(db, stmt, params)?;
    let affected = insert_all_atomic(db, &stmt.table, rows)?;
    Ok(DmlOutcome { affected })
}

/// Inserts every row or none: on any constraint/type failure the table
/// is restored to its pre-statement state before the error propagates.
pub fn insert_all_atomic(db: &mut Database, table: &Ident, rows: Vec<Row>) -> Result<usize> {
    let snap = db.snapshot_table(table)?;
    match try_insert_all(db, table, rows) {
        Ok(n) => Ok(n),
        Err(e) => {
            db.restore_table(snap)?;
            Err(e)
        }
    }
}

fn try_insert_all(db: &mut Database, table: &Ident, rows: Vec<Row>) -> Result<usize> {
    let mut n = 0;
    for row in rows {
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("exec::insert_row")?;
        db.insert(table, row)?;
        n += 1;
    }
    Ok(n)
}

/// Materializes the full-width rows an `INSERT` statement denotes,
/// without writing them (used by update authorization to test tuples
/// *before* insertion).
pub fn insert_rows(db: &Database, stmt: &sql::Insert, params: &ParamScope) -> Result<Vec<Row>> {
    let meta = db
        .catalog()
        .table(&stmt.table)
        .ok_or_else(|| Error::Bind(format!("unknown table {}", stmt.table)))?;
    let schema = meta.schema.clone();

    // Column positions: explicit list or full schema order.
    let positions: Vec<usize> = if stmt.columns.is_empty() {
        (0..schema.len()).collect()
    } else {
        stmt.columns
            .iter()
            .map(|c| {
                schema
                    .index_of(c)
                    .ok_or_else(|| Error::Bind(format!("no column {c} in {}", stmt.table)))
            })
            .collect::<Result<_>>()?
    };

    let mut out = Vec::with_capacity(stmt.rows.len());
    for value_exprs in &stmt.rows {
        if value_exprs.len() != positions.len() {
            return Err(Error::Type(format!(
                "INSERT expects {} values, got {}",
                positions.len(),
                value_exprs.len()
            )));
        }
        let mut row = vec![Value::Null; schema.len()];
        for (expr, &pos) in value_exprs.iter().zip(&positions) {
            let bound = bind_table_expr(db.catalog(), &stmt.table, expr, params)?;
            if !bound.referenced_cols().is_empty() {
                return Err(Error::Bind(
                    "INSERT values must be constant expressions".into(),
                ));
            }
            row[pos] = eval(&bound, &Row(vec![]))?;
        }
        out.push(Row(row));
    }
    Ok(out)
}

/// The bound form of an UPDATE: optional filter plus per-column
/// assignment expressions, all over the table row.
pub type BoundUpdate = (Option<ScalarExpr>, Vec<(usize, ScalarExpr)>);

/// Binds an `UPDATE`'s filter and assignments.
pub fn bind_update(
    db: &Database,
    stmt: &sql::Update,
    params: &ParamScope,
) -> Result<BoundUpdate> {
    let meta = db
        .catalog()
        .table(&stmt.table)
        .ok_or_else(|| Error::Bind(format!("unknown table {}", stmt.table)))?;
    let filter = stmt
        .filter
        .as_ref()
        .map(|f| bind_table_expr(db.catalog(), &stmt.table, f, params))
        .transpose()?;
    let assignments = stmt
        .assignments
        .iter()
        .map(|(col, e)| {
            let idx = meta
                .schema
                .index_of(col)
                .ok_or_else(|| Error::Bind(format!("no column {col} in {}", stmt.table)))?;
            let bound = bind_table_expr(db.catalog(), &stmt.table, e, params)?;
            Ok((idx, bound))
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((filter, assignments))
}

/// Executes an `UPDATE`.
pub fn execute_update(db: &mut Database, stmt: &sql::Update, params: &ParamScope) -> Result<DmlOutcome> {
    let (filter, assignments) = bind_update(db, stmt, params)?;
    let affected = update_matching(db, &stmt.table, filter.as_ref(), &assignments)?;
    Ok(DmlOutcome { affected })
}

/// Applies bound assignments to rows matching the filter; returns the
/// number of rows updated.
///
/// Evaluate-before-mutate: the filter and every assignment are
/// evaluated for **all** matching rows before the first row is written,
/// so an evaluation error on the Nth match leaves the table untouched
/// rather than half-updated. The write itself goes through
/// `Database::apply_row_updates`, which type-checks every replacement
/// row before applying any.
pub fn update_matching(
    db: &mut Database,
    table: &Ident,
    filter: Option<&ScalarExpr>,
    assignments: &[(usize, ScalarExpr)],
) -> Result<usize> {
    let t = db.table_required(table)?;
    let mut updates = Vec::new();
    for (i, row) in t.rows().iter().enumerate() {
        let hit = match filter {
            None => true,
            Some(f) => eval_predicate(f, row)?,
        };
        if !hit {
            continue;
        }
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("exec::update_row")?;
        let mut new = row.clone();
        for (idx, e) in assignments {
            new.0[*idx] = eval(e, row)?;
        }
        updates.push((i, new));
    }
    db.apply_row_updates(table, updates)
}

/// Executes a `DELETE`.
pub fn execute_delete(db: &mut Database, stmt: &sql::Delete, params: &ParamScope) -> Result<DmlOutcome> {
    let filter = stmt
        .filter
        .as_ref()
        .map(|f| bind_table_expr(db.catalog(), &stmt.table, f, params))
        .transpose()?;
    // Evaluate-before-mutate: decide the full victim set first so a
    // filter evaluation error deletes nothing.
    let t = db.table_required(&stmt.table)?;
    let mut victims = Vec::new();
    for (i, row) in t.rows().iter().enumerate() {
        let hit = match &filter {
            None => true,
            Some(f) => eval_predicate(f, row)?,
        };
        if !hit {
            continue;
        }
        #[cfg(feature = "fault-injection")]
        fgac_types::faults::hit("exec::delete_row")?;
        victims.push(i);
    }
    let affected = db.delete_at(&stmt.table, &victims)?;
    Ok(DmlOutcome { affected })
}

/// Audits a (possibly conditional) inclusion dependency against the
/// current data, returning the violating source rows. An empty result
/// means the constraint holds on this state — useful for validating that
/// a database state is *legal* before the U3 rules assume the constraint.
pub fn audit_inclusion(db: &Database, dep: &InclusionDependency) -> Result<Vec<Row>> {
    let catalog = db.catalog();
    let src_meta = catalog.table_required(&dep.src_table)?;
    let dst_meta = catalog.table_required(&dep.dst_table)?;
    let params = ParamScope::new();
    let src_filter = dep
        .src_filter
        .as_ref()
        .map(|f| bind_table_expr(catalog, &dep.src_table, f, &params))
        .transpose()?;
    let dst_filter = dep
        .dst_filter
        .as_ref()
        .map(|f| bind_table_expr(catalog, &dep.dst_table, f, &params))
        .transpose()?;

    let src_idx: Vec<usize> = dep
        .src_columns
        .iter()
        .map(|c| {
            src_meta.schema.index_of(c).ok_or_else(|| {
                Error::Internal(format!(
                    "inclusion dependency {} names unknown column {c} in {}",
                    dep.name, dep.src_table
                ))
            })
        })
        .collect::<Result<_>>()?;
    let dst_idx: Vec<usize> = dep
        .dst_columns
        .iter()
        .map(|c| {
            dst_meta.schema.index_of(c).ok_or_else(|| {
                Error::Internal(format!(
                    "inclusion dependency {} names unknown column {c} in {}",
                    dep.name, dep.dst_table
                ))
            })
        })
        .collect::<Result<_>>()?;

    // Materialize target keys.
    let mut dst_keys = std::collections::HashSet::new();
    for row in db.table_required(&dep.dst_table)?.rows() {
        if let Some(f) = &dst_filter {
            if !eval_predicate(f, row)? {
                continue;
            }
        }
        dst_keys.insert(row.project(&dst_idx));
    }

    let mut violations = Vec::new();
    for row in db.table_required(&dep.src_table)?.rows() {
        if let Some(f) = &src_filter {
            if !eval_predicate(f, row)? {
                continue;
            }
        }
        if !dst_keys.contains(&row.project(&src_idx)) {
            violations.push(row.clone());
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_sql::{parse_statement, Statement};
    use fgac_types::{Column, DataType, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str).nullable(),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        db.create_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        db
    }

    fn stmt(s: &str) -> Statement {
        parse_statement(s).unwrap()
    }

    #[test]
    fn insert_full_and_partial_columns() {
        let mut d = db();
        let Statement::Insert(i) = stmt("insert into students values ('11', 'ann', 'FullTime')")
        else {
            panic!()
        };
        let out = execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        assert_eq!(out.affected, 1);

        let Statement::Insert(i) =
            stmt("insert into students (student_id, name) values ('12', 'bob')")
        else {
            panic!()
        };
        execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        let rows = d.table(&Ident::new("students")).unwrap().rows();
        assert_eq!(rows[1].get(2), &Value::Null);
    }

    #[test]
    fn insert_with_param() {
        let mut d = db();
        let Statement::Insert(i) =
            stmt("insert into students values ($user_id, 'ann', 'FullTime')")
        else {
            panic!()
        };
        execute_insert(&mut d, &i, &ParamScope::with_user("42")).unwrap();
        assert!(d
            .table(&Ident::new("students"))
            .unwrap()
            .rows()[0]
            .get(0)
            .eq(&Value::Str("42".into())));
    }

    #[test]
    fn update_with_filter_and_expression() {
        let mut d = db();
        for (id, n) in [("11", "ann"), ("12", "bob")] {
            let Statement::Insert(i) = stmt(&format!(
                "insert into students values ('{id}', '{n}', 'FullTime')"
            )) else {
                panic!()
            };
            execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        }
        let Statement::Update(u) =
            stmt("update students set name = 'anne' where student_id = '11'")
        else {
            panic!()
        };
        let out = execute_update(&mut d, &u, &ParamScope::new()).unwrap();
        assert_eq!(out.affected, 1);
        let rows = d.table(&Ident::new("students")).unwrap().rows();
        assert_eq!(rows[0].get(1), &Value::Str("anne".into()));
        assert_eq!(rows[1].get(1), &Value::Str("bob".into()));
    }

    #[test]
    fn delete_with_filter() {
        let mut d = db();
        for id in ["11", "12", "13"] {
            let Statement::Insert(i) =
                stmt(&format!("insert into students values ('{id}', 'x', 'y')"))
            else {
                panic!()
            };
            execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        }
        let Statement::Delete(del) = stmt("delete from students where student_id <> '12'") else {
            panic!()
        };
        let out = execute_delete(&mut d, &del, &ParamScope::new()).unwrap();
        assert_eq!(out.affected, 2);
        assert_eq!(d.table(&Ident::new("students")).unwrap().len(), 1);
    }

    fn scores_db() -> (Database, Ident) {
        let mut d = db();
        d.create_table(
            "scores",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("points", DataType::Int),
            ]),
            None,
        )
        .unwrap();
        let t = Ident::new("scores");
        for (s, p) in [("11", 4), ("12", 0), ("13", 2)] {
            d.insert(&t, Row(vec![s.into(), Value::Int(p)])).unwrap();
        }
        (d, t)
    }

    #[test]
    fn update_eval_error_mid_statement_leaves_table_unchanged() {
        let (mut d, t) = scores_db();
        let before = d.table(&t).unwrap().rows().to_vec();
        // The assignment divides by zero on the 2nd of 3 matching rows;
        // the 1st row must not have been updated when the error lands.
        let Statement::Update(u) = stmt("update scores set points = 100 / points") else {
            panic!()
        };
        let err = execute_update(&mut d, &u, &ParamScope::new()).unwrap_err();
        assert!(matches!(err, Error::Execution(_)));
        assert_eq!(d.table(&t).unwrap().rows(), &before[..]);
    }

    #[test]
    fn delete_eval_error_mid_statement_leaves_table_unchanged() {
        let (mut d, t) = scores_db();
        let before = d.table(&t).unwrap().rows().to_vec();
        // The filter errors on the 2nd row; the 1st (matching) row must
        // survive.
        let Statement::Delete(del) = stmt("delete from scores where 100 / points > 10") else {
            panic!()
        };
        let err = execute_delete(&mut d, &del, &ParamScope::new()).unwrap_err();
        assert!(matches!(err, Error::Execution(_)));
        assert_eq!(d.table(&t).unwrap().rows(), &before[..]);
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let mut d = db();
        let Statement::Insert(i) = stmt(
            "insert into students values ('21', 'a', 'x'), ('21', 'b', 'x'), ('22', 'c', 'x')",
        ) else {
            panic!()
        };
        // 2nd row duplicates the 1st row's primary key: nothing lands.
        let err = execute_insert(&mut d, &i, &ParamScope::new()).unwrap_err();
        assert!(matches!(err, Error::Constraint(_)));
        assert!(d.table(&Ident::new("students")).unwrap().is_empty());
    }

    #[test]
    fn pk_violation_surfaces() {
        let mut d = db();
        let Statement::Insert(i) = stmt("insert into students values ('11', 'a', 'b')") else {
            panic!()
        };
        execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        let err = execute_insert(&mut d, &i, &ParamScope::new());
        assert!(matches!(err, Err(Error::Constraint(_))));
    }

    #[test]
    fn audit_conditional_inclusion() {
        let mut d = db();
        for (id, ty) in [("11", "FullTime"), ("12", "PartTime")] {
            let Statement::Insert(i) =
                stmt(&format!("insert into students values ('{id}', 'x', '{ty}')"))
            else {
                panic!()
            };
            execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        }
        // Constraint: full-time students must be registered (Example 5.3).
        let dep = InclusionDependency {
            name: Ident::new("ft_reg"),
            src_table: Ident::new("students"),
            src_columns: vec![Ident::new("student_id")],
            src_filter: Some(fgac_sql::parse_expr("type = 'FullTime'").unwrap()),
            dst_table: Ident::new("registered"),
            dst_columns: vec![Ident::new("student_id")],
            dst_filter: None,
        };
        // 11 is FullTime and unregistered: one violation. 12 is PartTime:
        // exempt.
        let v = audit_inclusion(&d, &dep).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].get(0), &Value::Str("11".into()));

        let Statement::Insert(i) = stmt("insert into registered values ('11', 'cs101')") else {
            panic!()
        };
        execute_insert(&mut d, &i, &ParamScope::new()).unwrap();
        assert!(audit_inclusion(&d, &dep).unwrap().is_empty());
    }

    #[test]
    fn insert_rejects_non_constant_values() {
        let d = db();
        let Statement::Insert(i) = stmt("insert into students values (name, 'a', 'b')") else {
            panic!()
        };
        assert!(insert_rows(&d, &i, &ParamScope::new()).is_err());
    }
}
