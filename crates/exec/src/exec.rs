//! Plan execution.
//!
//! The executor works over *borrowed* scans: [`execute_plan_cow`]
//! returns `Cow<'_, [Row]>`, so a `Scan` hands back the table's own row
//! slice without copying, a `Select` over a borrowed input clones only
//! the rows that survive the filter, and materialization happens only
//! at operators that genuinely build new rows (projection, join output,
//! aggregation, duplicate elimination). For a selective single-table
//! query this turns the dominant cost from O(|table|) row clones into
//! O(|result|). The [`rows_cloned`] counter observes exactly the clones
//! caused by materializing borrowed data, so tests and benches can
//! assert the reduction.

use crate::eval::{eval, eval_predicate};
use fgac_algebra::{AggExpr, AggFunc, BoundQuery, CmpOp, OrderKey, ParamScope, Plan, ScalarExpr};
use fgac_storage::Database;
use fgac_types::{Error, Ident, Result, Row, Value};
use std::borrow::Cow;
use std::cell::Cell;
use std::collections::{HashMap, HashSet};

thread_local! {
    /// Rows cloned out of borrowed storage by this thread's executor
    /// runs: survivor clones in `Select`/`Distinct` over borrowed
    /// inputs plus whole-slice materializations of borrowed results.
    /// Thread-local so concurrent queries (and parallel tests) don't
    /// observe each other.
    static ROWS_CLONED: Cell<u64> = const { Cell::new(0) };
}

fn count_cloned(n: usize) {
    ROWS_CLONED.with(|c| c.set(c.get() + n as u64));
}

/// Rows cloned from borrowed storage on this thread since the last
/// [`reset_rows_cloned`] — the executor's copy-cost instrumentation.
pub fn rows_cloned() -> u64 {
    ROWS_CLONED.with(|c| c.get())
}

/// Resets this thread's [`rows_cloned`] counter.
pub fn reset_rows_cloned() {
    ROWS_CLONED.with(|c| c.set(0));
}

/// A query result: column names + rows.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub names: Vec<Ident>,
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Renders an ASCII table (examples / report binary).
    pub fn to_table(&self) -> String {
        let header = self
            .names
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(" | ");
        // Size the ruler from the header's display width, not the byte
        // length of the accumulated output (which counts the newline and
        // over-counts multi-byte characters).
        let ruler_width = header.chars().count().max(8);
        let mut out = String::new();
        out.push_str(&header);
        out.push('\n');
        out.push_str(&"-".repeat(ruler_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(
                &row.values()
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push('\n');
        }
        out
    }
}

/// Parses, binds, and executes a `SELECT`, returning names + rows. This
/// performs **no access-control check** — it is the raw engine that both
/// the Truman and Non-Truman paths drive.
pub fn run_query_sql(db: &Database, sql: &str, params: &ParamScope) -> Result<QueryResult> {
    let query = fgac_sql::parse_query(sql)?;
    let bound = fgac_algebra::bind_query(db.catalog(), &query, params)?;
    let rows = execute_bound(db, &bound)?;
    Ok(QueryResult {
        names: bound.output_names,
        rows,
    })
}

/// Executes a bound query including ORDER BY / LIMIT presentation. The
/// plan goes through the selection-pushdown pre-pass so joins run on
/// their keys instead of materializing cross products.
pub fn execute_bound(db: &Database, bound: &BoundQuery) -> Result<Vec<Row>> {
    let plan = crate::pushdown::push_selections(&bound.plan);
    let rows = execute_plan_cow(db, &plan)?;
    let mut rows = match rows {
        Cow::Owned(rows) => rows,
        Cow::Borrowed(rows) => {
            // The caller owns the result, so borrowed rows materialize
            // here — but an unordered LIMIT needs only the prefix.
            let take = match bound.limit {
                Some(l) if bound.order_by.is_empty() => (l as usize).min(rows.len()),
                _ => rows.len(),
            };
            count_cloned(take);
            rows[..take].to_vec()
        }
    };
    if !bound.order_by.is_empty() {
        sort_rows(&mut rows, &bound.order_by);
    }
    if let Some(limit) = bound.limit {
        rows.truncate(limit as usize);
    }
    Ok(rows)
}

/// Executes a logical plan, materializing the result multiset. Prefer
/// [`execute_plan_cow`] when the caller can work with borrowed rows
/// (e.g. emptiness probes) — this wrapper clones a borrowed result.
pub fn execute_plan(db: &Database, plan: &Plan) -> Result<Vec<Row>> {
    Ok(match execute_plan_cow(db, plan)? {
        Cow::Owned(rows) => rows,
        Cow::Borrowed(rows) => {
            count_cloned(rows.len());
            rows.to_vec()
        }
    })
}

/// Executes a logical plan over borrowed storage. `Scan` returns the
/// table's row slice without copying; operators clone rows only when
/// they must produce owned data (filter survivors, projections, join
/// outputs, aggregates).
pub fn execute_plan_cow<'a>(db: &'a Database, plan: &Plan) -> Result<Cow<'a, [Row]>> {
    match plan {
        Plan::Scan { table, .. } => Ok(Cow::Borrowed(db.table_required(table)?.rows())),
        Plan::Select { input, conjuncts } => match execute_plan_cow(db, input)? {
            // Borrowed input: filter by reference, clone only survivors.
            Cow::Borrowed(rows) => {
                let mut out = Vec::new();
                'borrowed: for r in rows {
                    for c in conjuncts {
                        if !eval_predicate(c, r)? {
                            continue 'borrowed;
                        }
                    }
                    out.push(r.clone());
                }
                count_cloned(out.len());
                Ok(Cow::Owned(out))
            }
            // Owned input: move survivors, no clones at all.
            Cow::Owned(rows) => Ok(Cow::Owned(filter_rows(rows, conjuncts)?)),
        },
        Plan::Project { input, exprs } => {
            let rows = execute_plan_cow(db, input)?;
            let projected = rows
                .iter()
                .map(|r| {
                    exprs
                        .iter()
                        .map(|e| eval(e, r))
                        .collect::<Result<Vec<Value>>>()
                        .map(Row)
                })
                .collect::<Result<Vec<Row>>>()?;
            Ok(Cow::Owned(projected))
        }
        Plan::Distinct { input } => match execute_plan_cow(db, input)? {
            Cow::Borrowed(rows) => {
                let mut seen = HashSet::with_capacity(rows.len());
                let mut out = Vec::new();
                for r in rows {
                    if seen.insert(r) {
                        out.push(r.clone());
                    }
                }
                count_cloned(out.len());
                Ok(Cow::Owned(out))
            }
            Cow::Owned(rows) => {
                let mut seen = HashSet::with_capacity(rows.len());
                Ok(Cow::Owned(
                    rows.into_iter().filter(|r| seen.insert(r.clone())).collect(),
                ))
            }
        },
        Plan::Join {
            left,
            right,
            conjuncts,
        } => {
            let lrows = execute_plan_cow(db, left)?;
            let rrows = execute_plan_cow(db, right)?;
            Ok(Cow::Owned(join_rows(
                &lrows,
                &rrows,
                left.arity(),
                conjuncts,
            )?))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = execute_plan_cow(db, input)?;
            Ok(Cow::Owned(aggregate_rows(&rows, group_by, aggs)?))
        }
    }
}

fn filter_rows(rows: Vec<Row>, conjuncts: &[ScalarExpr]) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    'rows: for r in rows {
        for c in conjuncts {
            if !eval_predicate(c, &r)? {
                continue 'rows;
            }
        }
        out.push(r);
    }
    Ok(out)
}

/// Joins with a hash join on equi-conjuncts spanning the boundary when
/// possible, nested loops otherwise. Residual conjuncts are applied to
/// the concatenated row.
fn join_rows(
    lrows: &[Row],
    rrows: &[Row],
    left_arity: usize,
    conjuncts: &[ScalarExpr],
) -> Result<Vec<Row>> {
    // Split conjuncts into hashable equi-join keys and residuals.
    let mut lkeys = Vec::new();
    let mut rkeys = Vec::new();
    let mut residual = Vec::new();
    for c in conjuncts {
        match c {
            ScalarExpr::Cmp {
                op: CmpOp::Eq,
                left,
                right,
            } => match (&**left, &**right) {
                (ScalarExpr::Col(a), ScalarExpr::Col(b)) if *a < left_arity && *b >= left_arity => {
                    lkeys.push(*a);
                    rkeys.push(*b - left_arity);
                }
                (ScalarExpr::Col(a), ScalarExpr::Col(b)) if *b < left_arity && *a >= left_arity => {
                    lkeys.push(*b);
                    rkeys.push(*a - left_arity);
                }
                _ => residual.push(c.clone()),
            },
            _ => residual.push(c.clone()),
        }
    }

    let mut out = Vec::new();
    if lkeys.is_empty() {
        // Nested loops.
        for l in lrows {
            'inner: for r in rrows {
                let joined = l.concat(r);
                for c in conjuncts {
                    if !eval_predicate(c, &joined)? {
                        continue 'inner;
                    }
                }
                out.push(joined);
            }
        }
        return Ok(out);
    }

    // Hash join: build on the smaller side conceptually; build on right.
    let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(rrows.len());
    for r in rrows {
        let key: Vec<Value> = rkeys.iter().map(|&i| r.get(i).clone()).collect();
        // SQL equi-join: NULL keys never match.
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        table.entry(key).or_default().push(r);
    }
    'left: for l in lrows {
        let key: Vec<Value> = lkeys.iter().map(|&i| l.get(i).clone()).collect();
        if key.iter().any(|v| v.is_null()) {
            continue 'left;
        }
        if let Some(matches) = table.get(&key) {
            'pair: for r in matches {
                let joined = l.concat(r);
                for c in &residual {
                    if !eval_predicate(c, &joined)? {
                        continue 'pair;
                    }
                }
                out.push(joined);
            }
        }
    }
    Ok(out)
}

/// One accumulator per (group, aggregate).
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    SumInt(i64, bool),
    SumDouble(f64, bool),
    Avg { sum: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc, first_numeric_is_int: bool) -> Acc {
        match func {
            AggFunc::CountStar | AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if first_numeric_is_int {
                    Acc::SumInt(0, false)
                } else {
                    Acc::SumDouble(0.0, false)
                }
            }
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, v: &Value) -> Result<()> {
        match self {
            Acc::Count(n) => *n += 1,
            Acc::SumInt(s, any) => match v {
                Value::Int(i) => {
                    *s = s
                        .checked_add(*i)
                        .ok_or_else(|| Error::Execution("SUM overflow".into()))?;
                    *any = true;
                }
                Value::Double(_) => {
                    // Switch representation.
                    let mut acc = Acc::SumDouble(*s as f64, *any);
                    acc.update(v)?;
                    *self = acc;
                }
                other => return Err(Error::Type(format!("SUM over non-number {other}"))),
            },
            Acc::SumDouble(s, any) => match v.as_f64() {
                Some(d) => {
                    *s += d;
                    *any = true;
                }
                None => return Err(Error::Type(format!("SUM over non-number {v}"))),
            },
            Acc::Avg { sum, n } => match v.as_f64() {
                Some(d) => {
                    *sum += d;
                    *n += 1;
                }
                None => return Err(Error::Type(format!("AVG over non-number {v}"))),
            },
            Acc::Min(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => matches!(
                        v.sql_cmp(c),
                        Some(std::cmp::Ordering::Less)
                    ),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                let replace = match cur {
                    None => true,
                    Some(c) => matches!(v.sql_cmp(c), Some(std::cmp::Ordering::Greater)),
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(&self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(*n),
            Acc::SumInt(s, any) => {
                if *any {
                    Value::Int(*s)
                } else {
                    Value::Null
                }
            }
            Acc::SumDouble(s, any) => {
                if *any {
                    Value::Double(*s)
                } else {
                    Value::Null
                }
            }
            Acc::Avg { sum, n } => {
                if *n == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / *n as f64)
                }
            }
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(Value::Null),
        }
    }
}

fn aggregate_rows(rows: &[Row], group_by: &[ScalarExpr], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    struct Group {
        key: Row,
        accs: Vec<Acc>,
        distinct_seen: Vec<HashSet<Value>>,
    }

    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Group> = HashMap::new();

    for row in rows {
        let key: Vec<Value> = group_by
            .iter()
            .map(|g| eval(g, row))
            .collect::<Result<_>>()?;
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            Group {
                key: Row(key.clone()),
                accs: aggs.iter().map(|a| Acc::new(a.func, true)).collect(),
                distinct_seen: aggs.iter().map(|_| HashSet::new()).collect(),
            }
        });
        for (i, agg) in aggs.iter().enumerate() {
            match agg.func {
                AggFunc::CountStar => entry.accs[i].update(&Value::Bool(true))?,
                _ => {
                    let arg = agg.arg.as_ref().ok_or_else(|| {
                        Error::Internal("aggregate missing argument".into())
                    })?;
                    let v = eval(arg, row)?;
                    if v.is_null() {
                        continue; // aggregates skip NULLs
                    }
                    if agg.distinct && !entry.distinct_seen[i].insert(v.clone()) {
                        continue;
                    }
                    entry.accs[i].update(&v)?;
                }
            }
        }
    }

    // A global aggregate over an empty input still yields one row.
    if group_by.is_empty() && groups.is_empty() {
        let accs: Vec<Acc> = aggs.iter().map(|a| Acc::new(a.func, true)).collect();
        return Ok(vec![Row(accs.iter().map(|a| a.finish()).collect())]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let g = &groups[&key];
        let mut vals = g.key.0.clone();
        vals.extend(g.accs.iter().map(|a| a.finish()));
        out.push(Row(vals));
    }
    Ok(out)
}

fn sort_rows(rows: &mut [Row], keys: &[OrderKey]) {
    rows.sort_by(|a, b| {
        for k in keys {
            let ord = a.get(k.col).cmp(b.get(k.col));
            let ord = if k.asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::{Column, DataType, Schema};

    /// The paper's running university schema with small data.
    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            "students",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("name", DataType::Str),
                Column::new("type", DataType::Str),
            ]),
            Some(vec![Ident::new("student_id")]),
        )
        .unwrap();
        db.create_table(
            "courses",
            Schema::new(vec![
                Column::new("course_id", DataType::Str),
                Column::new("name", DataType::Str),
            ]),
            Some(vec![Ident::new("course_id")]),
        )
        .unwrap();
        db.create_table(
            "registered",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
            ]),
            None,
        )
        .unwrap();
        db.create_table(
            "grades",
            Schema::new(vec![
                Column::new("student_id", DataType::Str),
                Column::new("course_id", DataType::Str),
                Column::new("grade", DataType::Int).nullable(),
            ]),
            None,
        )
        .unwrap();
        let s = Ident::new("students");
        for (id, name, ty) in [
            ("11", "ann", "FullTime"),
            ("12", "bob", "PartTime"),
            ("13", "carol", "FullTime"),
        ] {
            db.insert(&s, Row(vec![id.into(), name.into(), ty.into()]))
                .unwrap();
        }
        let c = Ident::new("courses");
        for (id, name) in [("cs101", "intro"), ("cs202", "systems")] {
            db.insert(&c, Row(vec![id.into(), name.into()])).unwrap();
        }
        let r = Ident::new("registered");
        for (s_, c_) in [("11", "cs101"), ("12", "cs101"), ("13", "cs202"), ("11", "cs202")] {
            db.insert(&r, Row(vec![s_.into(), c_.into()])).unwrap();
        }
        let g = Ident::new("grades");
        for (s_, c_, gr) in [
            ("11", "cs101", Some(90)),
            ("12", "cs101", Some(70)),
            ("11", "cs202", Some(80)),
            ("13", "cs202", None),
        ] {
            db.insert(
                &g,
                Row(vec![
                    s_.into(),
                    c_.into(),
                    gr.map(Value::Int).unwrap_or(Value::Null),
                ]),
            )
            .unwrap();
        }
        db
    }

    fn run(sql: &str) -> QueryResult {
        run_query_sql(&db(), sql, &ParamScope::with_user("11")).unwrap()
    }

    #[test]
    fn scans_and_filters() {
        let r = run("select grade from grades where student_id = '11'");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn parameter_filter() {
        let r = run("select grade from grades where student_id = $user_id");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn joins_hash_path() {
        let r = run(
            "select s.name, g.grade from students s, grades g \
             where s.student_id = g.student_id and g.course_id = 'cs101'",
        );
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn join_nested_loop_inequality() {
        let r = run(
            "select a.student_id, b.student_id from registered a, registered b \
             where a.student_id < b.student_id and a.course_id = b.course_id",
        );
        // cs101: 11<12. cs202: 11<13. Two pairs.
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn cross_product() {
        let r = run("select s.name, c.name from students s, courses c");
        assert_eq!(r.rows.len(), 6);
    }

    #[test]
    fn null_join_keys_never_match() {
        let mut d = db();
        d.insert(
            &Ident::new("grades"),
            Row(vec![Value::Null, "cs101".into(), Value::Int(50)]),
        )
        .unwrap_err(); // student_id is NOT NULL in grades
        // Put the NULL on a nullable column join instead.
        let r = run_query_sql(
            &d,
            "select g.student_id from grades g, grades h where g.grade = h.grade and g.student_id <> h.student_id",
            &ParamScope::new(),
        )
        .unwrap();
        // Grades 90,70,80,NULL — no equal non-null pairs across students.
        assert_eq!(r.rows.len(), 0);
    }

    #[test]
    fn aggregate_avg_skips_nulls() {
        let r = run("select avg(grade) from grades");
        assert_eq!(r.rows[0].get(0), &Value::Double(80.0));
    }

    #[test]
    fn aggregate_group_by() {
        let r = run("select course_id, count(*) from grades group by course_id order by course_id");
        assert_eq!(
            r.rows,
            vec![
                Row(vec!["cs101".into(), Value::Int(2)]),
                Row(vec!["cs202".into(), Value::Int(2)]),
            ]
        );
    }

    #[test]
    fn count_star_vs_count_col() {
        let r = run("select count(*), count(grade) from grades");
        assert_eq!(r.rows[0], Row(vec![Value::Int(4), Value::Int(3)]));
    }

    #[test]
    fn count_distinct() {
        let r = run("select count(distinct course_id) from grades");
        assert_eq!(r.rows[0].get(0), &Value::Int(2));
    }

    #[test]
    fn empty_global_aggregate_yields_one_row() {
        let r = run("select count(*), avg(grade), min(grade) from grades where student_id = 'zz'");
        assert_eq!(
            r.rows,
            vec![Row(vec![Value::Int(0), Value::Null, Value::Null])]
        );
    }

    #[test]
    fn empty_grouped_aggregate_yields_no_rows() {
        let r = run("select course_id, count(*) from grades where student_id = 'zz' group by course_id");
        assert!(r.rows.is_empty());
    }

    #[test]
    fn distinct_eliminates_duplicates() {
        let r = run("select distinct student_id from grades");
        assert_eq!(r.rows.len(), 3);
        let r = run("select student_id from grades");
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn having_filters_groups() {
        let r = run(
            "select course_id from registered group by course_id having count(*) >= 2 order by course_id",
        );
        assert_eq!(
            r.rows,
            vec![Row(vec!["cs101".into()]), Row(vec!["cs202".into()])]
        );
        let r = run(
            "select course_id from registered group by course_id having count(*) >= 3",
        );
        assert!(r.rows.is_empty());
    }

    #[test]
    fn order_by_and_limit() {
        let r = run("select name from students order by name desc limit 2");
        assert_eq!(
            r.rows,
            vec![Row(vec!["carol".into()]), Row(vec!["bob".into()])]
        );
    }

    #[test]
    fn min_max() {
        let r = run("select min(grade), max(grade) from grades");
        assert_eq!(r.rows[0], Row(vec![Value::Int(70), Value::Int(90)]));
    }

    #[test]
    fn sum_integer_stays_integer() {
        let r = run("select sum(grade) from grades");
        assert_eq!(r.rows[0].get(0), &Value::Int(240));
    }

    #[test]
    fn view_through_binder_executes() {
        let mut d = db();
        d.add_view(fgac_storage::ViewDef {
            name: Ident::new("mygrades"),
            authorization: true,
            query: fgac_sql::parse_query("select * from grades where student_id = $user_id")
                .unwrap(),
        })
        .unwrap();
        let r = run_query_sql(
            &d,
            "select avg(grade) from mygrades",
            &ParamScope::with_user("11"),
        )
        .unwrap();
        assert_eq!(r.rows[0].get(0), &Value::Double(85.0));
    }

    #[test]
    fn table_rendering() {
        let r = run("select name from students order by name limit 1");
        let t = r.to_table();
        assert!(t.contains("name"));
        assert!(t.contains("'ann'"));
    }

    #[test]
    fn table_ruler_matches_header_width() {
        let r = QueryResult {
            names: vec![Ident::new("student_id"), Ident::new("final_grade")],
            rows: vec![],
        };
        let table = r.to_table();
        let lines: Vec<&str> = table.lines().collect();
        let header = lines[0];
        assert_eq!(header, "student_id | final_grade");
        // The ruler is exactly as wide as the header — previously it was
        // sized from the accumulated byte length (header + newline).
        assert_eq!(lines[1].chars().count(), header.chars().count());
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn table_ruler_has_minimum_width() {
        let r = QueryResult {
            names: vec![Ident::new("a")],
            rows: vec![],
        };
        let table = r.to_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines[1].len(), 8);
    }

    #[test]
    fn selective_query_clones_only_survivors() {
        let d = db();
        reset_rows_cloned();
        let r = run_query_sql(
            &d,
            "select student_id, course_id, grade from grades where student_id = '11'",
            &ParamScope::new(),
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2);
        // grades has 4 rows; only the 2 survivors are cloned out of the
        // borrowed scan (projection then builds fresh rows, no clones).
        assert_eq!(rows_cloned(), 2);
    }

    #[test]
    fn full_scan_clones_whole_table_once() {
        let d = db();
        reset_rows_cloned();
        let r = run_query_sql(&d, "select * from grades", &ParamScope::new()).unwrap();
        assert_eq!(r.rows.len(), 4);
        // No projection above the scan: the caller materializes the
        // borrowed slice, exactly |table| clones.
        assert_eq!(rows_cloned(), 4);
    }

    #[test]
    fn unordered_limit_clones_only_prefix() {
        let d = db();
        reset_rows_cloned();
        let r = run_query_sql(&d, "select * from grades limit 1", &ParamScope::new()).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(rows_cloned(), 1);
    }

    #[test]
    fn borrowed_probe_clones_nothing() {
        let d = db();
        let plan = fgac_algebra::bind_query(
            d.catalog(),
            &fgac_sql::parse_query("select * from grades").unwrap(),
            &ParamScope::new(),
        )
        .unwrap()
        .plan;
        // Normalization elides the identity projection, leaving a bare
        // Scan — the shape the validity checker's emptiness probe sees.
        let plan = crate::pushdown::push_selections(&plan);
        reset_rows_cloned();
        let rows = execute_plan_cow(&d, &plan).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(matches!(rows, Cow::Borrowed(_)));
        assert_eq!(rows_cloned(), 0);
    }
}
