//! # fgac-exec
//!
//! Query execution over [`fgac_storage::Database`] with SQL multiset
//! semantics and three-valued logic.
//!
//! In the Non-Truman model the *original* query executes unmodified once
//! validated (Section 4); in the Truman model the *rewritten* query
//! executes. Both paths land here. Conditional-validity checking (rule
//! C3a condition 3) also calls into the executor to probe whether the
//! instantiated view-remainder `v_r` is non-empty on the current state.
//!
//! Operators: filter, duplicate-preserving project, distinct, hash /
//! nested-loop join (picked per predicate shape), hash aggregate, sort +
//! limit for presentation. Scans are *borrowed* ([`execute_plan_cow`]):
//! the leaf returns the table's own row slice and operators clone rows
//! only when they must produce owned data, so a selective query pays
//! O(|result|) clones rather than O(|table|). The [`rows_cloned`]
//! counter makes that cost observable to tests and benches.

mod dml;
mod eval;
mod exec;
mod pushdown;

pub use dml::{
    audit_inclusion, bind_update, execute_delete, execute_insert, execute_update,
    insert_all_atomic, insert_rows, update_matching, DmlOutcome,
};
pub use eval::{eval, eval_predicate};
pub use exec::{
    execute_bound, execute_plan, execute_plan_cow, reset_rows_cloned, rows_cloned, run_query_sql,
    QueryResult,
};
pub use pushdown::push_selections;
