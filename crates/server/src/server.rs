//! The TCP front end: accept loop, per-connection threads, bounded
//! worker pool, and graceful drain.
//!
//! ## Thread structure
//!
//! ```text
//! accept thread ──► connection threads (one per client, panic-isolated)
//!                        │  try_push (never blocks; Full ⇒ SHED)
//!                        ▼
//!                 BoundedQueue<Job>
//!                        │  pop
//!                        ▼
//!                 worker pool (fixed size, panic-isolated)
//!                        │  SharedEngine::execute_at(deadline)
//!                        ▼
//!                 reply channel ──► connection thread writes the frame
//! ```
//!
//! ## Robustness invariants
//!
//! * **Shed ≠ denied.** Overload produces `SHED` (queue full,
//!   connection table full) or `UNAVAILABLE` (draining) — statuses the
//!   engine never uses for authorization verdicts, so a client can
//!   always tell "retry later" from "you may not".
//! * **Deadlines are admission-scoped.** A request's wall-clock
//!   deadline starts when its frame is accepted, so time spent queued
//!   behind other work counts against it; expiry denies fail-closed
//!   inside the engine without touching any cache.
//! * **Panic isolation.** A panic in a connection thread kills only
//!   that connection; a panic in a worker is caught, counted, and
//!   answered with an `ERROR` status — the pool keeps its size.
//! * **Graceful drain.** `finish()` stops accepting, lets in-flight
//!   requests complete up to the drain deadline, answers anything still
//!   queued with `UNAVAILABLE`, then closes the engine (which fsyncs
//!   the WAL). Every response written before drain is durable after it.

use crate::frame::{read_frame_deadline, write_frame, FrameEvent};
use crate::metrics::Metrics;
use crate::protocol::{response_for_error, AdminOp, Request, Response};
use crate::queue::{BoundedQueue, PushError};
use fgac_core::{Session, SharedEngine};
use fgac_types::{Error, Ident, Result, Row, Value};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker pool size (engine executors).
    pub workers: usize,
    /// Admission queue capacity; beyond this, requests are shed.
    pub queue_capacity: usize,
    /// Concurrent connection cap; beyond this, connections are refused
    /// with a `SHED` frame before any handshake.
    pub max_connections: usize,
    /// How long a connection may sit idle between frames.
    pub idle_timeout: Duration,
    /// Wall-clock bound for one frame to arrive completely once its
    /// first byte is seen (slowloris defense).
    pub frame_timeout: Duration,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// How long `finish()` waits for in-flight work before refusing
    /// what remains.
    pub drain_deadline: Duration,
    /// How long a connection thread waits for a worker's reply before
    /// giving up on the request (backstop; normally the drain path or
    /// the deadline answers first).
    pub reply_timeout: Duration,
    /// The only principal whose sessions may issue `ADMIN` requests.
    pub admin_principal: String,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            max_connections: 64,
            idle_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(2),
            default_deadline: None,
            drain_deadline: Duration::from_secs(5),
            reply_timeout: Duration::from_secs(30),
            admin_principal: "admin".into(),
        }
    }
}

/// Lifecycle states, monotonically increasing.
const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const STOPPED: u8 = 2;

/// Socket poll interval; every blocking wait re-checks state at this
/// granularity.
const POLL: Duration = Duration::from_millis(20);

/// One admitted request travelling from a connection thread to a
/// worker and back.
struct Job {
    request: Request,
    session: Session,
    deadline: Option<Instant>,
    reply: mpsc::SyncSender<Response>,
}

struct Shared {
    engine: SharedEngine,
    config: ServerConfig,
    state: AtomicU8,
    metrics: Metrics,
    conns: AtomicUsize,
    inflight: AtomicUsize,
    queue: BoundedQueue<Job>,
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }
}

/// What `finish()` observed while draining.
#[derive(Debug)]
pub struct DrainReport {
    /// True when every admitted request completed before the drain
    /// deadline (nothing was refused mid-flight).
    pub drained_cleanly: bool,
    /// Admitted-but-unserved requests answered with `UNAVAILABLE`.
    pub refused_jobs: usize,
    /// Final counter snapshot, taken after the engine closed.
    pub metrics: Vec<(&'static str, u64)>,
}

/// A running server. Dropping it without calling [`Server::finish`]
/// leaves threads running; call `finish` to drain and close.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the worker pool and accept thread, and returns.
    pub fn start(engine: SharedEngine, config: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::Execution(format!("bind {}: {e}", config.addr)))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| Error::Execution(format!("set_nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::Execution(format!("local_addr: {e}")))?;
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(config.queue_capacity),
            engine,
            config,
            state: AtomicU8::new(RUNNING),
            metrics: Metrics::new(),
            conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
        });
        let workers = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fgac-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(|e| Error::Execution(format!("spawn worker: {e}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fgac-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(|e| Error::Execution(format!("spawn accept: {e}")))?
        };
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            workers,
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Jobs admitted but not yet picked up by a worker. A lock-free
    /// gauge (unlike the `METRICS` command, which reads engine cache
    /// stats under the engine read lock) — tests use it to sequence
    /// backpressure scenarios deterministically.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// Jobs currently inside a worker (popped, not yet replied).
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Acquire)
    }

    /// Stops accepting, drains in-flight work up to the drain deadline,
    /// refuses the rest, stops the workers, and closes the engine
    /// (fsyncing the WAL). Idempotent at the engine level: a second
    /// close reports a clean double-close error.
    pub fn finish(mut self) -> Result<DrainReport> {
        self.shared.state.store(DRAINING, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Drain: admitted work keeps flowing through the pool.
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        while Instant::now() < deadline {
            if self.shared.queue.is_empty() && self.shared.inflight.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let drained = self.shared.queue.is_empty()
            && self.shared.inflight.load(Ordering::Acquire) == 0;
        self.shared.state.store(STOPPED, Ordering::Release);
        // Anything still queued is answered, not dropped: each job has a
        // client blocked on its reply channel.
        let leftover = self.shared.queue.close_and_drain();
        let refused_jobs = leftover.len();
        for job in leftover {
            Metrics::bump(&self.shared.metrics.drain_shed);
            let _ = job.reply.try_send(Response::Unavailable(
                "server stopped before this request was served; retry after restart".into(),
            ));
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Give connection threads (which only write replies and poll
        // sockets) a moment to notice STOPPED and unwind.
        let conn_deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.conns.load(Ordering::Acquire) > 0 && Instant::now() < conn_deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.shared.engine.close()?;
        Ok(DrainReport {
            drained_cleanly: drained,
            refused_jobs,
            metrics: self.shared.metrics.snapshot(),
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while shared.state() == RUNNING {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let open = shared.conns.load(Ordering::Acquire);
                if open >= shared.config.max_connections {
                    Metrics::bump(&shared.metrics.conns_refused);
                    refuse_connection(stream, shared);
                    continue;
                }
                shared.conns.fetch_add(1, Ordering::AcqRel);
                Metrics::bump(&shared.metrics.conns_accepted);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("fgac-conn".into())
                    .spawn(move || {
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            serve_connection(stream, &conn_shared)
                        }));
                        if outcome.is_err() {
                            Metrics::bump(&conn_shared.metrics.conns_panicked);
                        }
                        conn_shared.conns.fetch_sub(1, Ordering::AcqRel);
                    });
                if spawned.is_err() {
                    // Spawn failure: undo the count; the stream drops.
                    shared.conns.fetch_sub(1, Ordering::AcqRel);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

/// Over the connection cap: answer `SHED` (retryable, explicitly not an
/// authorization status) and close.
fn refuse_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    let resp = Response::Shed("connection table full; retry with backoff".into());
    let (kind, payload) = resp.to_frame();
    if write_frame(&mut stream, kind, &payload).is_ok() {
        shared.metrics.record_status(kind);
    }
}

/// Writes one response frame and records its status on success.
fn send_response(stream: &mut TcpStream, shared: &Arc<Shared>, resp: &Response) -> bool {
    let (kind, payload) = resp.to_frame();
    match write_frame(stream, kind, &payload) {
        Ok(()) => {
            shared.metrics.record_status(kind);
            true
        }
        Err(_) => false,
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    if stream.set_read_timeout(Some(POLL)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let abort = || shared.state() != RUNNING;
    // Handshake: the first frame must be HELLO, within the idle window.
    let principal = match next_request(&mut stream, shared, &abort) {
        Some(Request::Hello { principal }) => principal,
        Some(_) => {
            let resp = Response::Protocol("the first frame must be HELLO <principal>".into());
            send_response(&mut stream, shared, &resp);
            return;
        }
        None => return,
    };
    if !send_response(
        &mut stream,
        shared,
        &Response::Ok(format!("session open for {principal}")),
    ) {
        return;
    }
    let session = Session::new(principal);
    loop {
        let request = match next_request(&mut stream, shared, &abort) {
            Some(r) => r,
            None => return,
        };
        Metrics::bump(&shared.metrics.requests);
        match request {
            Request::Hello { .. } => {
                let resp = Response::Protocol("session already open (duplicate HELLO)".into());
                send_response(&mut stream, shared, &resp);
                return;
            }
            Request::Ping => {
                if !send_response(&mut stream, shared, &Response::Ok("pong".into())) {
                    return;
                }
            }
            Request::Bye => {
                send_response(&mut stream, shared, &Response::Ok("bye".into()));
                return;
            }
            Request::Metrics => {
                let resp = metrics_response(shared);
                if !send_response(&mut stream, shared, &resp) {
                    return;
                }
            }
            request @ (Request::Query { .. } | Request::Admin(_)) => {
                let resp = dispatch(shared, &session, request);
                if !send_response(&mut stream, shared, &resp) {
                    return;
                }
            }
        }
    }
}

/// Reads and decodes one request, handling every transport-level
/// outcome. `None` means the connection is finished (closed, timed
/// out, aborted, or irrecoverably corrupt — counters already updated,
/// any final status already written).
fn next_request(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    abort: &impl Fn() -> bool,
) -> Option<Request> {
    let idle_deadline = Instant::now() + shared.config.idle_timeout;
    match read_frame_deadline(stream, idle_deadline, shared.config.frame_timeout, abort) {
        FrameEvent::Frame { kind, payload } => match Request::from_frame(kind, &payload) {
            Ok(req) => Some(req),
            Err(e) => {
                let resp = Response::Protocol(format!("malformed request: {e}"));
                send_response(stream, shared, &resp);
                None
            }
        },
        FrameEvent::Closed | FrameEvent::Io(_) => None,
        FrameEvent::Aborted => {
            // Draining: nothing is in flight on this connection, so a
            // courtesy status then close.
            let resp = Response::Unavailable("server draining; reconnect later".into());
            send_response(stream, shared, &resp);
            None
        }
        FrameEvent::IdleTimeout => {
            Metrics::bump(&shared.metrics.conns_idle_timeout);
            None
        }
        FrameEvent::Stalled => {
            Metrics::bump(&shared.metrics.conns_stalled);
            None
        }
        FrameEvent::Corrupt(_) => {
            Metrics::bump(&shared.metrics.frames_corrupt);
            let resp = Response::Protocol("corrupt frame; closing".into());
            send_response(stream, shared, &resp);
            None
        }
    }
}

/// Admits a request into the bounded queue and waits for its reply.
/// Never blocks on a full queue: `Full` becomes `SHED` immediately.
fn dispatch(shared: &Arc<Shared>, session: &Session, request: Request) -> Response {
    let deadline = match &request {
        Request::Query {
            deadline_ms: Some(ms),
            ..
        } => Some(Instant::now() + Duration::from_millis(*ms)),
        _ => shared.config.default_deadline.map(|d| Instant::now() + d),
    };
    let (reply_tx, reply_rx) = mpsc::sync_channel(1);
    let job = Job {
        request,
        session: session.clone(),
        deadline,
        reply: reply_tx,
    };
    match shared.queue.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            return Response::Shed("admission queue full; retry with backoff".into());
        }
        Err(PushError::Closed(_)) => {
            return Response::Unavailable("server draining; reconnect later".into());
        }
    }
    match reply_rx.recv_timeout(shared.config.reply_timeout) {
        Ok(resp) => resp,
        Err(_) => Response::Unavailable("no reply from worker pool before the backstop".into()),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Some(job) => {
                shared.inflight.fetch_add(1, Ordering::AcqRel);
                let resp = process(shared, &job);
                let _ = job.reply.try_send(resp);
                shared.inflight.fetch_sub(1, Ordering::AcqRel);
            }
            None => {
                if shared.queue.is_closed() {
                    return;
                }
            }
        }
    }
}

/// Executes one job against the engine, isolating panics so the worker
/// pool never shrinks.
fn process(shared: &Arc<Shared>, job: &Job) -> Response {
    #[cfg(feature = "fault-injection")]
    if fgac_types::faults::hit("server::handle_request").is_err() {
        return Response::Error("injected fault: request handler failed".into());
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| execute(shared, job)));
    match outcome {
        Ok(resp) => resp,
        Err(_) => {
            Metrics::bump(&shared.metrics.worker_panics);
            Response::Error(
                "internal error: request handler panicked (isolated; connection and pool intact)"
                    .into(),
            )
        }
    }
}

fn execute(shared: &Arc<Shared>, job: &Job) -> Response {
    match &job.request {
        Request::Query { sql, .. } => {
            match shared.engine.execute_at(&job.session, sql, job.deadline) {
                Ok(resp) => match resp.rows() {
                    Some(q) => Response::Rows {
                        names: q.names.clone(),
                        rows: q.rows.clone(),
                    },
                    None => Response::Affected(resp.affected().unwrap_or(0) as u64),
                },
                Err(e) => response_for_error(&e),
            }
        }
        Request::Admin(op) => {
            if job.session.user() != shared.config.admin_principal {
                return Response::Denied(format!(
                    "admin operations require principal '{}'",
                    shared.config.admin_principal
                ));
            }
            let result = shared.engine.with_write(|e| match op {
                AdminOp::Script(s) => e.admin_script(s).map(|_| "admin script applied"),
                AdminOp::GrantView { principal, view } => {
                    e.grant_view(principal, view).map(|_| "view granted")
                }
                AdminOp::RevokeView { principal, view } => {
                    e.revoke_view(principal, view).map(|_| "view revoked")
                }
                AdminOp::GrantUpdate { principal, sql } => {
                    e.grant_update_sql(principal, sql).map(|_| "update authorized")
                }
            });
            match result {
                Ok(m) => Response::Ok(m.into()),
                Err(e) => response_for_error(&e),
            }
        }
        // Routed directly in the connection thread; reaching a worker
        // with one of these is a bug, answered defensively.
        _ => Response::Protocol("request is not a worker operation".into()),
    }
}

/// Builds the `METRICS` result set: server counters, the engine's
/// cache statistics, version counters, and the Non-Truman C3 probe
/// count, as (metric, value) rows.
fn metrics_response(shared: &Arc<Shared>) -> Response {
    let mut pairs: Vec<(String, u64)> = shared
        .metrics
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    pairs.push(("conns_open".into(), shared.conns.load(Ordering::Acquire) as u64));
    pairs.push(("queue_depth".into(), shared.queue.len() as u64));
    shared.engine.with_read(|e| {
        let (vh, vm) = e.cache().stats();
        pairs.push(("validity_cache_hits".into(), vh));
        pairs.push(("validity_cache_misses".into(), vm));
        let (ph, pm) = e.plan_cache().stats();
        pairs.push(("plan_cache_hits".into(), ph));
        pairs.push(("plan_cache_misses".into(), pm));
        pairs.push(("policy_epoch".into(), e.policy_epoch()));
        pairs.push(("data_version".into(), e.data_version()));
        for (k, v) in
            crate::metrics::compiled_policy_rows(e.compiled_policies().compiled_principals())
        {
            pairs.push((k.to_string(), v));
        }
        for (k, v) in crate::metrics::invalidation_rows(e) {
            pairs.push((k.to_string(), v));
        }
        for (k, v) in crate::metrics::flow_rows(e) {
            pairs.push((k.to_string(), v));
        }
    });
    pairs.push(("c3_probes".into(), fgac_core::nontruman::c3_probe_count()));
    let rows = pairs
        .into_iter()
        .map(|(k, v)| Row(vec![Value::Str(k), Value::Int(v as i64)]))
        .collect();
    Response::Rows {
        names: vec![Ident::new("metric"), Ident::new("value")],
        rows,
    }
}
