//! A minimal blocking client for the fgac wire protocol.
//!
//! Used by the REPL-style tooling, the integration tests, and the
//! `serverbench` load generator. One request in flight at a time; the
//! socket read timeout bounds every wait so a dead server surfaces as
//! an error rather than a hang.

use crate::frame::{read_frame_blocking, write_frame};
use crate::protocol::{AdminOp, Request, Response};
use fgac_types::{Error, Result, Value};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected, HELLO-completed (after [`Client::hello`]) session.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with a bound on both the connect and every subsequent
    /// read, so no call blocks forever on an unresponsive server.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> Result<Client> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| Error::Execution(format!("resolve server address: {e}")))?
            .next()
            .ok_or_else(|| Error::Execution("server address resolved to nothing".into()))?;
        let stream = TcpStream::connect_timeout(&resolved, timeout)
            .map_err(|e| Error::Execution(format!("connect {resolved}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| Error::Execution(format!("set_read_timeout: {e}")))?;
        stream
            .set_nodelay(true)
            .map_err(|e| Error::Execution(format!("set_nodelay: {e}")))?;
        Ok(Client { stream })
    }

    /// Sends one request and reads one response.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        let (kind, payload) = request.to_frame();
        write_frame(&mut self.stream, kind, &payload)?;
        match read_frame_blocking(&mut self.stream)? {
            Some((kind, payload)) => Response::from_frame(kind, &payload),
            None => Err(Error::Execution(
                "server closed the connection without replying".into(),
            )),
        }
    }

    /// Opens the session as `principal`. Must precede everything else.
    pub fn hello(&mut self, principal: &str) -> Result<Response> {
        self.call(&Request::Hello {
            principal: principal.into(),
        })
    }

    /// Runs one SQL statement with no explicit deadline.
    pub fn query(&mut self, sql: &str) -> Result<Response> {
        self.call(&Request::Query {
            sql: sql.into(),
            deadline_ms: None,
        })
    }

    /// Runs one SQL statement under a wall-clock deadline (milliseconds
    /// from server-side admission).
    pub fn query_deadline(&mut self, sql: &str, deadline_ms: u64) -> Result<Response> {
        self.call(&Request::Query {
            sql: sql.into(),
            deadline_ms: Some(deadline_ms),
        })
    }

    /// Issues an admin operation (server enforces the admin principal).
    pub fn admin(&mut self, op: AdminOp) -> Result<Response> {
        self.call(&Request::Admin(op))
    }

    pub fn ping(&mut self) -> Result<Response> {
        self.call(&Request::Ping)
    }

    /// Fetches the server's counters as (metric, value) pairs.
    pub fn metrics(&mut self) -> Result<Vec<(String, u64)>> {
        match self.call(&Request::Metrics)? {
            Response::Rows { rows, .. } => rows
                .into_iter()
                .map(|row| match row.0.as_slice() {
                    [Value::Str(k), Value::Int(v)] => Ok((k.clone(), *v as u64)),
                    other => Err(Error::Corrupt(format!(
                        "malformed metrics row: {other:?}"
                    ))),
                })
                .collect(),
            other => Err(Error::Execution(format!(
                "metrics returned status {:#04x}",
                other.status()
            ))),
        }
    }

    /// Orderly goodbye; the server acknowledges and closes.
    pub fn bye(mut self) -> Result<Response> {
        self.call(&Request::Bye)
    }

    /// The raw stream — test hooks (half-writes, stalls) only.
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
