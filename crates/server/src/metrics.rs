//! Server-side observability counters.
//!
//! Plain relaxed atomics: every counter is monotone and independently
//! meaningful, so no cross-counter consistency is needed. The `METRICS`
//! command renders a snapshot as a two-column result set, folding in
//! the engine's own cache statistics and the Non-Truman C3 probe count
//! so a load test can see cache behavior without instrumenting the
//! engine.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::st;

macro_rules! counters {
    ($($name:ident => $label:expr),+ $(,)?) => {
        /// All server counters; one atomic per named event.
        #[derive(Debug, Default)]
        pub struct Metrics {
            $(pub $name: AtomicU64,)+
        }

        impl Metrics {
            pub fn new() -> Self {
                Self::default()
            }

            /// (label, value) pairs in declaration order.
            pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
                vec![$(($label, self.$name.load(Ordering::Relaxed)),)+]
            }
        }
    };
}

counters! {
    conns_accepted => "conns_accepted",
    conns_refused => "conns_refused",
    conns_panicked => "conns_panicked",
    conns_idle_timeout => "conns_idle_timeout",
    conns_stalled => "conns_stalled",
    frames_corrupt => "frames_corrupt",
    requests => "requests",
    resp_rows => "resp_rows",
    resp_affected => "resp_affected",
    resp_ok => "resp_ok",
    resp_denied => "resp_denied",
    resp_error => "resp_error",
    resp_shed => "resp_shed",
    resp_timeout => "resp_timeout",
    resp_unavailable => "resp_unavailable",
    resp_protocol => "resp_protocol",
    worker_panics => "worker_panics",
    drain_shed => "drain_shed",
}

/// The compiled-authorization fast-path rows for the `METRICS` result
/// set: process-wide hit/miss/compile counters plus the per-engine
/// `compiled_principals` gauge the caller reads under the engine lock.
pub fn compiled_policy_rows(compiled_principals: u64) -> Vec<(&'static str, u64)> {
    vec![
        ("fastpath_hit", fgac_core::compiled::fastpath_hit_count()),
        ("fastpath_miss", fgac_core::compiled::fastpath_miss_count()),
        ("compile_count", fgac_core::compiled::compile_count()),
        ("compiled_principals", compiled_principals),
    ]
}

/// Churn-survival rows for the `METRICS` result set: how policy and
/// schema changes were absorbed. Process-wide change counters plus the
/// per-engine invalidation/revalidation gauges the caller reads under
/// the engine lock.
pub fn invalidation_rows(e: &fgac_core::Engine) -> Vec<(&'static str, u64)> {
    let (reval_hits, reval_misses) = e.cache().revalidation_stats();
    vec![
        ("policy_changes", fgac_core::invalidation::policy_change_count()),
        ("full_invalidations", fgac_core::invalidation::full_invalidation_count()),
        ("validity_cache_invalidated", e.cache().invalidated_entries()),
        ("validity_cache_revalidation_hits", reval_hits),
        ("validity_cache_revalidation_misses", reval_misses),
        ("plan_cache_invalidated", e.plan_cache().invalidated_entries()),
    ]
}

/// Flow-analysis rows for the `METRICS` result set: process-wide
/// `ANALYZE FLOW` counters plus the per-engine cache gauges the caller
/// reads under the engine lock.
pub fn flow_rows(e: &fgac_core::Engine) -> Vec<(&'static str, u64)> {
    let (fresh, total) = e.flow_cache_stats();
    vec![
        ("flow_analyses", fgac_core::flowcache::flow_analysis_count()),
        (
            "flow_principals_computed",
            fgac_core::flowcache::flow_principals_computed(),
        ),
        ("flow_cache_hits", fgac_core::flowcache::flow_cache_hits()),
        ("flow_cache_fresh", fresh as u64),
        ("flow_cache_entries", total as u64),
    ]
}

impl Metrics {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one outgoing response by its wire status. Called exactly
    /// once per response frame written, so the `resp_*` counters sum to
    /// the number of answers clients actually received.
    pub fn record_status(&self, status: u8) {
        let counter = match status {
            st::ROWS => &self.resp_rows,
            st::AFFECTED => &self.resp_affected,
            st::OK => &self.resp_ok,
            st::DENIED => &self.resp_denied,
            st::ERROR => &self.resp_error,
            st::SHED => &self.resp_shed,
            st::TIMEOUT => &self.resp_timeout,
            st::UNAVAILABLE => &self.resp_unavailable,
            st::PROTOCOL => &self.resp_protocol,
            _ => &self.resp_error,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn get(&self, counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_route_to_their_counters() {
        let m = Metrics::new();
        m.record_status(st::ROWS);
        m.record_status(st::SHED);
        m.record_status(st::SHED);
        m.record_status(st::DENIED);
        assert_eq!(m.get(&m.resp_rows), 1);
        assert_eq!(m.get(&m.resp_shed), 2);
        assert_eq!(m.get(&m.resp_denied), 1);
        assert_eq!(m.get(&m.resp_timeout), 0);
    }

    #[test]
    fn snapshot_carries_every_counter() {
        let m = Metrics::new();
        Metrics::bump(&m.requests);
        let snap = m.snapshot();
        assert!(snap.iter().any(|(k, v)| *k == "requests" && *v == 1));
        assert!(snap.iter().any(|(k, _)| *k == "drain_shed"));
    }
}
