//! Request/response messages and their byte encodings.
//!
//! One frame (see [`crate::frame`]) carries one message: the frame's
//! kind byte is the opcode (requests) or status (responses), and the
//! payload is the message body in the workspace wire encoding
//! (`fgac_types::wire`). Decoders are total — a malformed body is a
//! protocol error on that connection, never a panic.
//!
//! The status space is deliberately partitioned so that *operational*
//! failures can never masquerade as *authorization* decisions:
//!
//! * [`Status::Denied`] is reserved for the engine's fail-closed
//!   authorization verdicts ([`fgac_types::Error::Unauthorized`]).
//! * [`Status::Shed`] means the server refused admission under load —
//!   retryable, and says nothing about the request's validity.
//! * [`Status::Timeout`] means the request's wall-clock deadline
//!   expired. The engine still denied it fail-closed internally, but
//!   the client can distinguish "you are not authorized" from "the
//!   server ran out of time" — the former is final, the latter is not.

use fgac_types::wire::{Reader, WireDecode, WireEncode};
use fgac_types::{Error, Ident, Result, Row};

/// Request opcodes (frame kind byte, client → server).
pub mod op {
    pub const HELLO: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const METRICS: u8 = 0x03;
    pub const PING: u8 = 0x04;
    pub const BYE: u8 = 0x05;
    pub const ADMIN: u8 = 0x07;
}

/// Response status bytes (frame kind byte, server → client).
pub mod st {
    pub const ROWS: u8 = 0x20;
    pub const AFFECTED: u8 = 0x21;
    pub const OK: u8 = 0x22;
    /// Authorization rejection — and *only* that.
    pub const DENIED: u8 = 0x30;
    pub const ERROR: u8 = 0x31;
    /// Load shed before admission; retryable.
    pub const SHED: u8 = 0x32;
    /// Wall-clock deadline expired; denied fail-closed but retryable.
    pub const TIMEOUT: u8 = 0x33;
    /// Server draining or closed.
    pub const UNAVAILABLE: u8 = 0x34;
    /// The client violated the protocol (bad opcode, missing HELLO).
    pub const PROTOCOL: u8 = 0x35;
}

/// An administrative operation, accepted only from the configured
/// admin principal's sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminOp {
    /// A semicolon-separated admin script (DDL, auth views, inserts).
    Script(String),
    /// `grant <view> to <principal>`.
    GrantView { principal: String, view: String },
    /// `revoke <view> from <principal>`.
    RevokeView { principal: String, view: String },
    /// An `authorize insert|update|delete ...` grant for a principal.
    GrantUpdate { principal: String, sql: String },
}

/// A client request, one per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Opens the session: every connection must send this first.
    Hello { principal: String },
    /// A SQL statement for the engine, with an optional wall-clock
    /// deadline in milliseconds from the moment the server admits it.
    Query { sql: String, deadline_ms: Option<u64> },
    /// Admin plane (gated to the configured admin principal).
    Admin(AdminOp),
    /// Server counters as a two-column result set.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Orderly goodbye; the server closes after acknowledging.
    Bye,
}

impl Request {
    /// Frame kind + payload bytes for this request.
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        let kind = match self {
            Request::Hello { principal } => {
                principal.encode(&mut out);
                op::HELLO
            }
            Request::Query { sql, deadline_ms } => {
                sql.encode(&mut out);
                deadline_ms.encode(&mut out);
                op::QUERY
            }
            Request::Admin(a) => {
                match a {
                    AdminOp::Script(s) => {
                        out.push(0);
                        s.encode(&mut out);
                    }
                    AdminOp::GrantView { principal, view } => {
                        out.push(1);
                        principal.encode(&mut out);
                        view.encode(&mut out);
                    }
                    AdminOp::RevokeView { principal, view } => {
                        out.push(2);
                        principal.encode(&mut out);
                        view.encode(&mut out);
                    }
                    AdminOp::GrantUpdate { principal, sql } => {
                        out.push(3);
                        principal.encode(&mut out);
                        sql.encode(&mut out);
                    }
                }
                op::ADMIN
            }
            Request::Metrics => op::METRICS,
            Request::Ping => op::PING,
            Request::Bye => op::BYE,
        };
        (kind, out)
    }

    /// Decodes a request from a verified frame.
    pub fn from_frame(kind: u8, payload: &[u8]) -> Result<Request> {
        let mut r = Reader::new(payload);
        let req = match kind {
            op::HELLO => Request::Hello {
                principal: String::decode(&mut r)?,
            },
            op::QUERY => Request::Query {
                sql: String::decode(&mut r)?,
                deadline_ms: Option::<u64>::decode(&mut r)?,
            },
            op::ADMIN => Request::Admin(match r.u8()? {
                0 => AdminOp::Script(String::decode(&mut r)?),
                1 => AdminOp::GrantView {
                    principal: String::decode(&mut r)?,
                    view: String::decode(&mut r)?,
                },
                2 => AdminOp::RevokeView {
                    principal: String::decode(&mut r)?,
                    view: String::decode(&mut r)?,
                },
                3 => AdminOp::GrantUpdate {
                    principal: String::decode(&mut r)?,
                    sql: String::decode(&mut r)?,
                },
                b => {
                    return Err(Error::Corrupt(format!("unknown admin op tag {b}")));
                }
            }),
            op::METRICS => Request::Metrics,
            op::PING => Request::Ping,
            op::BYE => Request::Bye,
            b => {
                return Err(Error::Unsupported(format!("unknown request opcode {b:#04x}")));
            }
        };
        r.expect_end()?;
        Ok(req)
    }
}

/// A server response, one per frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A validated query's result set (ran unmodified, per the
    /// Non-Truman model).
    Rows { names: Vec<Ident>, rows: Vec<Row> },
    /// DML outcome: affected tuple count.
    Affected(u64),
    /// Statement succeeded with no result set (admin, ping, bye).
    Ok(String),
    /// Authorization rejection (fail-closed). Final for this policy
    /// epoch — retrying without a policy change cannot succeed.
    Denied(String),
    /// Non-authorization engine error (parse, type, constraint, fuel
    /// exhaustion, ...).
    Error(String),
    /// Shed before admission: the queue or connection table was full.
    /// Retryable with backoff; carries no authorization information.
    Shed(String),
    /// The request's wall-clock deadline expired (denied fail-closed,
    /// nothing cached). Retryable.
    Timeout(String),
    /// Server draining or closed.
    Unavailable(String),
    /// Protocol violation by the client.
    Protocol(String),
}

impl Response {
    pub fn status(&self) -> u8 {
        match self {
            Response::Rows { .. } => st::ROWS,
            Response::Affected(_) => st::AFFECTED,
            Response::Ok(_) => st::OK,
            Response::Denied(_) => st::DENIED,
            Response::Error(_) => st::ERROR,
            Response::Shed(_) => st::SHED,
            Response::Timeout(_) => st::TIMEOUT,
            Response::Unavailable(_) => st::UNAVAILABLE,
            Response::Protocol(_) => st::PROTOCOL,
        }
    }

    /// Frame kind + payload bytes for this response.
    pub fn to_frame(&self) -> (u8, Vec<u8>) {
        let mut out = Vec::new();
        match self {
            Response::Rows { names, rows } => {
                names.encode(&mut out);
                rows.encode(&mut out);
            }
            Response::Affected(n) => n.encode(&mut out),
            Response::Ok(m)
            | Response::Denied(m)
            | Response::Error(m)
            | Response::Shed(m)
            | Response::Timeout(m)
            | Response::Unavailable(m)
            | Response::Protocol(m) => m.encode(&mut out),
        }
        (self.status(), out)
    }

    /// Decodes a response from a verified frame.
    pub fn from_frame(kind: u8, payload: &[u8]) -> Result<Response> {
        let mut r = Reader::new(payload);
        let resp = match kind {
            st::ROWS => Response::Rows {
                names: Vec::<Ident>::decode(&mut r)?,
                rows: Vec::<Row>::decode(&mut r)?,
            },
            st::AFFECTED => Response::Affected(u64::decode(&mut r)?),
            st::OK => Response::Ok(String::decode(&mut r)?),
            st::DENIED => Response::Denied(String::decode(&mut r)?),
            st::ERROR => Response::Error(String::decode(&mut r)?),
            st::SHED => Response::Shed(String::decode(&mut r)?),
            st::TIMEOUT => Response::Timeout(String::decode(&mut r)?),
            st::UNAVAILABLE => Response::Unavailable(String::decode(&mut r)?),
            st::PROTOCOL => Response::Protocol(String::decode(&mut r)?),
            b => {
                return Err(Error::Corrupt(format!("unknown response status {b:#04x}")));
            }
        };
        r.expect_end()?;
        Ok(resp)
    }

    /// True for statuses a client may safely retry (possibly after
    /// backoff): the request was never authorized *or* rejected on its
    /// merits.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Response::Shed(_) | Response::Timeout(_) | Response::Unavailable(_)
        )
    }
}

/// Maps an engine error onto the wire, preserving the status-space
/// partition documented at the top of this module.
///
/// The one subtle case: [`Error::ResourceExhausted`] covers both fuel
/// (inference-step budget) and wall-clock deadlines. Deadline expiry —
/// recognizable by the `deadline` marker the engine puts first in the
/// message — becomes [`Response::Timeout`] (retryable); fuel exhaustion
/// stays a plain [`Response::Error`], because retrying the identical
/// query will burn the identical fuel.
pub fn response_for_error(err: &Error) -> Response {
    match err {
        Error::Unauthorized(m) => Response::Denied(m.clone()),
        Error::ResourceExhausted(m) if m.starts_with("deadline") || m.contains("deadline exceeded") => {
            Response::Timeout(m.clone())
        }
        other => Response::Error(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fgac_types::Value;

    fn roundtrip_req(req: Request) {
        let (kind, payload) = req.to_frame();
        assert_eq!(Request::from_frame(kind, &payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let (kind, payload) = resp.to_frame();
        assert_eq!(Response::from_frame(kind, &payload).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello {
            principal: "alice".into(),
        });
        roundtrip_req(Request::Query {
            sql: "select * from grades".into(),
            deadline_ms: Some(250),
        });
        roundtrip_req(Request::Query {
            sql: String::new(),
            deadline_ms: None,
        });
        roundtrip_req(Request::Admin(AdminOp::Script("create table t (a int)".into())));
        roundtrip_req(Request::Admin(AdminOp::GrantView {
            principal: "11".into(),
            view: "mygrades".into(),
        }));
        roundtrip_req(Request::Admin(AdminOp::RevokeView {
            principal: "11".into(),
            view: "mygrades".into(),
        }));
        roundtrip_req(Request::Admin(AdminOp::GrantUpdate {
            principal: "11".into(),
            sql: "authorize insert on grades where student_id = $user_id".into(),
        }));
        roundtrip_req(Request::Metrics);
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_resp(Response::Rows {
            names: vec![Ident::new("grade")],
            rows: vec![Row(vec![Value::Int(90)]), Row(vec![Value::Null])],
        });
        roundtrip_resp(Response::Affected(3));
        roundtrip_resp(Response::Ok("bye".into()));
        roundtrip_resp(Response::Denied("not covered".into()));
        roundtrip_resp(Response::Error("parse error: x".into()));
        roundtrip_resp(Response::Shed("queue full".into()));
        roundtrip_resp(Response::Timeout("deadline: expired".into()));
        roundtrip_resp(Response::Unavailable("draining".into()));
        roundtrip_resp(Response::Protocol("HELLO required".into()));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (kind, mut payload) = Request::Ping.to_frame();
        payload.push(0xFF);
        assert!(Request::from_frame(kind, &payload).is_err());
    }

    #[test]
    fn unknown_opcode_is_unsupported_not_panic() {
        assert!(Request::from_frame(0x7F, &[]).is_err());
        assert!(Response::from_frame(0x7F, &[]).is_err());
    }

    #[test]
    fn error_mapping_preserves_the_status_partition() {
        // Authorization → DENIED, and nothing else maps there.
        let deny = response_for_error(&Error::Unauthorized("no view covers q".into()));
        assert_eq!(deny.status(), st::DENIED);
        // Deadline expiry → TIMEOUT (retryable), not DENIED.
        let t = response_for_error(&Error::ResourceExhausted(
            "deadline: request wall-clock deadline expired before the validity check".into(),
        ));
        assert_eq!(t.status(), st::TIMEOUT);
        assert!(t.is_retryable());
        // Fuel exhaustion → ERROR: same error variant, different status.
        let fuel = response_for_error(&Error::ResourceExhausted(
            "validity check: step budget exhausted after 4096 steps".into(),
        ));
        assert_eq!(fuel.status(), st::ERROR);
        // Plain failures are neither denied nor retryable.
        let parse = response_for_error(&Error::Parse("bad token".into()));
        assert_eq!(parse.status(), st::ERROR);
        assert!(!parse.is_retryable());
    }
}
