//! A bounded MPMC job queue with explicit load shedding.
//!
//! Admission control lives here: connection threads `try_push` and get
//! an immediate [`PushError::Full`] when the queue is at capacity —
//! they never block behind the workers. The caller turns `Full` into a
//! `SHED` wire status, which is how overload stays *distinguishable
//! from denial*: a shed request was never looked at, so it must never
//! be reported with the vocabulary of an authorization decision.
//!
//! Built on `std::sync::{Mutex, Condvar}` (the vendored `parking_lot`
//! wrappers deliberately omit a condvar); lock poisoning is recovered
//! with `into_inner` since queue state is a plain `VecDeque` that
//! cannot be left logically inconsistent by a panicking pusher.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a `try_push` was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// At capacity — shed the request (retryable for the client).
    Full(T),
    /// The queue was closed (server stopping) — unavailable.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity FIFO shared by connection threads (producers) and
/// the worker pool (consumers).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Non-blocking admission: enqueues or refuses immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for an item. `None` means the wait timed
    /// out (caller should re-check server state and come back) — or the
    /// queue is closed *and* drained, which [`BoundedQueue::is_closed`]
    /// distinguishes.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(|p| p.into_inner());
            inner = guard;
            if wait.timed_out() {
                return inner.items.pop_front();
            }
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers drain what remains. Returns the items still queued
    /// so the caller can refuse them individually (each undrained job
    /// holds a client waiting for *some* answer).
    pub fn close_and_drain(&self) -> Vec<T> {
        let mut inner = self.lock();
        inner.closed = true;
        let leftover = inner.items.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        leftover
    }

    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_exactly_beyond_capacity() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        match q.try_push(3) {
            Err(PushError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        // Popping frees a slot.
        assert_eq!(q.pop_timeout(Duration::from_millis(10)), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn close_refuses_new_and_returns_leftovers() {
        let q = BoundedQueue::new(4);
        q.try_push(1).map_err(|_| ()).unwrap();
        q.try_push(2).map_err(|_| ()).unwrap();
        let leftover = q.close_and_drain();
        assert_eq!(leftover, vec![1, 2]);
        match q.try_push(9) {
            Err(PushError::Closed(9)) => {}
            other => panic!("expected Closed(9), got {other:?}"),
        }
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
    }

    #[test]
    fn pop_wakes_on_push_from_another_thread() {
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).map_err(|_| ()).unwrap();
        assert_eq!(t.join().unwrap(), Some(42));
    }
}
