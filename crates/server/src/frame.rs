//! Length-prefixed, CRC-framed wire transport.
//!
// The frame codec runs on every connection and must never panic: a
// malformed frame is a protocol error on *that* connection, never a
// crash. See clippy.toml / fgac-lint.
#![cfg_attr(not(test), deny(clippy::disallowed_methods))]
//!
//! The framing discipline mirrors the WAL's (`fgac-wal`): a fixed
//! header carrying the payload length, a kind byte, the payload CRC,
//! and a CRC over the header itself — so a header is either trusted in
//! full or rejected without interpreting any of its fields. Unlike the
//! WAL there is no torn-tail leniency: a stream cannot be resynced
//! after garbage, so any checksum or length violation closes the
//! connection (strict fail-closed framing).
//!
//! ```text
//! offset  size  field
//! 0       4     payload length (LE u32, ≤ MAX_PAYLOAD)
//! 4       1     kind (request opcode or response status)
//! 5       4     CRC-32 of the payload
//! 9       4     CRC-32 of bytes [0, 9)
//! 13      len   payload
//! ```

use fgac_types::{Error, Result};
use fgac_wal::crc32;
use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Bytes of framing before the payload.
pub const HEADER_LEN: usize = 13;

/// Upper bound on a frame payload. Large enough for any realistic
/// result set in this workload, small enough that a hostile length
/// field cannot balloon server memory.
pub const MAX_PAYLOAD: usize = 4 << 20;

/// A decoded frame header, trusted only after its own CRC checks out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub len: usize,
    pub kind: u8,
    pub payload_crc: u32,
}

/// Encodes a complete frame (header + payload).
pub fn encode_frame(kind: u8, payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > MAX_PAYLOAD {
        return Err(Error::Execution(format!(
            "frame payload of {} bytes exceeds the {MAX_PAYLOAD}-byte limit",
            payload.len()
        )));
    }
    // The MAX_PAYLOAD guard above keeps the length within u32 range;
    // try_from makes that dependency explicit rather than truncating.
    let len = u32::try_from(payload.len())
        .map_err(|_| Error::Execution("frame payload length exceeds u32".into()))?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let header_crc = crc32(&out[..9]);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes and verifies a frame header. Nothing in the header is
/// interpreted unless the header CRC matches.
pub fn decode_header(bytes: &[u8; HEADER_LEN]) -> Result<FrameHeader> {
    let stored = u32::from_le_bytes([bytes[9], bytes[10], bytes[11], bytes[12]]);
    if crc32(&bytes[..9]) != stored {
        return Err(Error::Corrupt("frame header checksum mismatch".into()));
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    if len > MAX_PAYLOAD {
        return Err(Error::Corrupt(format!(
            "frame length {len} exceeds the {MAX_PAYLOAD}-byte limit"
        )));
    }
    Ok(FrameHeader {
        len,
        kind: bytes[4],
        payload_crc: u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]),
    })
}

/// Verifies a payload against its header CRC.
pub fn verify_payload(header: &FrameHeader, payload: &[u8]) -> Result<()> {
    if crc32(payload) != header.payload_crc {
        return Err(Error::Corrupt("frame payload checksum mismatch".into()));
    }
    Ok(())
}

/// Writes one frame. Fault sites (`fault-injection` builds only):
/// `server::write_frame` fails before any byte reaches the wire (a
/// response lost whole), `server::write_frame_torn` cuts the frame in
/// half mid-write (a torn response the peer must reject).
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> Result<()> {
    let bytes = encode_frame(kind, payload)?;
    #[cfg(feature = "fault-injection")]
    fgac_types::faults::hit("server::write_frame").map_err(|_| {
        Error::Execution("injected fault: response dropped before write".into())
    })?;
    #[cfg(feature = "fault-injection")]
    if fgac_types::faults::hit("server::write_frame_torn").is_err() {
        let half = bytes.len() / 2;
        let _ = w.write_all(&bytes[..half]);
        let _ = w.flush();
        return Err(Error::Execution(
            "injected fault: response torn mid-write".into(),
        ));
    }
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| Error::Execution(format!("frame write failed: {e}")))
}

/// What [`read_frame_deadline`] observed on the stream.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete, checksum-verified frame.
    Frame { kind: u8, payload: Vec<u8> },
    /// The peer closed the stream at a frame boundary (clean EOF).
    Closed,
    /// No byte arrived before `idle_deadline` (idle / slowloris guard).
    IdleTimeout,
    /// A frame started but did not complete before the per-frame
    /// deadline (stalled or dripping sender).
    Stalled,
    /// Framing violation: header/payload checksum mismatch, oversize
    /// length, or EOF mid-frame. The stream cannot be resynced.
    Corrupt(String),
    /// I/O error on the stream.
    Io(String),
    /// The caller's `should_abort` predicate fired while idle (e.g. the
    /// server started draining).
    Aborted,
}

/// Reads exactly `buf.len()` bytes before `deadline`, tolerating the
/// short poll-timeout reads the caller configured on the socket.
/// Returns `Ok(n)` with the bytes filled, `Err(true)` on EOF, or
/// `Err(false)` on deadline expiry; I/O errors map to EOF-like closure.
fn read_exact_deadline(
    r: &mut impl Read,
    buf: &mut [u8],
    deadline: Instant,
) -> std::result::Result<(), ReadFail> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadFail::Eof),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() >= deadline {
                    return Err(ReadFail::Deadline);
                }
            }
            Err(e) => return Err(ReadFail::Io(e.to_string())),
        }
    }
    Ok(())
}

enum ReadFail {
    Eof,
    Deadline,
    Io(String),
}

/// Reads one frame from a stream whose socket read timeout is set to a
/// short poll interval.
///
/// Waits up to `idle_deadline` for the first byte (checking
/// `should_abort` at every poll tick); once a frame has begun, the
/// *whole* frame must complete within `frame_timeout` — a hard
/// wall-clock bound per frame, so a dripping sender cannot hold the
/// connection open indefinitely (slowloris defense).
pub fn read_frame_deadline(
    r: &mut impl Read,
    idle_deadline: Instant,
    frame_timeout: Duration,
    should_abort: impl Fn() -> bool,
) -> FrameEvent {
    #[cfg(feature = "fault-injection")]
    if fgac_types::faults::hit("server::read_frame").is_err() {
        return FrameEvent::Io("injected fault: read aborted".into());
    }
    // Phase 1: wait for the first byte (idle phase).
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return FrameEvent::Closed,
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if should_abort() {
                    return FrameEvent::Aborted;
                }
                if Instant::now() >= idle_deadline {
                    return FrameEvent::IdleTimeout;
                }
            }
            Err(e) => return FrameEvent::Io(e.to_string()),
        }
    }
    // Phase 2: the frame has begun; it must complete before the frame
    // deadline.
    let deadline = Instant::now() + frame_timeout;
    let mut header = [0u8; HEADER_LEN];
    header[0] = first[0];
    match read_exact_deadline(r, &mut header[1..], deadline) {
        Ok(()) => {}
        Err(ReadFail::Eof) => return FrameEvent::Corrupt("EOF mid-header".into()),
        Err(ReadFail::Deadline) => return FrameEvent::Stalled,
        Err(ReadFail::Io(e)) => return FrameEvent::Io(e),
    }
    let parsed = match decode_header(&header) {
        Ok(h) => h,
        Err(e) => return FrameEvent::Corrupt(e.to_string()),
    };
    let mut payload = vec![0u8; parsed.len];
    match read_exact_deadline(r, &mut payload, deadline) {
        Ok(()) => {}
        Err(ReadFail::Eof) => return FrameEvent::Corrupt("EOF mid-payload".into()),
        Err(ReadFail::Deadline) => return FrameEvent::Stalled,
        Err(ReadFail::Io(e)) => return FrameEvent::Io(e),
    }
    if let Err(e) = verify_payload(&parsed, &payload) {
        return FrameEvent::Corrupt(e.to_string());
    }
    FrameEvent::Frame {
        kind: parsed.kind,
        payload,
    }
}

/// Blocking read of one frame for clients (the socket's own read
/// timeout bounds each syscall). `Ok(None)` is clean EOF.
pub fn read_frame_blocking(r: &mut impl Read) -> Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(Error::Corrupt("EOF mid-header".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Execution(format!("frame read failed: {e}"))),
        }
    }
    let parsed = decode_header(&header)?;
    let mut payload = vec![0u8; parsed.len];
    let mut filled = 0usize;
    while filled < parsed.len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => return Err(Error::Corrupt("EOF mid-payload".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(Error::Execution(format!("frame read failed: {e}"))),
        }
    }
    verify_payload(&parsed, &payload)?;
    Ok(Some((parsed.kind, payload)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let bytes = encode_frame(0x42, b"hello").unwrap();
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        let mut cursor = std::io::Cursor::new(bytes);
        let (kind, payload) = read_frame_blocking(&mut cursor).unwrap().unwrap();
        assert_eq!(kind, 0x42);
        assert_eq!(payload, b"hello");
        // Clean EOF after the frame.
        assert!(read_frame_blocking(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn every_single_byte_corruption_is_rejected() {
        let bytes = encode_frame(0x01, b"payload-bytes").unwrap();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            let mut cursor = std::io::Cursor::new(corrupt);
            let outcome = read_frame_blocking(&mut cursor);
            match outcome {
                Err(_) => {}
                Ok(Some((kind, payload))) => {
                    // Flipping a bit must never yield the original frame
                    // verbatim; any accepted decode here is a CRC hole.
                    panic!("corruption at byte {i} accepted: kind={kind} len={}", payload.len());
                }
                Ok(None) => panic!("corruption at byte {i} read as clean EOF"),
            }
        }
    }

    #[test]
    fn oversize_length_is_rejected_without_allocating() {
        let mut bytes = encode_frame(0x01, b"x").unwrap();
        // Forge an enormous length and fix up the header CRC so only the
        // length check can reject it.
        bytes[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let crc = crc32(&bytes[..9]);
        bytes[9..13].copy_from_slice(&crc.to_le_bytes());
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let err = decode_header(&header).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)));
    }

    #[test]
    fn truncated_frame_is_corrupt_not_eof() {
        let bytes = encode_frame(0x07, b"some payload").unwrap();
        let torn = &bytes[..bytes.len() - 3];
        let mut cursor = std::io::Cursor::new(torn.to_vec());
        let err = read_frame_blocking(&mut cursor).unwrap_err();
        assert!(matches!(err, Error::Corrupt(_)), "got {err:?}");
    }
}
