//! # fgac-server
//!
//! A fault-tolerant network front end for the fgac engine: the paper
//! places fine-grained access control *inside* the DBMS precisely so
//! that many concurrently connected principals share one enforcement
//! point, and this crate supplies that multi-principal surface.
//!
//! Deliberately `std`-only — `std::net` sockets, a bounded worker
//! pool, and the workspace's vendored `parking_lot` wrappers; no async
//! runtime. The robustness features mirror what the engine already
//! guarantees internally:
//!
//! * **Strict framing** ([`frame`]) — the WAL's CRC-everything
//!   discipline applied to the wire; a corrupt frame closes the
//!   connection instead of being guessed at.
//! * **A partitioned status space** ([`protocol`]) — `SHED` (overload)
//!   and `TIMEOUT` (deadline) are distinct from `DENIED`
//!   (authorization), so operational failure can never be mistaken for
//!   a policy decision, and vice versa.
//! * **Admission control** ([`queue`]) — a bounded queue that refuses
//!   rather than buffers without bound.
//! * **Deadlines** — per-request wall-clock budgets threaded into the
//!   engine's validity-check meter; expiry denies fail-closed and
//!   leaves no cache residue.
//! * **Isolation and drain** ([`server`]) — per-connection and
//!   per-worker panic isolation, idle/stall timeouts, and a graceful
//!   drain that answers every admitted request before the engine's
//!   WAL is closed.

pub mod client;
pub mod frame;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use protocol::{response_for_error, AdminOp, Request, Response};
pub use server::{DrainReport, Server, ServerConfig};
