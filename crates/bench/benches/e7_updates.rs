//! E7 — per-tuple update-authorization throughput (§4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgac_core::{Engine, Session};

fn fresh_engine() -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "create table registered (student_id varchar not null, \
         course_id varchar not null);",
    )
    .unwrap();
    e.grant_update_sql(
        "u",
        "authorize insert on registered where student_id = $user_id",
    )
    .unwrap();
    e
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_updates");
    group.sample_size(20);
    for batch in [100usize, 1_000] {
        let session = Session::new("u");
        let values: Vec<String> = (0..batch).map(|i| format!("('u', 'c{i}')")).collect();
        let sql = format!("insert into registered values {}", values.join(", "));
        group.bench_with_input(
            BenchmarkId::new("authorized_insert", batch),
            &sql,
            |b, sql| {
                b.iter_batched(
                    fresh_engine,
                    |mut e| e.execute(&session, sql).unwrap(),
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
