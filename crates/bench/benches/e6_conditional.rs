//! E6 — the cost of conditional-validity (C3) checks, which include a
//! database probe of the instantiated remainder (§4.3, §5.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgac_bench::{pick_triple, university};
use fgac_core::{CheckOptions, Session, Validator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_conditional");
    group.sample_size(15);
    for students in [200usize, 2_000] {
        let uni = university(students);
        let (student, reg, _) = pick_triple(&uni);
        let session = Session::new(student.clone());
        // Conditionally valid: needs the C3 path end-to-end.
        let sql = format!("select * from grades where course_id = '{reg}'");

        group.bench_with_input(BenchmarkId::new("c3_check", students), &sql, |b, sql| {
            b.iter(|| {
                Validator::new(uni.engine.database(), uni.engine.grants())
                    .check_sql(&session, sql)
                    .unwrap()
            });
        });
        // For comparison: the same machinery with C3 disabled (rejects
        // fast after exhausting the unconditional rules).
        group.bench_with_input(BenchmarkId::new("no_c3", students), &sql, |b, sql| {
            b.iter(|| {
                Validator::new(uni.engine.database(), uni.engine.grants())
                    .with_options(CheckOptions {
                        enable_c3: false,
                        ..Default::default()
                    })
                    .check_sql(&session, sql)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
