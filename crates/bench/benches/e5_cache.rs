//! E5 — validity-check caching for repeated/prepared queries (§5.6).

use criterion::{criterion_group, criterion_main, Criterion};
use fgac_bench::{pick_triple, university};
use fgac_core::{Session, Validator};

fn bench(c: &mut Criterion) {
    let uni = university(500);
    let (student, _, _) = pick_triple(&uni);
    let session = Session::new(student.clone());
    let sql = format!("select grade from grades where student_id = '{student}'");

    let mut group = c.benchmark_group("e5_cache");
    group.bench_function("cold_check", |b| {
        // Bypass the engine cache: run the validator directly.
        b.iter(|| {
            Validator::new(uni.engine.database(), uni.engine.grants())
                .check_sql(&session, &sql)
                .unwrap()
        });
    });
    // Warm the cache, then measure the cached path.
    uni.engine.check(&session, &sql).unwrap();
    group.bench_function("cached_check", |b| {
        b.iter(|| uni.engine.check(&session, &sql).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
