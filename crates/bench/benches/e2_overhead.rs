//! E2 — validity-check overhead vs plain optimization (§5.6).

use criterion::{criterion_group, criterion_main, Criterion};
use fgac_bench::{pick_triple, university};
use fgac_core::{CheckOptions, Session, Validator};
use fgac_optimizer::{expand, extract_best, CostModel, Dag, ExpandOptions, TableStats};

fn bench(c: &mut Criterion) {
    let uni = university(200);
    let (student, reg, _) = pick_triple(&uni);
    let session = Session::new(student.clone());
    let db = uni.engine.database();
    let cases = [
        (
            "point",
            format!("select grade from grades where student_id = '{student}'"),
        ),
        (
            "aggregate",
            format!("select avg(grade) from grades where course_id = '{reg}'"),
        ),
    ];

    let mut group = c.benchmark_group("e2_overhead");
    for (label, sql) in &cases {
        let parsed = fgac_sql::parse_query(sql).unwrap();
        let bound = fgac_algebra::bind_query(db.catalog(), &parsed, session.params()).unwrap();

        group.bench_function(format!("{label}/optimize_only"), |b| {
            b.iter(|| {
                let mut dag = Dag::new();
                let root = dag.insert_plan(&bound.plan);
                expand(&mut dag, &ExpandOptions::default());
                let model = CostModel::new(TableStats::from_database(db));
                extract_best(&dag, root, &model)
            });
        });
        group.bench_function(format!("{label}/check_basic"), |b| {
            b.iter(|| {
                Validator::new(db, uni.engine.grants())
                    .with_options(CheckOptions::basic_only())
                    .check_sql(&session, sql)
                    .unwrap()
            });
        });
        group.bench_function(format!("{label}/check_full"), |b| {
            b.iter(|| {
                Validator::new(db, uni.engine.grants())
                    .check_sql(&session, sql)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
