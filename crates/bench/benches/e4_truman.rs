//! E4 — Truman-rewritten vs Non-Truman-original execution (§3.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgac_bench::{pick_triple, university};
use fgac_core::truman::TrumanPolicy;
use fgac_core::Session;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_truman");
    group.sample_size(15);
    for students in [500usize, 4_000] {
        let uni = university(students);
        let (student, reg, _) = pick_triple(&uni);
        let session = Session::new(student.clone());
        let sql = format!("select grade from grades where course_id = '{reg}'");
        let policy = TrumanPolicy::new().substitute_view("grades", "costudentgrades");

        group.bench_with_input(
            BenchmarkId::new("truman_rewritten", students),
            &sql,
            |b, sql| {
                b.iter(|| uni.engine.truman_execute(&policy, &session, sql).unwrap());
            },
        );
        group.bench_with_input(
            BenchmarkId::new("original_unmodified", students),
            &sql,
            |b, sql| {
                b.iter(|| {
                    fgac_exec::run_query_sql(uni.engine.database(), sql, session.params())
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
