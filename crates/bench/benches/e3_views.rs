//! E3 — scaling with the number of authorization views (§5.6).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgac_bench::pick_triple;
use fgac_core::{CheckOptions, Session, Validator};
use fgac_workload::querygen::synthetic_view_family;
use fgac_workload::university::{build, UniversityConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_views");
    group.sample_size(15);
    for n in [8usize, 32, 128] {
        let mut uni = build(UniversityConfig::default().with_students(100)).unwrap();
        // A few relevant views plus (n-4) irrelevant join views that
        // pruning can discard (see the report binary's E3).
        for (name, body) in synthetic_view_family(4) {
            uni.engine.admin_script(&body).unwrap();
            uni.engine.grant_view("student", &name).unwrap();
        }
        for i in 0..n.saturating_sub(4) {
            let noise = format!(
                "create authorization view noise{i} as \
                 select s.name, c.name from students s, courses c \
                 where s.type = 'FullTime' and c.course_id = 'c{:04}'",
                i % 10
            );
            uni.engine.admin_script(&noise).unwrap();
            uni.engine.grant_view("student", &format!("noise{i}")).unwrap();
        }
        let (student, _, _) = pick_triple(&uni);
        let sql = format!("select grade from grades where student_id = '{student}'");
        let session = Session::new(student.clone());

        group.bench_with_input(BenchmarkId::new("no_prune", n), &sql, |b, sql| {
            b.iter(|| {
                Validator::new(uni.engine.database(), uni.engine.grants())
                    .with_options(CheckOptions {
                        prune_irrelevant_views: false,
                        ..Default::default()
                    })
                    .check_sql(&session, sql)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("prune", n), &sql, |b, sql| {
            b.iter(|| {
                Validator::new(uni.engine.database(), uni.engine.grants())
                    .check_sql(&session, sql)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
