//! E1 — AND-OR DAG construction and expansion (Figure 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgac_algebra::{Plan, ScalarExpr};
use fgac_optimizer::{expand, Dag, ExpandOptions};
use fgac_types::{Column, DataType, Schema};

fn chain_join(n: usize) -> Plan {
    let schema = Schema::new(vec![
        Column::new("x", DataType::Int),
        Column::new("y", DataType::Int),
    ]);
    let mut plan = Plan::scan("t0", schema.clone());
    for i in 1..n {
        let off = 2 * i;
        plan = plan.join(
            Plan::scan(format!("t{i}").as_str(), schema.clone()),
            vec![ScalarExpr::eq(
                ScalarExpr::col(off - 1),
                ScalarExpr::col(off),
            )],
        );
    }
    plan
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_dag");
    for n in [2usize, 3, 4, 5] {
        let plan = chain_join(n);
        group.bench_with_input(BenchmarkId::new("insert", n), &plan, |b, p| {
            b.iter(|| {
                let mut dag = Dag::new();
                dag.insert_plan(p)
            });
        });
        group.bench_with_input(BenchmarkId::new("expand", n), &plan, |b, p| {
            b.iter(|| {
                let mut dag = Dag::new();
                dag.insert_plan(p);
                expand(&mut dag, &ExpandOptions::default())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
