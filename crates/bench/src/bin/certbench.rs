//! Certificate-emission overhead benchmark: cold admission with
//! certificate emission on vs off.
//!
//! Emits `BENCH_certify.json` and optionally gates against a checked-in
//! baseline:
//!
//! ```text
//! certbench [--students N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Emission threads a [`fgac_core::CheckOptions::emit_certificates`]
//! flag through the validator; this harness measures the median cold
//! admission time for a representative query mix under both settings
//! and reports the ratio. With `--check`, the process exits non-zero
//! when the ratio exceeds the baseline's `max_overhead_ratio` — the CI
//! gate that keeps certificate emission within its ≤10% budget.

use fgac_bench::{median_time, pick_triple, university};
use fgac_core::{CheckOptions, Session, Validator, Verdict};
use std::time::Duration;

/// Overhead allowed when no baseline overrides it.
const DEFAULT_MAX_OVERHEAD: f64 = 1.10;

struct Args {
    students: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        students: 100,
        out: "BENCH_certify.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--students" => args.students = value("--students").parse().expect("--students: usize"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own baseline files without a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args = parse_args();
    let uni = university(args.students);
    let (student, reg, _unreg) = pick_triple(&uni);
    let session = Session::new(student.clone());

    // A representative valid mix: single-view match, restriction,
    // aggregate, and a join that needs composition.
    let queries: Vec<String> = vec![
        format!("select * from grades where student_id = '{student}'"),
        format!("select course_id, grade from grades where student_id = '{student}' and grade >= 60"),
        format!("select avg(grade) from grades where student_id = '{student}'"),
        format!(
            "select g.grade from grades g join registered r on g.course_id = r.course_id \
             where g.student_id = '{student}' and r.student_id = '{student}' \
             and r.course_id = '{reg}'"
        ),
    ];

    let run_mix = |emit: bool| -> Duration {
        let options = CheckOptions {
            emit_certificates: emit,
            ..CheckOptions::default()
        };
        median_time(101, || {
            for sql in &queries {
                let report = Validator::new(uni.engine.database(), uni.engine.grants())
                    .with_options(options.clone())
                    .check_sql(&session, sql)
                    .expect("check runs");
                assert_ne!(report.verdict, Verdict::Invalid, "bench mix must be valid: {sql}");
                assert_eq!(
                    report.certificate.is_some(),
                    emit,
                    "certificate presence must track emit_certificates"
                );
            }
        })
    };

    // Interleave-resistant ordering: off, on, then off again; take the
    // better `off` so one-sided warmup drift can't manufacture overhead.
    let off_a = run_mix(false);
    let on = run_mix(true);
    let off_b = run_mix(false);
    let off = off_a.min(off_b);

    let off_us = off.as_secs_f64() * 1e6;
    let on_us = on.as_secs_f64() * 1e6;
    let ratio = on_us / off_us.max(1e-9);

    // Sanity: every accepted query's certificate verifies independently.
    let mut total_steps = 0usize;
    for sql in &queries {
        let report = uni
            .engine
            .certify(&session, sql)
            .expect("certify verifies the emitted certificate");
        total_steps += report.certificate.as_ref().map_or(0, |c| c.steps.len());
    }

    let max_overhead = args.check.as_deref().map_or(DEFAULT_MAX_OVERHEAD, |path| {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        json_number(&doc, "max_overhead_ratio")
            .unwrap_or_else(|| panic!("baseline {path} lacks max_overhead_ratio"))
    });
    let pass = ratio <= max_overhead;

    let json = format!(
        "{{\n  \"schema\": \"fgac-certify-v1\",\n  \"students\": {},\n  \"queries\": {},\n  \"emit_off_us\": {:.1},\n  \"emit_on_us\": {:.1},\n  \"overhead_ratio\": {:.3},\n  \"certified_steps\": {},\n  \"gates\": {{ \"max_overhead_ratio\": {:.2}, \"pass\": {} }}\n}}\n",
        args.students,
        queries.len(),
        off_us,
        on_us,
        ratio,
        total_steps,
        max_overhead,
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");
    eprintln!(
        "admission mix: {off_us:.1}µs without emission -> {on_us:.1}µs with \
         ({ratio:.3}x, budget {max_overhead:.2}x)"
    );

    if !pass {
        eprintln!("GATE FAIL: certificate emission overhead {ratio:.3}x exceeds {max_overhead:.2}x");
        std::process::exit(1);
    }
}
