//! Regenerates every experiment table (E1–E8). See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! Usage: `cargo run -p fgac-bench --bin report --release [-- --exp e4]`

use fgac_algebra::{Plan, ScalarExpr};
use fgac_bench::{check_with, median_time, ms, pick_triple, row, university, us};
use fgac_core::truman::{scan_count_delta, TrumanPolicy};
use fgac_core::{CheckOptions, Engine, Session, Validator, Verdict};
use fgac_optimizer::{expand, extract_any, Dag, ExpandOptions, Operator};
use fgac_types::{Column, DataType, Schema};
use fgac_workload::querygen::{synthetic_view_family, university_mix};
use fgac_workload::university::{build, UniversityConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    println!("fgac experiment report — reproduction of Rizvi et al., SIGMOD 2004");
    println!("(the paper publishes no measured tables; E1 reproduces its only");
    println!("figure, E8 its worked examples, E2–E7 the evaluation Section 5.6");
    println!("proposes — see DESIGN.md §4)\n");

    if exp == "all" || exp == "e1" {
        e1();
    }
    if exp == "all" || exp == "e2" {
        e2();
    }
    if exp == "all" || exp == "e3" {
        e3();
    }
    if exp == "all" || exp == "e4" {
        e4();
    }
    if exp == "all" || exp == "e5" {
        e5();
    }
    if exp == "all" || exp == "e6" {
        e6();
    }
    if exp == "all" || exp == "e7" {
        e7();
    }
    if exp == "all" || exp == "e8" {
        e8();
    }
}

fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

/// E1 — Figure 1: AND-OR DAG for chain joins.
fn e1() {
    banner("E1", "Figure 1 — AND-OR DAG for A ⋈ B ⋈ C and growth with n");
    let widths = [3, 12, 12, 14, 14, 12];
    println!(
        "{}",
        row(
            &["n", "init eq", "init op", "expanded eq", "expanded op", "join sets"],
            &widths
        )
    );
    for n in 2..=6 {
        let mut dag = Dag::new();
        let schema = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("y", DataType::Int),
        ]);
        let mut plan = Plan::scan("t0", schema.clone());
        for i in 1..n {
            let off = 2 * i;
            plan = plan.join(
                Plan::scan(format!("t{i}").as_str(), schema.clone()),
                vec![ScalarExpr::eq(
                    ScalarExpr::col(off - 1),
                    ScalarExpr::col(off),
                )],
            );
        }
        dag.insert_plan(&plan);
        let init = dag.stats();
        expand(&mut dag, &ExpandOptions::default());
        let expanded = dag.stats();

        // Distinct table-sets joined anywhere in the DAG — the "ways of
        // grouping" Figure 1(c) illustrates.
        let mut join_sets = std::collections::BTreeSet::new();
        for op in dag.all_ops() {
            let node = dag.op(op);
            if !matches!(node.op, Operator::Join { .. }) {
                continue;
            }
            let mut tables: Vec<String> = Vec::new();
            for &c in &node.children {
                if let Some(p) = extract_any(&dag, c) {
                    tables.extend(p.scanned_tables().iter().map(|t| t.to_string()));
                }
            }
            tables.sort();
            join_sets.insert(tables.join("+"));
        }
        println!(
            "{}",
            row(
                &[
                    &n.to_string(),
                    &init.eq_nodes.to_string(),
                    &init.op_nodes.to_string(),
                    &expanded.eq_nodes.to_string(),
                    &expanded.op_nodes.to_string(),
                    &join_sets.len().to_string(),
                ],
                &widths
            )
        );
    }
    println!(
        "\nshape check: Figure 1(b) initial DAG for n=3 has 5 eq / 5 op nodes;\n\
         expansion adds the alternative join orders (A(BC), (AC)B reachable\n\
         through commute+associate), growing super-linearly with n."
    );
}

/// E2 — validity-check overhead vs plain optimization.
fn e2() {
    banner(
        "E2",
        "validity-check overhead: optimize vs +basic (U1/U2) vs +complex (U3/C3)",
    );
    let uni = university(200);
    let (student, reg, unreg) = pick_triple(&uni);
    let mix = university_mix(&student, &reg, &unreg);
    let iters = 9;

    let widths = [44, 12, 13, 13, 13];
    println!(
        "{}",
        row(
            &["query (class)", "optimize µs", "basic µs", "complex µs", "verdict"],
            &widths
        )
    );
    for q in &mix {
        // Plain optimization: bind + expand + extract best.
        let db = uni.engine.database();
        let parsed = fgac_sql::parse_query(&q.sql).unwrap();
        let session = Session::new(q.user.clone());
        let bound = fgac_algebra::bind_query(db.catalog(), &parsed, session.params()).unwrap();
        let opt = median_time(iters, || {
            let mut dag = Dag::new();
            let root = dag.insert_plan(&bound.plan);
            expand(&mut dag, &ExpandOptions::default());
            let model = fgac_optimizer::CostModel::new(
                fgac_optimizer::TableStats::from_database(db),
            );
            fgac_optimizer::extract_best(&dag, root, &model)
        });

        let basic = median_time(iters, || {
            check_with(&uni, CheckOptions::basic_only(), &q.user, &q.sql)
        });
        let complex = median_time(iters, || {
            check_with(&uni, CheckOptions::default(), &q.user, &q.sql)
        });
        let verdict = check_with(&uni, CheckOptions::default(), &q.user, &q.sql);
        let label = format!("{} ({})", q.label, q.class);
        let label = if label.len() > 43 { label[..43].to_string() } else { label };
        println!(
            "{}",
            row(
                &[
                    &label,
                    &us(opt),
                    &us(basic),
                    &us(complex),
                    &format!("{verdict:?}"),
                ],
                &widths
            )
        );
    }
    println!(
        "\nshape check (paper §5.6): basic-rule checking 'does not increase\n\
         the cost significantly beyond normal query optimization'; the\n\
         complex rules cost more, dominated by U3 derivation + C3 probes."
    );
}

/// E3 — scaling with the number of authorization views ± pruning.
fn e3() {
    banner(
        "E3",
        "validity check vs #authorization views, with/without irrelevant-view pruning",
    );
    let widths = [8, 16, 16, 14];
    println!(
        "{}",
        row(&["views", "no-prune µs", "prune µs", "speedup"], &widths)
    );
    for n in [4usize, 16, 64, 128, 256] {
        let mut uni = build(UniversityConfig::default().with_students(100)).unwrap();
        // A fixed handful of *relevant* views over grades, plus (n-4)
        // *irrelevant* join views over students × courses. Pruning keeps
        // the relevant ones only (the transitive table closure from the
        // grades query never reaches students-courses-only views).
        for (name, body) in synthetic_view_family(4) {
            uni.engine.admin_script(&body).unwrap();
            uni.engine.grant_view("student", &name).unwrap();
        }
        for i in 0..n.saturating_sub(4) {
            let noise = format!(
                "create authorization view noise{i} as \
                 select s.name, c.name from students s, courses c \
                 where s.type = 'FullTime' and c.course_id = 'c{:04}'",
                i % 10
            );
            uni.engine.admin_script(&noise).unwrap();
            uni.engine.grant_view("student", &format!("noise{i}")).unwrap();
        }
        let (student, _, _) = pick_triple(&uni);
        let sql = format!("select grade from grades where student_id = '{student}'");
        let iters = 7;
        let no_prune = median_time(iters, || {
            check_with(
                &uni,
                CheckOptions {
                    prune_irrelevant_views: false,
                    ..Default::default()
                },
                &student,
                &sql,
            )
        });
        let prune = median_time(iters, || {
            check_with(&uni, CheckOptions::default(), &student, &sql)
        });
        println!(
            "{}",
            row(
                &[
                    &n.to_string(),
                    &us(no_prune),
                    &us(prune),
                    &format!("{:.2}x", no_prune.as_secs_f64() / prune.as_secs_f64().max(1e-9)),
                ],
                &widths
            )
        );
    }
    println!(
        "\nshape check (paper §5.6): cost grows with the number of granted\n\
         views; 'eliminate authorization views that cannot possibly be of\n\
         use' flattens the curve."
    );
}

/// E4 — Truman vs Non-Truman execution characteristics.
fn e4() {
    banner(
        "E4",
        "Truman-rewritten vs Non-Truman-original execution as data scales (§3.3)",
    );
    let widths = [10, 10, 12, 14, 12, 14];
    println!(
        "{}",
        row(
            &["students", "|grades|", "truman ms", "original ms", "check ms", "scans T vs O"],
            &widths
        )
    );
    for students in [500usize, 2_000, 8_000, 20_000] {
        let uni = university(students);
        let (student, reg, _) = pick_triple(&uni);
        let session = Session::new(student.clone());
        // The Truman policy whose view contains a join — the redundant
        // join case of §3.3.
        let policy = TrumanPolicy::new().substitute_view("grades", "costudentgrades");
        let sql = format!("select grade from grades where course_id = '{reg}'");

        let truman = median_time(5, || {
            uni.engine.truman_execute(&policy, &session, &sql).unwrap()
        });
        // Non-Truman: the check happens once (cached afterwards); the
        // query then runs unmodified.
        let check = median_time(3, || {
            Validator::new(uni.engine.database(), uni.engine.grants())
                .check_sql(&session, &sql)
                .unwrap()
        });
        let original = median_time(5, || {
            fgac_exec::run_query_sql(uni.engine.database(), &sql, session.params()).unwrap()
        });
        let (o_scans, t_scans) =
            scan_count_delta(uni.engine.database(), &policy, &session, &sql).unwrap();
        let grades_rows = uni
            .engine
            .database()
            .table(&"grades".into())
            .unwrap()
            .len();
        println!(
            "{}",
            row(
                &[
                    &students.to_string(),
                    &grades_rows.to_string(),
                    &ms(truman),
                    &ms(original),
                    &ms(check),
                    &format!("{t_scans} vs {o_scans}"),
                ],
                &widths
            )
        );
        // Verify the check accepts (conditionally — the student is
        // registered) so running the original is legitimate.
        let verdict = uni.engine.check(&session, &sql).unwrap().verdict;
        assert_ne!(verdict, Verdict::Invalid, "E4 query must be accepted");
    }
    println!(
        "\nshape check (paper §3.3): the Truman rewrite drags the view's\n\
         extra join into every execution, so it slows down relative to the\n\
         original as data grows; the Non-Truman model pays a one-time\n\
         validity check and then runs the original query unmodified.\n\
         (Truman also answers aggregate queries misleadingly — see E8.)"
    );
}

/// E5 — validity-cache effectiveness.
fn e5() {
    banner("E5", "prepared/repeated query checking: cold vs cached (§5.6)");
    let uni = university(500);
    let (student, reg, unreg) = pick_triple(&uni);
    let mix = university_mix(&student, &reg, &unreg);
    let session = Session::new(student.clone());

    let widths = [44, 12, 12, 10];
    println!(
        "{}",
        row(&["query", "cold µs", "cached µs", "speedup"], &widths)
    );
    for q in mix.iter().filter(|q| q.expected != Verdict::Invalid) {
        uni.engine.cache().clear();
        let cold = median_time(1, || uni.engine.check(&session, &q.sql).unwrap());
        let cached = median_time(9, || uni.engine.check(&session, &q.sql).unwrap());
        let label = if q.label.len() > 43 { &q.label[..43] } else { q.label };
        println!(
            "{}",
            row(
                &[
                    label,
                    &us(cold),
                    &us(cached),
                    &format!("{:.0}x", cold.as_secs_f64() / cached.as_secs_f64().max(1e-9)),
                ],
                &widths
            )
        );
    }
    let snap = uni.engine.cache().snapshot();
    println!(
        "\ncache counters: {} hits / {} misses ({} entries, {:.0}% hit rate)",
        snap.hits,
        snap.misses,
        snap.entries,
        snap.hit_rate() * 100.0
    );
    println!(
        "shape check (paper §5.6): 'if the same query is reissued multiple\n\
         times in a session, we can cache the results of the validity\n\
         check' — cached checks are orders of magnitude cheaper."
    );
}

/// E6 — the cost and state-sensitivity of conditional validity.
fn e6() {
    banner("E6", "C3 conditional validity: probe cost and state dependence (§4.3)");
    let widths = [10, 12, 14, 16];
    println!(
        "{}",
        row(&["students", "|registered|", "C3 check ms", "verdict"], &widths)
    );
    for students in [100usize, 1_000, 5_000, 20_000] {
        let uni = university(students);
        let (student, reg, _) = pick_triple(&uni);
        let session = Session::new(student.clone());
        let sql = format!("select * from grades where course_id = '{reg}'");
        let t = median_time(3, || {
            Validator::new(uni.engine.database(), uni.engine.grants())
                .check_sql(&session, &sql)
                .unwrap()
        });
        let verdict = check_with(&uni, CheckOptions::default(), &student, &sql);
        let regs = uni
            .engine
            .database()
            .table(&"registered".into())
            .unwrap()
            .len();
        println!(
            "{}",
            row(
                &[
                    &students.to_string(),
                    &regs.to_string(),
                    &ms(t),
                    &format!("{verdict:?}"),
                ],
                &widths
            )
        );
    }

    // State dependence: the same query accepted/rejected by state.
    let uni = university(100);
    let (student, reg, unreg) = pick_triple(&uni);
    println!("\nstate dependence for user {student}:");
    for (course, expected) in [(reg, "Conditional"), (unreg, "Invalid")] {
        let sql = format!("select * from grades where course_id = '{course}'");
        let v = check_with(&uni, CheckOptions::default(), &student, &sql);
        println!("  course {course}: verdict {v:?} (expected {expected})");
    }
    println!(
        "\nshape check (paper §4.3/§5.4): conditional validity requires a\n\
         database probe (v_r non-emptiness), so it costs more than pure\n\
         inference and flips with the state."
    );
}

/// E7 — per-tuple update authorization.
fn e7() {
    banner("E7", "update authorization throughput (§4.4)");
    let widths = [10, 14, 16, 16];
    println!(
        "{}",
        row(
            &["batch", "authorized ms", "per-tuple µs", "reject batch ms"],
            &widths
        )
    );
    for batch in [100usize, 1_000, 5_000] {
        // Fresh engine per batch size.
        let mut engine = Engine::new();
        engine
            .admin_script(
                "create table registered (student_id varchar not null, \
                 course_id varchar not null);",
            )
            .unwrap();
        engine
            .grant_update_sql(
                "u",
                "authorize insert on registered where student_id = $user_id",
            )
            .unwrap();
        let session = Session::new("u");
        let values: Vec<String> = (0..batch).map(|i| format!("('u', 'c{i}')")).collect();
        let sql = format!("insert into registered values {}", values.join(", "));
        let t = median_time(3, || {
            let mut e2 = engine_clone(&engine);
            e2.execute(&session, &sql).unwrap()
        });

        // A batch whose last tuple is unauthorized: rejected atomically.
        let mut bad_values = values.clone();
        bad_values.push("('intruder', 'c0')".to_string());
        let bad_sql = format!("insert into registered values {}", bad_values.join(", "));
        let t_bad = median_time(3, || {
            let mut e2 = engine_clone(&engine);
            e2.execute(&session, &bad_sql).unwrap_err()
        });
        println!(
            "{}",
            row(
                &[
                    &batch.to_string(),
                    &ms(t),
                    &format!("{:.2}", t.as_secs_f64() * 1e6 / batch as f64),
                    &ms(t_bad),
                ],
                &widths
            )
        );
    }
    println!(
        "\nshape check (paper §4.4): checking updates 'only requires\n\
         evaluation of a (fully instantiated) predicate' per tuple —\n\
         per-tuple cost stays flat as batches grow; a single unauthorized\n\
         tuple rejects the whole statement with no partial effects."
    );
}

// Engine has no Clone (caches/locks); rebuild cheaply for E7 timing.
fn engine_clone(src: &Engine) -> Engine {
    let mut e = Engine::new();
    e.admin_script(
        "create table registered (student_id varchar not null, \
         course_id varchar not null);",
    )
    .unwrap();
    e.grant_update_sql(
        "u",
        "authorize insert on registered where student_id = $user_id",
    )
    .unwrap();
    let _ = src;
    e
}

/// E8 — the acceptance matrix over the paper's worked examples.
fn e8() {
    banner(
        "E8",
        "acceptance matrix: paper examples × {Truman answer, Non-Truman verdict}",
    );
    let mut uni = build(UniversityConfig::tiny()).unwrap();
    // Extra grants echoing the paper's scenarios.
    uni.engine.grant_view("registrar", "regstudents").unwrap();
    uni.engine.grant_constraint("registrar", "all_registered").unwrap();
    let (student, reg, unreg) = pick_triple(&uni);
    let policy = TrumanPolicy::new().substitute_view("grades", "mygrades");

    let cases: Vec<(&str, String, String)> = vec![
        (
            "§3.3 misleading avg",
            student.clone(),
            "select avg(grade) from grades".to_string(),
        ),
        (
            "Ex 4.1 own avg",
            student.clone(),
            format!("select avg(grade) from grades where student_id = '{student}'"),
        ),
        (
            "Ex 4.1 course avg",
            student.clone(),
            format!("select avg(grade) from grades where course_id = '{reg}'"),
        ),
        (
            "Ex 4.4 registered course",
            student.clone(),
            format!("select * from grades where course_id = '{reg}'"),
        ),
        (
            "Ex 4.3 unregistered course",
            student.clone(),
            format!("select * from grades where course_id = '{unreg}'"),
        ),
        (
            "Ex 5.1 distinct names",
            "registrar".to_string(),
            "select distinct name, type from students".to_string(),
        ),
        (
            "Ex 5.1 without distinct",
            "registrar".to_string(),
            "select name, type from students".to_string(),
        ),
        (
            "§2 secretary by id",
            "secretary".to_string(),
            format!("select * from grades where student_id = '{student}'"),
        ),
        (
            "§2 secretary full list",
            "secretary".to_string(),
            "select * from grades".to_string(),
        ),
    ];

    let widths = [28, 52, 22, 15];
    println!(
        "{}",
        row(&["example", "query", "Truman", "Non-Truman"], &widths)
    );
    for (label, user, sql) in cases {
        let session = Session::new(user.clone());
        let truman = if user == student {
            match uni.engine.truman_execute(&policy, &session, &sql) {
                Ok(r) => match r.rows.first() {
                    Some(first) => format!("answers {}", first.get(0)),
                    None => "answers (empty)".to_string(),
                },
                Err(_) => "error".to_string(),
            }
        } else {
            "n/a".to_string()
        };
        let verdict = uni.engine.check(&session, &sql).unwrap().verdict;
        let sql_short = if sql.len() > 51 { format!("{}…", &sql[..50]) } else { sql.clone() };
        println!(
            "{}",
            row(&[label, &sql_short, &truman, &format!("{verdict:?}")], &widths)
        );
    }
    println!(
        "\nshape check: the Truman column shows answers even where they are\n\
         misleading (§3.3); the Non-Truman column matches the paper's\n\
         verdicts exactly (see tests/paper_examples.rs for the assertions)."
    );
}
