//! Durability benchmark: what write-ahead logging costs on the DML
//! path, and what recovery costs as the log grows.
//!
//! Emits `BENCH_wal.json` (see EXPERIMENTS.md for the field reference)
//! and optionally gates against a checked-in baseline:
//!
//! ```text
//! walbench [--ops N] [--out PATH] [--check BASELINE.json]
//! ```
//!
//! Three engines run the same authorized-insert workload: a plain
//! in-memory engine, a durable engine at the default level (buffered
//! write per commit, no fsync), and a durable engine with
//! `sync_on_commit` (fsync per commit, measured over fewer ops — each
//! one waits on the disk). The gate fails the process when the default
//! durability level costs more than `max_overhead_ratio` (2x unless the
//! baseline says otherwise) relative to in-memory throughput. Recovery
//! is timed at several log lengths so regressions in replay show up as
//! a curve, not a single noisy point.

use fgac_core::{DurabilityOptions, Engine, Session};
use std::path::PathBuf;
use std::time::Instant;

/// Default ceiling on `inmem_qps / durable_qps` for the no-fsync level.
const MAX_OVERHEAD_RATIO: f64 = 2.0;

struct Args {
    ops: usize,
    out: String,
    check: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        ops: 2_000,
        out: "BENCH_wal.json".to_string(),
        check: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match a.as_str() {
            "--ops" => args.ops = value("--ops").parse().expect("--ops: usize"),
            "--out" => args.out = value("--out"),
            "--check" => args.check = Some(value("--check")),
            other => panic!("unknown argument {other}"),
        }
    }
    args
}

/// Pulls `"key": <number>` out of a flat JSON document — enough to read
/// our own baseline files without a JSON dependency.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fgac-walbench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The fixture every mode shares: one table, one authorization to
/// insert into it. Inserts carry unique keys so none can conflict.
fn populate(e: &mut Engine) {
    e.admin_script(
        "create table registered (student_id varchar not null, course_id varchar not null, \
         primary key (student_id, course_id))",
    )
    .expect("schema applies");
    e.grant_update_sql("11", "authorize insert on registered where student_id = $user_id")
        .expect("authorize applies");
}

/// Runs `ops` authorized inserts and returns the measured q/s.
fn insert_qps(e: &mut Engine, ops: usize) -> f64 {
    let session = Session::new("11");
    let t = Instant::now();
    for i in 0..ops {
        let sql = format!("insert into registered values ('11', 'c{i}')");
        std::hint::black_box(e.execute(&session, &sql).expect("authorized insert"));
    }
    ops as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let args = parse_args();
    // Snapshots off in every durable mode: this measures the log itself,
    // and recovery timing below wants the whole history in the log.
    let no_sync = DurabilityOptions {
        sync_on_commit: false,
        snapshot_every: 0,
    };
    let fsync = DurabilityOptions {
        sync_on_commit: true,
        snapshot_every: 0,
    };

    // --- In-memory reference.
    let mut inmem = Engine::new();
    populate(&mut inmem);
    let inmem_qps = insert_qps(&mut inmem, args.ops);

    // --- Durable, default level (buffered write per commit).
    let durable_dir = tmp_dir("durable");
    let (mut durable, _) = Engine::open_with(&durable_dir, no_sync.clone()).expect("open durable");
    populate(&mut durable);
    let durable_qps = insert_qps(&mut durable, args.ops);
    drop(durable); // dirty: recovery below starts from a crash

    // --- Durable with fsync per commit. Far fewer ops: each one waits
    // on the disk, and the point is the per-commit price, not volume.
    let fsync_ops = (args.ops / 20).max(20);
    let fsync_dir = tmp_dir("fsync");
    let (mut synced, _) = Engine::open_with(&fsync_dir, fsync).expect("open fsync");
    populate(&mut synced);
    let fsync_qps = insert_qps(&mut synced, fsync_ops);
    drop(synced);
    let _ = std::fs::remove_dir_all(&fsync_dir);

    // --- Recovery time vs log length. The full-length point reuses the
    // durable run's directory; shorter points get their own logs.
    let mut recovery = Vec::new();
    for frac in [4usize, 2, 1] {
        let records = args.ops / frac;
        let (dir, cleanup) = if frac == 1 {
            (durable_dir.clone(), true)
        } else {
            let dir = tmp_dir(&format!("recover-{records}"));
            let (mut e, _) = Engine::open_with(&dir, no_sync.clone()).expect("open for recovery");
            populate(&mut e);
            insert_qps(&mut e, records);
            drop(e);
            (dir, true)
        };
        let t = Instant::now();
        let (recovered, report) = Engine::open_with(&dir, no_sync.clone()).expect("recover");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(report.records_replayed >= records, "log shorter than expected");
        drop(recovered);
        if cleanup {
            let _ = std::fs::remove_dir_all(&dir);
        }
        recovery.push((report.records_replayed, ms));
    }

    // --- Gate.
    let max_ratio = args.check.as_deref().map_or(MAX_OVERHEAD_RATIO, |path| {
        let doc = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        json_number(&doc, "max_overhead_ratio")
            .unwrap_or_else(|| panic!("baseline {path} lacks max_overhead_ratio"))
    });
    let overhead_ratio = inmem_qps / durable_qps.max(1e-9);
    let pass = overhead_ratio <= max_ratio;

    let recovery_json = recovery
        .iter()
        .map(|(records, ms)| format!("{{ \"records\": {records}, \"ms\": {ms:.2} }}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"schema\": \"fgac-wal-v1\",\n  \"ops\": {},\n  \"inmem_qps\": {:.0},\n  \"durable_qps\": {:.0},\n  \"fsync_ops\": {},\n  \"fsync_qps\": {:.0},\n  \"overhead_ratio\": {:.3},\n  \"recovery\": [{}],\n  \"gates\": {{ \"max_overhead_ratio\": {:.2}, \"pass\": {} }}\n}}\n",
        args.ops,
        inmem_qps,
        durable_qps,
        fsync_ops,
        fsync_qps,
        overhead_ratio,
        recovery_json,
        max_ratio,
        pass,
    );
    std::fs::write(&args.out, &json).expect("write report");
    print!("{json}");
    eprintln!(
        "inmem {inmem_qps:.0} q/s, durable {durable_qps:.0} q/s ({overhead_ratio:.2}x), \
         fsync {fsync_qps:.0} q/s; recovery {:?}",
        recovery
            .iter()
            .map(|(r, ms)| format!("{r} rec / {ms:.1}ms"))
            .collect::<Vec<_>>()
    );

    if !pass {
        eprintln!(
            "GATE FAIL: logging overhead {overhead_ratio:.2}x exceeds allowed {max_ratio:.2}x"
        );
        std::process::exit(1);
    }
}
